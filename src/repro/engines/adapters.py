"""Built-in engine adapters behind the registry.

Every availability backend the repo implements — closed forms, exact
state enumeration, static Monte-Carlo plus its two variance-reduced
variants, the discrete-event simulator, the parallel fan-out path, and
the serving layer's online-density model builder — is adapted here to
one of the registry's calling conventions and registered under a stable
name. Consumers (sweeps, ``repro verify``, the CLI, the serving control
loop) resolve engines with :func:`repro.engines.get_engine` instead of
importing constructors.

Model-kind adapters evaluate a
:class:`~repro.verification.cases.VerificationCase` and report
:class:`~repro.verification.tolerance.Estimate` values with honest
uncertainty, so the differential runner can compare any applicable pair
with a CI-derived tolerance instead of an ad-hoc constant.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.analytic import closed_form_density
from repro.analytic import compiled as _compiled
from repro.analytic.enumeration import (
    MAX_COMPONENTS,
    MAX_COMPONENTS_COMPILED,
    enumerate_density_matrix,
)
from repro.analytic.montecarlo import montecarlo_density_matrix
from repro.analytic.variance import (
    importance_density_matrix,
    stratified_density_matrix,
)
from repro.connectivity.dynamic import ComponentTracker, NetworkState
from repro.engines.registry import (
    KIND_DENSITY_MODEL,
    KIND_MODEL,
    KIND_SIMULATION,
    EngineSpec,
    register_engine,
)
from repro.protocols.quorum_consensus import QuorumConsensusProtocol
from repro.protocols.reassignment import QuorumReassignmentProtocol
from repro.quorum.assignment import QuorumAssignment
from repro.quorum.availability import AvailabilityModel
from repro.quorum.optimizer import optimal_read_quorum
from repro.simulation.runner import SimulationResult, run_simulation
from repro.telemetry.recorder import Telemetry
from repro.verification.cases import VerificationCase
from repro.verification.tolerance import (
    Estimate,
    binomial_half_width,
    students_t_estimate,
)

__all__ = [
    "ModelEngine",
    "SimulationEngineRun",
    "closed_form_engine",
    "enumeration_engine",
    "enum_compiled_engine",
    "montecarlo_engine",
    "stratified_mc_engine",
    "importance_mc_engine",
    "simulation_engine_run",
    "sharded_engine_run",
    "sharded_reference_run",
    "online_density_model",
    "grant_mask_mismatch",
    "OffByOneModel",
    "KNOWN_BUGS",
    "inject_bug_model",
    "with_injected_bug",
    "register_builtin_engines",
]


# ----------------------------------------------------------------------
# Model-producing engines (closed form / enumeration / Monte-Carlo)
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class ModelEngine:
    """An engine that produced a Figure-1 availability model.

    ``half_width_at(value)`` converts the engine's sampling budget into
    the 95 % CI half-width of one availability estimate; exact engines
    return 0. ``n_samples`` is the *effective* sample size — importance
    sampling reports its Kish effective count so the half-widths stay
    honest under weight dispersion.
    """

    name: str
    model: AvailabilityModel
    #: (Effective) Monte-Carlo sample count; ``None`` marks an exact engine.
    n_samples: Optional[int] = None

    def half_width_at(self, value: float) -> float:
        if self.n_samples is None:
            return 0.0
        return binomial_half_width(value, self.n_samples)

    def availability_estimates(
        self, case: VerificationCase
    ) -> Dict[str, Estimate]:
        """``A(alpha, q)`` at the case's quorums, plus the optimum value.

        The optimal *value* ``A*`` is comparable across engines even when
        a flat curve makes the arg-max ``q*`` ambiguous under noise, so
        ``q*`` is reported separately (exact engines only compare it).
        """
        out: Dict[str, Estimate] = {}
        for q in case.read_quorums:
            value = float(np.asarray(self.model.availability(case.alpha, int(q))))
            out[f"A(q={q})"] = Estimate(
                value, self.half_width_at(value), self.n_samples, self.name
            )
        best = optimal_read_quorum(self.model, case.alpha)
        out["A*"] = Estimate(
            best.availability,
            self.half_width_at(best.availability),
            self.n_samples,
            self.name,
        )
        out["q*"] = Estimate(
            float(best.assignment.read_quorum), 0.0, None, self.name
        )
        return out


def closed_form_engine(case: VerificationCase) -> ModelEngine:
    """Section 4.2 closed form for the case's family (exact)."""
    row = closed_form_density(case.family, case.n_sites, case.p, case.r)
    return ModelEngine("closed-form", AvailabilityModel(row, row))


def _case_free_components(case: VerificationCase) -> int:
    site_rel = case.site_reliabilities()
    link_rel = case.link_reliabilities()
    return int(((site_rel > 0) & (site_rel < 1)).sum()
               + ((link_rel > 0) & (link_rel < 1)).sum())


def enumeration_engine(case: VerificationCase) -> Optional[ModelEngine]:
    """Exhaustive state enumeration (exact); ``None`` beyond the cap.

    Pins the ``reference`` backend: this engine is the
    exact-floating-point-order witness the compiled/vectorized backends
    are differentially compared against, so it must never silently pick
    up a regrouped kernel. For the bus family, only the real (voting)
    sites' rows enter the model — the zero-vote hub submits no accesses.
    """
    if _case_free_components(case) > MAX_COMPONENTS:
        return None
    matrix = enumerate_density_matrix(
        case.topology(), case.site_reliabilities(), case.link_reliabilities(),
        backend="reference",
    )
    model = AvailabilityModel.from_density_matrix(matrix[: case.n_sites])
    return ModelEngine("enumeration", model)


def _active_compiled_backend() -> str:
    """The enumeration backend ``enum-compiled`` will actually run."""
    return "compiled" if _compiled.jit_available() else "vectorized"


def enum_compiled_engine(case: VerificationCase) -> Optional[ModelEngine]:
    """Enumeration through the fast backend (exact); ``None`` past 2^28.

    Resolves to the numba JIT union-find kernel when numba is installed
    and the dependency-free vectorized collapse-DFS otherwise, exactly
    like ``backend='auto'``. Crossed against ``enumeration`` in ``repro
    verify`` at the ≤1e-12 differential tier (bitwise when the JIT
    kernel is active — it preserves the reference operation order).
    """
    if _case_free_components(case) > MAX_COMPONENTS_COMPILED:
        return None
    matrix = enumerate_density_matrix(
        case.topology(), case.site_reliabilities(), case.link_reliabilities(),
        backend=_active_compiled_backend(),
    )
    model = AvailabilityModel.from_density_matrix(matrix[: case.n_sites])
    return ModelEngine("enum-compiled", model)


def montecarlo_engine(case: VerificationCase) -> ModelEngine:
    """Seeded static Monte-Carlo estimation (statistical)."""
    matrix = montecarlo_density_matrix(
        case.topology(),
        case.site_reliabilities(),
        case.link_reliabilities(),
        n_samples=case.mc_samples,
        seed=case.seed,
    )
    model = AvailabilityModel.from_density_matrix(matrix[: case.n_sites])
    return ModelEngine("monte-carlo", model, n_samples=case.mc_samples)


def stratified_mc_engine(case: VerificationCase,
                         allocation: str = "proportional") -> ModelEngine:
    """Failure-count-stratified Monte-Carlo (variance-reduced)."""
    matrix = stratified_density_matrix(
        case.topology(),
        case.site_reliabilities(),
        case.link_reliabilities(),
        n_samples=case.mc_samples,
        seed=case.seed,
        allocation=allocation,
    )
    model = AvailabilityModel.from_density_matrix(matrix[: case.n_sites])
    return ModelEngine("mc-stratified", model, n_samples=case.mc_samples)


def importance_mc_engine(case: VerificationCase) -> ModelEngine:
    """Defensive-mixture importance sampling (rare-failure regimes)."""
    matrix, stats = importance_density_matrix(
        case.topology(),
        case.site_reliabilities(),
        case.link_reliabilities(),
        n_samples=case.mc_samples,
        seed=case.seed,
        return_stats=True,
    )
    model = AvailabilityModel.from_density_matrix(matrix[: case.n_sites])
    # Report the Kish effective sample size so CI half-widths account
    # for weight dispersion rather than pretending every draw is equal.
    return ModelEngine("mc-importance", model,
                       n_samples=max(int(stats.effective_samples), 1))


# ----------------------------------------------------------------------
# Simulation-backed engines
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class SimulationEngineRun:
    """One simulated campaign reduced to comparable estimates.

    ``acc``/``surv`` carry batch-means Student-t half-widths;
    ``batch_acc``/``batch_surv`` are the raw per-batch values used for
    the bitwise serial-vs-parallel determinism contract; ``pooled_acc``
    and ``audit_acc`` are the exact volume ratios the audit-reconciliation
    check compares.
    """

    name: str
    acc: Estimate
    surv: Estimate
    batch_acc: Tuple[float, ...]
    batch_surv: Tuple[float, ...]
    pooled_acc: float
    audit_acc: Optional[float]

    @property
    def read_quorum_metric(self) -> str:
        return "ACC"


def _pooled_acc(result: SimulationResult) -> float:
    submitted = sum(b.accesses_submitted for b in result.batches)
    granted = sum(b.accesses_granted for b in result.batches)
    return granted / submitted if submitted > 0 else 0.0


def simulation_engine_run(
    case: VerificationCase,
    n_workers: int = 1,
    with_telemetry: bool = False,
) -> SimulationEngineRun:
    """Run the case's quorum-consensus protocol through the simulator.

    ``n_workers > 1`` exercises the parallel fan-out path, which is
    contractually bitwise identical to the serial run. With
    ``with_telemetry`` the run records the quorum-decision audit log and
    reports its independently-accumulated ACC for exact reconciliation.
    """
    if case.sim_read_quorum is None:
        raise _no_sim_error(case)
    config = case.simulation_config()
    protocol = QuorumConsensusProtocol(
        QuorumAssignment.from_read_quorum(case.total_votes, case.sim_read_quorum)
    )
    telemetry = Telemetry() if with_telemetry else None
    result = run_simulation(
        config, protocol, telemetry=telemetry, n_workers=n_workers
    )
    name = "simulation" if n_workers == 1 else f"parallel(x{n_workers})"
    surv_stats = result.surv_statistics(case.alpha)
    audit_acc = None
    if result.telemetry is not None:
        audit_acc = float(result.telemetry.audit_availability())
    return SimulationEngineRun(
        name=name,
        acc=students_t_estimate(result.availability, source=name),
        surv=students_t_estimate(surv_stats, source=name),
        batch_acc=tuple(b.availability for b in result.batches),
        batch_surv=tuple(
            case.alpha * b.surv_read + (1.0 - case.alpha) * b.surv_write
            for b in result.batches
        ),
        pooled_acc=_pooled_acc(result),
        audit_acc=audit_acc,
    )


def _no_sim_error(case: VerificationCase):
    from repro.errors import VerificationError

    return VerificationError(
        f"case {case.name} has no sim_read_quorum; simulation engines do not apply"
    )


# ----------------------------------------------------------------------
# Sharded multi-item engines
# ----------------------------------------------------------------------

def sharded_engine_run(config, n_workers: int = 1, chunk_size=None,
                       transport=None):
    """Run a :class:`~repro.sharding.config.ShardConfig` campaign.

    Unlike the case-based simulation engines, the sharded builders take
    the shard configuration directly — a verification case describes one
    item, a shard config describes N of them. The differential runner's
    sharded checks build the config from a case and call these.
    """
    from repro.sharding.runner import run_sharded

    return run_sharded(config, engine="vectorized", n_workers=n_workers,
                       chunk_size=chunk_size, transport=transport)


def sharded_reference_run(config, n_workers: int = 1, chunk_size=None,
                          transport=None):
    """The retained per-item ``multidb`` loop (the bitwise oracle)."""
    from repro.sharding.runner import run_sharded

    return run_sharded(config, engine="reference", n_workers=n_workers,
                       chunk_size=chunk_size, transport=transport)


# ----------------------------------------------------------------------
# Density-model engines (the serving control loop's path)
# ----------------------------------------------------------------------

def online_density_model(
    matrix: np.ndarray,
    read_weights: Optional[np.ndarray] = None,
    write_weights: Optional[np.ndarray] = None,
) -> AvailabilityModel:
    """Availability model from an online-estimated density matrix."""
    return AvailabilityModel.from_density_matrix(
        matrix, read_weights=read_weights, write_weights=write_weights
    )


# ----------------------------------------------------------------------
# Protocol-level differential: static quorum consensus vs QR
# ----------------------------------------------------------------------

def grant_mask_mismatch(case: VerificationCase) -> Tuple[float, int]:
    """Fraction of sampled network states where QR and static grants differ.

    A :class:`QuorumReassignmentProtocol` that never installs a new
    assignment must grant exactly what the static
    :class:`QuorumConsensusProtocol` grants in every reachable network
    state — the stale-config machinery must be invisible when there is
    nothing stale. Samples ``case.protocol_states`` stationary states and
    compares both protocols' read/write grant masks; returns the mismatch
    fraction (0.0 when the protocols agree everywhere) and the number of
    states checked.
    """
    topology = case.topology()
    q = case.sim_read_quorum if case.sim_read_quorum is not None else 1
    assignment = QuorumAssignment.from_read_quorum(case.total_votes, q)
    static = QuorumConsensusProtocol(assignment)
    dynamic = QuorumReassignmentProtocol(topology.n_sites, assignment)
    rng = np.random.default_rng(case.seed)
    site_rel = case.site_reliabilities()
    link_rel = case.link_reliabilities()
    mismatches = 0
    for _ in range(case.protocol_states):
        site_up = rng.random(topology.n_sites) < site_rel
        link_up = rng.random(topology.n_links) < link_rel
        tracker = ComponentTracker(NetworkState(topology, site_up, link_up))
        dynamic.reset()
        dynamic.on_network_change(tracker)
        static_masks = static.grant_masks(tracker)
        dynamic_masks = dynamic.grant_masks(tracker)
        if not (
            np.array_equal(static_masks[0], dynamic_masks[0])
            and np.array_equal(static_masks[1], dynamic_masks[1])
        ):
            mismatches += 1
    return mismatches / case.protocol_states, case.protocol_states


# ----------------------------------------------------------------------
# Bug injection (verification of the verifier)
# ----------------------------------------------------------------------

class OffByOneModel(AvailabilityModel):
    """An availability model with a deliberate quorum-threshold off-by-one.

    Evaluates ``A(alpha, q_r + 1)`` wherever ``A(alpha, q_r)`` was asked
    — exactly the bug a ``>=`` vs ``>`` slip in a quorum comparison
    produces. Used by ``repro verify --inject-bug quorum-off-by-one`` to
    demonstrate that the differential harness fails loudly (exit 1) on a
    real divergence rather than absorbing it into its tolerances.
    """

    def availability(self, alpha, read_quorum):
        q = np.asarray(read_quorum, dtype=np.int64)
        shifted = np.minimum(q + 1, self.total_votes)
        if q.ndim == 0:
            shifted = int(shifted)
        return super().availability(alpha, shifted)

    def curve(self, alpha):
        # Route through the broken threshold so optimizer output shifts
        # too (the base class evaluates densities directly).
        return np.asarray(self.availability(alpha, self.feasible_read_quorums()))


#: Deliberate defects `repro verify --inject-bug` can wire into the
#: closed-form engine to prove the harness catches real divergence.
KNOWN_BUGS = ("quorum-off-by-one",)


def inject_bug_model(model: AvailabilityModel, bug: Optional[str]) -> AvailabilityModel:
    """Return ``model`` with the named defect wired in (or unchanged)."""
    if bug is None:
        return model
    if bug == "quorum-off-by-one":
        return OffByOneModel(model.read_density, model.write_density)
    from repro.errors import VerificationError

    raise VerificationError(
        f"unknown bug injection {bug!r}; known: {list(KNOWN_BUGS)}"
    )


def with_injected_bug(engine: ModelEngine, bug: Optional[str]) -> ModelEngine:
    """Return ``engine`` with the named bug wired in (or unchanged)."""
    if bug is None:
        return engine
    return ModelEngine(
        engine.name, inject_bug_model(engine.model, bug), engine.n_samples
    )


# ----------------------------------------------------------------------
# Registration
# ----------------------------------------------------------------------

def register_builtin_engines(replace: bool = False) -> None:
    """Register every built-in engine (idempotent with ``replace=True``)."""
    specs = (
        EngineSpec(
            name="closed-form",
            kind=KIND_MODEL,
            description="Section 4.2 closed-form densities for the "
                        "ring/complete/bus families",
            capabilities=frozenset({"exact"}),
            cost_hint="O(n) per family; microseconds",
            cost_rank=0,
            builder=closed_form_engine,
        ),
        EngineSpec(
            name="enumeration",
            kind=KIND_MODEL,
            description="Exhaustive network-state enumeration; exact for "
                        f"any topology up to {MAX_COMPONENTS} free components",
            capabilities=frozenset({"exact", "bounded-states"}),
            cost_hint=f"O(2^m) states; applies while m <= {MAX_COMPONENTS}",
            cost_rank=1,
            builder=enumeration_engine,
            backend="reference",
        ),
        EngineSpec(
            name="enum-compiled",
            kind=KIND_MODEL,
            description="Exhaustive enumeration through the compiled "
                        "backend layer: numba JIT union-find kernel when "
                        "installed, dependency-free vectorized collapse-DFS "
                        f"otherwise; exact up to {MAX_COMPONENTS_COMPILED} "
                        "free components",
            capabilities=frozenset(
                {"exact", "bounded-states", "compiled"}
                | ({"jit"} if _compiled.jit_available() else set())
            ),
            cost_hint=f"O(2^m) states, ~100x the reference kernel; "
                      f"applies while m <= {MAX_COMPONENTS_COMPILED}",
            cost_rank=1,
            builder=enum_compiled_engine,
            backend="numba-jit" if _compiled.jit_available()
                    else "numpy-vectorized",
        ),
        EngineSpec(
            name="monte-carlo",
            kind=KIND_MODEL,
            description="Seeded static Monte-Carlo density estimation",
            capabilities=frozenset({"statistical"}),
            cost_hint="O(n_samples) states; CI half-width ~ 1/sqrt(n)",
            cost_rank=2,
            builder=montecarlo_engine,
        ),
        EngineSpec(
            name="mc-stratified",
            kind=KIND_MODEL,
            description="Monte-Carlo stratified on the exact "
                        "Poisson-Binomial failure-count law; the all-up "
                        "stratum is evaluated deterministically",
            capabilities=frozenset({"statistical", "variance-reduced"}),
            cost_hint="O(n_samples) states + O(m^2) stratum weights; "
                      "big wins when failures are rare",
            cost_rank=3,
            builder=stratified_mc_engine,
        ),
        EngineSpec(
            name="mc-importance",
            kind=KIND_MODEL,
            description="Defensive-mixture importance sampling that "
                        "inflates failure rates for rare-event regimes "
                        "(p >= 0.99)",
            capabilities=frozenset({"statistical", "variance-reduced",
                                    "rare-event"}),
            cost_hint="O(n_samples) states; reports Kish effective "
                      "sample size",
            cost_rank=4,
            builder=importance_mc_engine,
        ),
        EngineSpec(
            name="simulation",
            kind=KIND_SIMULATION,
            description="Discrete-event simulation of the case's "
                        "quorum-consensus protocol (serial)",
            capabilities=frozenset({"statistical", "protocol-level"}),
            cost_hint="O(epochs * accesses); seconds per case",
            cost_rank=10,
            builder=simulation_engine_run,
        ),
        EngineSpec(
            name="parallel",
            kind=KIND_SIMULATION,
            description="Parallel fan-out simulation; contractually "
                        "bitwise identical to the serial run",
            capabilities=frozenset({"statistical", "protocol-level",
                                    "bitwise-parallel"}),
            cost_hint="simulation cost / n_workers + pool overhead",
            cost_rank=11,
            builder=lambda case, n_workers=2, with_telemetry=False:
                simulation_engine_run(case, n_workers=n_workers,
                                      with_telemetry=with_telemetry),
        ),
        EngineSpec(
            name="sharded",
            kind=KIND_SIMULATION,
            description="Vectorized N-item sharded simulation: one "
                        "component labelling per network state shared "
                        "across all items, per-item quorum decisions via "
                        "bincount/gather",
            capabilities=frozenset({"statistical", "protocol-level",
                                    "bitwise-parallel", "multi-item"}),
            cost_hint="O(epochs * (labelling + n_items)); ~10x+ faster "
                      "than the per-item loop at 10^4 items",
            cost_rank=12,
            builder=sharded_engine_run,
        ),
        EngineSpec(
            name="sharded-reference",
            kind=KIND_SIMULATION,
            description="Per-item multidb reference loop for the sharded "
                        "engine; the bitwise oracle the vectorized path "
                        "must match exactly",
            capabilities=frozenset({"statistical", "protocol-level",
                                    "multi-item", "reference"}),
            cost_hint="O(epochs * n_items * n_sites) Python-loop cost; "
                      "differential-testing only",
            cost_rank=13,
            builder=sharded_reference_run,
        ),
        EngineSpec(
            name="online-density",
            kind=KIND_DENSITY_MODEL,
            description="Availability model from an online-estimated "
                        "density matrix (the serving control loop's path)",
            capabilities=frozenset({"online"}),
            cost_hint="O(n * T) per refresh; microseconds",
            cost_rank=0,
            builder=online_density_model,
        ),
    )
    for spec in specs:
        register_engine(spec, replace=replace)
