"""The engine registry: every availability backend behind one lookup.

An *engine* is anything that turns a parameter point into availability
evidence — a closed form, the exact enumerator, a Monte-Carlo estimator,
the discrete-event simulator, or the serving layer's online-density
model builder. Historically each consumer (sweeps, verification, the
CLI, the serving control loop) imported the constructor it wanted
directly; this module replaces that with a registry so backends are
pluggable and uniformly benchmarkable:

- :func:`register_engine` installs an :class:`EngineSpec` under a unique
  name (``replace=True`` lets tests swap in instrumented doubles).
- :func:`get_engine` resolves a name (optionally checking the expected
  ``kind``) with an error that lists the known names.
- :func:`list_engines` returns specs ordered cheapest-first, optionally
  filtered by kind — the ``repro engines`` subcommand prints exactly
  this.

Specs carry *capability flags* (``exact``, ``statistical``,
``variance-reduced``, ``rare-event``, ``bitwise-parallel``,
``bounded-states``, ``compiled``, ``jit``, ``online``) and a human cost
hint plus a relative ``cost_rank``, so dispatchers can select by
property ("cheapest exact engine that applies") instead of hard-coding
names. A spec may also name the ``backend`` that will actually run
(``enum-compiled`` reports ``numba-jit`` or ``numpy-vectorized``
depending on what is installed).

The built-in engines are registered by :mod:`repro.engines.adapters`
when :mod:`repro.engines` is imported.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, Optional, Tuple

from repro.errors import VerificationError

__all__ = [
    "EngineSpec",
    "register_engine",
    "unregister_engine",
    "get_engine",
    "list_engines",
    "KIND_MODEL",
    "KIND_SIMULATION",
    "KIND_DENSITY_MODEL",
]

#: Engine kinds (the builder's calling convention).
#:
#: - ``model``: ``build(case, **opts) -> Optional[ModelEngine]`` — a
#:   Figure-1 availability model from a verification case; ``None`` when
#:   the engine does not apply (e.g. past the enumeration cap).
#: - ``simulation``: ``build(case, n_workers=..., with_telemetry=...)
#:   -> SimulationEngineRun`` — a simulated campaign reduced to
#:   comparable estimates.
#: - ``density-model``: ``build(matrix, read_weights, write_weights)
#:   -> AvailabilityModel`` — a model from an externally estimated
#:   density matrix (the serving control loop's path).
KIND_MODEL = "model"
KIND_SIMULATION = "simulation"
KIND_DENSITY_MODEL = "density-model"

_KINDS = (KIND_MODEL, KIND_SIMULATION, KIND_DENSITY_MODEL)


@dataclass(frozen=True)
class EngineSpec:
    """One registered availability engine."""

    name: str
    kind: str
    description: str
    #: Property flags dispatchers and the CLI select/filter on.
    capabilities: FrozenSet[str] = field(default_factory=frozenset)
    #: Human-readable cost summary for ``repro engines``.
    cost_hint: str = ""
    #: Relative cost ordering within a kind (lower = cheaper).
    cost_rank: int = 0
    #: The constructor; calling convention depends on ``kind``.
    builder: Optional[Callable] = None
    #: Which computational backend actually runs when this engine is
    #: built (e.g. ``"numba-jit"`` vs ``"numpy-vectorized"`` for
    #: ``enum-compiled``). Empty when the engine has a single fixed
    #: implementation; ``repro engines`` prints it so availability is
    #: honest about what is installed.
    backend: str = ""

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise VerificationError(
                f"engine {self.name!r}: unknown kind {self.kind!r}; "
                f"choose from {_KINDS}"
            )
        if self.builder is None:
            raise VerificationError(f"engine {self.name!r} has no builder")

    def build(self, *args, **kwargs):
        """Invoke the engine's builder."""
        return self.builder(*args, **kwargs)

    def has(self, capability: str) -> bool:
        return capability in self.capabilities


_REGISTRY: Dict[str, EngineSpec] = {}


def register_engine(spec: EngineSpec, replace: bool = False) -> EngineSpec:
    """Install ``spec``; duplicate names are an error unless ``replace``."""
    if spec.name in _REGISTRY and not replace:
        raise VerificationError(
            f"engine {spec.name!r} is already registered "
            f"(kind {_REGISTRY[spec.name].kind}); pass replace=True to "
            "override it"
        )
    _REGISTRY[spec.name] = spec
    return spec


def unregister_engine(name: str) -> None:
    """Remove an engine (tests installing doubles clean up with this)."""
    _REGISTRY.pop(name, None)


def get_engine(name: str, kind: Optional[str] = None) -> EngineSpec:
    """Resolve ``name``; ``kind`` asserts the expected calling convention."""
    try:
        spec = _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY)) or "(none)"
        raise VerificationError(
            f"unknown engine {name!r}; registered engines: {known}"
        ) from None
    if kind is not None and spec.kind != kind:
        raise VerificationError(
            f"engine {name!r} has kind {spec.kind!r}, expected {kind!r}"
        )
    return spec


def list_engines(kind: Optional[str] = None,
                 capability: Optional[str] = None) -> Tuple[EngineSpec, ...]:
    """Registered specs, cheapest first, optionally filtered."""
    specs = [
        spec
        for spec in _REGISTRY.values()
        if (kind is None or spec.kind == kind)
        and (capability is None or spec.has(capability))
    ]
    specs.sort(key=lambda spec: (spec.kind, spec.cost_rank, spec.name))
    return tuple(specs)
