"""`repro.engines`: pluggable availability backends behind one registry.

Importing this package registers every built-in engine — see
:mod:`repro.engines.registry` for the lookup API and
:mod:`repro.engines.adapters` for the backends. ``repro engines`` on the
command line prints :func:`list_engines`.
"""

from repro.engines.registry import (
    KIND_DENSITY_MODEL,
    KIND_MODEL,
    KIND_SIMULATION,
    EngineSpec,
    get_engine,
    list_engines,
    register_engine,
    unregister_engine,
)
from repro.engines.adapters import (
    KNOWN_BUGS,
    ModelEngine,
    OffByOneModel,
    SimulationEngineRun,
    closed_form_engine,
    enum_compiled_engine,
    enumeration_engine,
    grant_mask_mismatch,
    importance_mc_engine,
    inject_bug_model,
    montecarlo_engine,
    online_density_model,
    register_builtin_engines,
    sharded_engine_run,
    sharded_reference_run,
    simulation_engine_run,
    stratified_mc_engine,
    with_injected_bug,
)

__all__ = [
    "EngineSpec",
    "register_engine",
    "unregister_engine",
    "get_engine",
    "list_engines",
    "KIND_MODEL",
    "KIND_SIMULATION",
    "KIND_DENSITY_MODEL",
    "ModelEngine",
    "SimulationEngineRun",
    "closed_form_engine",
    "enum_compiled_engine",
    "enumeration_engine",
    "montecarlo_engine",
    "stratified_mc_engine",
    "importance_mc_engine",
    "simulation_engine_run",
    "sharded_engine_run",
    "sharded_reference_run",
    "online_density_model",
    "grant_mask_mismatch",
    "OffByOneModel",
    "KNOWN_BUGS",
    "inject_bug_model",
    "with_injected_bug",
    "register_builtin_engines",
]

register_builtin_engines(replace=True)
