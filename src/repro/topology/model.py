"""Immutable topology model: sites, links, and vote assignments.

A :class:`Topology` is the static description of the network — which sites
exist, which pairs of sites share a bi-directional link, and how many votes
each site's copy of the data item carries. Dynamic state (which sites/links
are currently up) lives in :mod:`repro.simulation`, never here, so a single
``Topology`` can safely be shared across batches and threads.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Iterator, Optional, Sequence, Tuple

import numpy as np

from repro.errors import TopologyError, VoteAssignmentError

__all__ = ["Link", "Topology"]


@dataclass(frozen=True, order=True)
class Link:
    """An undirected link between two distinct sites.

    Endpoints are normalized so ``a < b``; two ``Link`` objects compare equal
    iff they join the same pair of sites regardless of construction order.
    """

    a: int
    b: int

    def __post_init__(self) -> None:
        if self.a == self.b:
            raise TopologyError(f"self-loop link at site {self.a} is not allowed")
        if self.a > self.b:
            # Normalize endpoint order; dataclass is frozen so go through
            # object.__setattr__.
            a, b = self.b, self.a
            object.__setattr__(self, "a", a)
            object.__setattr__(self, "b", b)

    def endpoints(self) -> Tuple[int, int]:
        """Return the normalized ``(a, b)`` endpoint pair."""
        return (self.a, self.b)

    def other(self, site: int) -> int:
        """Return the endpoint opposite ``site``."""
        if site == self.a:
            return self.b
        if site == self.b:
            return self.a
        raise TopologyError(f"site {site} is not an endpoint of {self}")


class Topology:
    """A network of ``n_sites`` sites joined by undirected links.

    Parameters
    ----------
    n_sites:
        Number of sites, labelled ``0 .. n_sites-1``. Each site holds one
        copy of the replicated data item (the paper's evaluation places a
        copy at every site; partial replication is expressed by giving a
        site zero votes).
    links:
        Iterable of ``(a, b)`` pairs or :class:`Link` objects. Duplicates
        (in either orientation) are rejected — the paper's model has at most
        one link per site pair.
    votes:
        Optional per-site vote assignment. Defaults to one vote per site
        (the paper's uniform assignment). Votes must be non-negative
        integers; total votes ``T`` must be positive.
    name:
        Optional human-readable name used in reports.
    """

    __slots__ = (
        "_n_sites", "_links", "_votes", "_name", "_adjacency", "_link_index",
        "_endpoint_arrays",
    )

    def __init__(
        self,
        n_sites: int,
        links: Iterable[Tuple[int, int] | Link],
        votes: Optional[Sequence[int]] = None,
        name: str = "",
    ) -> None:
        if n_sites <= 0:
            raise TopologyError(f"need at least one site, got n_sites={n_sites}")
        self._n_sites = int(n_sites)

        normalized: list[Link] = []
        seen: set[Tuple[int, int]] = set()
        for raw in links:
            link = raw if isinstance(raw, Link) else Link(int(raw[0]), int(raw[1]))
            for endpoint in link.endpoints():
                if not (0 <= endpoint < self._n_sites):
                    raise TopologyError(
                        f"link {link} references site {endpoint}, outside 0..{self._n_sites - 1}"
                    )
            key = link.endpoints()
            if key in seen:
                raise TopologyError(f"duplicate link {link}")
            seen.add(key)
            normalized.append(link)
        normalized.sort()
        self._links: Tuple[Link, ...] = tuple(normalized)

        if votes is None:
            votes_arr = np.ones(self._n_sites, dtype=np.int64)
        else:
            votes_arr = np.asarray(list(votes), dtype=np.int64)
            if votes_arr.shape != (self._n_sites,):
                raise VoteAssignmentError(
                    f"votes must have length {self._n_sites}, got shape {votes_arr.shape}"
                )
            if (votes_arr < 0).any():
                raise VoteAssignmentError("votes must be non-negative")
            if votes_arr.sum() <= 0:
                raise VoteAssignmentError("total votes T must be positive")
        votes_arr.setflags(write=False)
        self._votes = votes_arr
        self._name = name or f"topology(n={self._n_sites}, m={len(self._links)})"

        adjacency: Dict[int, list[int]] = {i: [] for i in range(self._n_sites)}
        link_index: Dict[Tuple[int, int], int] = {}
        for idx, link in enumerate(self._links):
            adjacency[link.a].append(link.b)
            adjacency[link.b].append(link.a)
            link_index[link.endpoints()] = idx
        self._adjacency = {site: tuple(sorted(nbrs)) for site, nbrs in adjacency.items()}
        self._link_index = link_index

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def n_sites(self) -> int:
        """Number of sites in the network."""
        return self._n_sites

    @property
    def n_links(self) -> int:
        """Number of undirected links."""
        return len(self._links)

    @property
    def links(self) -> Tuple[Link, ...]:
        """Links in sorted order; the index of a link here is its link id."""
        return self._links

    @property
    def votes(self) -> np.ndarray:
        """Read-only int64 array of per-site votes."""
        return self._votes

    @property
    def total_votes(self) -> int:
        """``T``, the total number of votes in the system."""
        return int(self._votes.sum())

    @property
    def name(self) -> str:
        return self._name

    def sites(self) -> range:
        """Iterate site ids ``0 .. n_sites-1``."""
        return range(self._n_sites)

    def neighbors(self, site: int) -> Tuple[int, ...]:
        """Sites sharing a link with ``site``, ascending."""
        try:
            return self._adjacency[site]
        except KeyError:
            raise TopologyError(f"unknown site {site}") from None

    def degree(self, site: int) -> int:
        """Number of links incident to ``site``."""
        return len(self.neighbors(site))

    def has_link(self, a: int, b: int) -> bool:
        """True iff an undirected link joins sites ``a`` and ``b``."""
        if a == b:
            return False
        key = (a, b) if a < b else (b, a)
        return key in self._link_index

    def link_id(self, a: int, b: int) -> int:
        """Return the index of the link joining ``a`` and ``b``.

        Link ids index :attr:`links` and are how the simulator refers to
        links in its failure processes.
        """
        key = (a, b) if a < b else (b, a)
        try:
            return self._link_index[key]
        except KeyError:
            raise TopologyError(f"no link between sites {a} and {b}") from None

    def link_endpoint_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """Endpoint arrays ``(u, v)`` with ``u[i] < v[i]`` for link id ``i``.

        These feed directly into the connectivity backends; the arrays
        are built once per topology and cached (read-only) because the
        simulator calls this on every failure/repair event.
        """
        cached = getattr(self, "_endpoint_arrays", None)
        if cached is not None:
            return cached
        if not self._links:
            u = np.empty(0, dtype=np.int64)
            v = np.empty(0, dtype=np.int64)
        else:
            u = np.fromiter((l.a for l in self._links), dtype=np.int64,
                            count=len(self._links))
            v = np.fromiter((l.b for l in self._links), dtype=np.int64,
                            count=len(self._links))
        u.setflags(write=False)
        v.setflags(write=False)
        object.__setattr__(self, "_endpoint_arrays", (u, v))
        return u, v

    # ------------------------------------------------------------------
    # Derived topologies
    # ------------------------------------------------------------------
    def with_votes(self, votes: Sequence[int]) -> "Topology":
        """Return a copy of this topology with a different vote assignment."""
        return Topology(self._n_sites, self._links, votes=votes, name=self._name)

    def with_name(self, name: str) -> "Topology":
        """Return a copy of this topology with a different display name."""
        return Topology(self._n_sites, self._links, votes=self._votes, name=name)

    def add_links(self, new_links: Iterable[Tuple[int, int] | Link]) -> "Topology":
        """Return a topology with ``new_links`` added (duplicates rejected)."""
        return Topology(
            self._n_sites,
            list(self._links) + list(new_links),
            votes=self._votes,
            name=self._name,
        )

    # ------------------------------------------------------------------
    # Structure predicates (used by analytic formulas to check their
    # applicability and by tests)
    # ------------------------------------------------------------------
    def is_ring(self) -> bool:
        """True iff the topology is a simple cycle over all sites.

        A 2-site "ring" would need a duplicate link, so rings require at
        least 3 sites.
        """
        if self._n_sites < 3 or self.n_links != self._n_sites:
            return False
        return all(self.degree(s) == 2 for s in self.sites()) and self._is_connected()

    def is_fully_connected(self) -> bool:
        """True iff every pair of sites shares a link."""
        return self.n_links == self._n_sites * (self._n_sites - 1) // 2

    def is_star(self) -> bool:
        """True iff one hub site links to every other site and no other links exist."""
        if self._n_sites < 2 or self.n_links != self._n_sites - 1:
            return False
        degrees = [self.degree(s) for s in self.sites()]
        return max(degrees) == self._n_sites - 1

    def _is_connected(self) -> bool:
        if self._n_sites == 1:
            return True
        seen = {0}
        stack = [0]
        while stack:
            site = stack.pop()
            for nbr in self.neighbors(site):
                if nbr not in seen:
                    seen.add(nbr)
                    stack.append(nbr)
        return len(seen) == self._n_sites

    def is_connected(self) -> bool:
        """True iff the topology is connected when everything is up."""
        return self._is_connected()

    # ------------------------------------------------------------------
    # Dunder
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Topology):
            return NotImplemented
        return (
            self._n_sites == other._n_sites
            and self._links == other._links
            and bool(np.array_equal(self._votes, other._votes))
        )

    def __hash__(self) -> int:
        return hash((self._n_sites, self._links, self._votes.tobytes()))

    def __repr__(self) -> str:
        return (
            f"Topology(n_sites={self._n_sites}, n_links={self.n_links}, "
            f"T={self.total_votes}, name={self._name!r})"
        )
