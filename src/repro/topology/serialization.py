"""Topology serialization and networkx interop.

The dict form is plain JSON-compatible data so experiment configurations
can be checked into a repository or shipped between processes; the
networkx form exists because downstream users of a quorum library usually
already hold their network as a ``networkx.Graph``.
"""

from __future__ import annotations

from typing import Any, Dict

import networkx as nx

from repro.errors import TopologyError
from repro.topology.model import Topology

__all__ = ["to_dict", "from_dict", "to_networkx", "from_networkx"]

_SCHEMA_VERSION = 1


def to_dict(topology: Topology) -> Dict[str, Any]:
    """Serialize ``topology`` to a JSON-compatible dict."""
    return {
        "schema": _SCHEMA_VERSION,
        "name": topology.name,
        "n_sites": topology.n_sites,
        "links": [list(link.endpoints()) for link in topology.links],
        "votes": topology.votes.tolist(),
    }


def from_dict(payload: Dict[str, Any]) -> Topology:
    """Rebuild a topology from :func:`to_dict` output."""
    try:
        schema = payload["schema"]
        if schema != _SCHEMA_VERSION:
            raise TopologyError(f"unsupported topology schema {schema!r}")
        return Topology(
            payload["n_sites"],
            [tuple(pair) for pair in payload["links"]],
            votes=payload["votes"],
            name=payload.get("name", ""),
        )
    except KeyError as missing:
        raise TopologyError(f"topology dict missing key {missing}") from None


def to_networkx(topology: Topology) -> nx.Graph:
    """Convert to a ``networkx.Graph`` with a ``votes`` node attribute."""
    graph = nx.Graph(name=topology.name)
    for site in topology.sites():
        graph.add_node(site, votes=int(topology.votes[site]))
    graph.add_edges_from(link.endpoints() for link in topology.links)
    return graph


def from_networkx(graph: nx.Graph, name: str = "") -> Topology:
    """Convert a ``networkx.Graph`` into a :class:`Topology`.

    Node labels must be hashable; they are relabelled to ``0..n-1`` in
    sorted order (sorted by ``repr`` when labels are not directly
    comparable). A ``votes`` node attribute, when present, carries over;
    missing attributes default to one vote.
    """
    nodes = list(graph.nodes)
    if not nodes:
        raise TopologyError("cannot build a topology from an empty graph")
    try:
        ordered = sorted(nodes)
    except TypeError:
        ordered = sorted(nodes, key=repr)
    index = {node: i for i, node in enumerate(ordered)}
    links = [(index[a], index[b]) for a, b in graph.edges if a != b]
    votes = [int(graph.nodes[node].get("votes", 1)) for node in ordered]
    return Topology(
        len(ordered),
        links,
        votes=votes,
        name=name or (graph.name if isinstance(graph.name, str) else ""),
    )
