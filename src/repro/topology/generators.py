"""Topology generators for every network family used in the paper.

All generators return immutable :class:`~repro.topology.model.Topology`
objects with the paper's default uniform one-vote-per-site assignment
(override with :meth:`Topology.with_votes`).
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.errors import TopologyError
from repro.rng import RandomState, as_generator
from repro.topology.chords import chord_endpoints, max_chords
from repro.topology.model import Link, Topology

__all__ = [
    "ring",
    "ring_with_chords",
    "fully_connected",
    "star",
    "bus",
    "grid",
    "random_tree",
    "erdos_renyi",
    "paper_topology",
    "PAPER_CHORD_COUNTS",
]

#: The chord counts of the paper's seven evaluated topologies (section 5.1).
PAPER_CHORD_COUNTS: Tuple[int, ...] = (0, 1, 2, 4, 16, 256, 4949)


def ring(n_sites: int, votes: Optional[Sequence[int]] = None) -> Topology:
    """A simple cycle over ``n_sites`` sites (the paper's base topology).

    A ring is the sparsest 2-edge-connected topology: it is "completely
    connected with the minimum number of links necessary to guarantee at
    least two disjoint paths between every pair of sites" (section 5.1).
    """
    if n_sites < 3:
        raise TopologyError(f"a ring needs at least 3 sites, got {n_sites}")
    links = [(i, (i + 1) % n_sites) for i in range(n_sites)]
    return Topology(n_sites, links, votes=votes, name=f"ring-{n_sites}")


def ring_with_chords(
    n_sites: int,
    n_chords: int,
    votes: Optional[Sequence[int]] = None,
) -> Topology:
    """The paper's "Topology i": an ``n_sites`` ring plus ``i`` chords.

    Chord placement follows the deterministic maximally-spread rule in
    :mod:`repro.topology.chords` (see DESIGN.md for the substitution note —
    the paper defers exact placement to its companion paper [14]).
    """
    base = ring(n_sites, votes=votes)
    if n_chords == 0:
        return base.with_name(f"topology-0(ring-{n_sites})")
    chords = chord_endpoints(n_sites, n_chords)
    return base.add_links(chords).with_name(f"topology-{n_chords}(ring-{n_sites})")


def fully_connected(n_sites: int, votes: Optional[Sequence[int]] = None) -> Topology:
    """A complete graph: every pair of sites shares a link."""
    if n_sites < 1:
        raise TopologyError(f"need at least one site, got {n_sites}")
    links = [(i, j) for i in range(n_sites) for j in range(i + 1, n_sites)]
    return Topology(n_sites, links, votes=votes, name=f"complete-{n_sites}")


def star(n_sites: int, hub: int = 0, votes: Optional[Sequence[int]] = None) -> Topology:
    """A star: every non-hub site links only to ``hub``."""
    if n_sites < 2:
        raise TopologyError(f"a star needs at least 2 sites, got {n_sites}")
    if not 0 <= hub < n_sites:
        raise TopologyError(f"hub {hub} outside 0..{n_sites - 1}")
    links = [(hub, s) for s in range(n_sites) if s != hub]
    return Topology(n_sites, links, votes=votes, name=f"star-{n_sites}")


def bus(n_sites: int, votes: Optional[Sequence[int]] = None) -> Topology:
    """A single-bus network, modelled as a star through a zero-vote hub.

    The paper's bus (section 4.2) is a shared medium with reliability
    ``r``: when the bus is up, all up sites communicate; when it is down,
    sites are isolated. We model the bus itself as an extra hub site that
    carries **zero votes** whose up/down state plays the role of the bus,
    and whose links to the real sites are perfectly reliable (the
    simulator lets per-component reliabilities express that). Site ids
    ``0..n_sites-1`` are the real sites; the hub is site ``n_sites``.
    """
    if n_sites < 1:
        raise TopologyError(f"a bus needs at least 1 site, got {n_sites}")
    hub = n_sites
    links = [(s, hub) for s in range(n_sites)]
    if votes is None:
        vote_list = [1] * n_sites + [0]
    else:
        vote_list = list(votes)
        if len(vote_list) == n_sites:
            vote_list = vote_list + [0]
        elif len(vote_list) != n_sites + 1:
            raise TopologyError(
                f"bus votes must cover the {n_sites} sites (hub gets 0), got {len(vote_list)}"
            )
    return Topology(n_sites + 1, links, votes=vote_list, name=f"bus-{n_sites}")


def grid(rows: int, cols: int, votes: Optional[Sequence[int]] = None) -> Topology:
    """A ``rows x cols`` 4-neighbour mesh."""
    if rows < 1 or cols < 1:
        raise TopologyError(f"grid dimensions must be positive, got {rows}x{cols}")
    links = []
    for r in range(rows):
        for c in range(cols):
            site = r * cols + c
            if c + 1 < cols:
                links.append((site, site + 1))
            if r + 1 < rows:
                links.append((site, site + cols))
    return Topology(rows * cols, links, votes=votes, name=f"grid-{rows}x{cols}")


def random_tree(n_sites: int, seed: RandomState = None,
                votes: Optional[Sequence[int]] = None) -> Topology:
    """A uniformly random labelled tree (random attachment)."""
    if n_sites < 1:
        raise TopologyError(f"need at least one site, got {n_sites}")
    rng = as_generator(seed)
    links = [(int(rng.integers(0, s)), s) for s in range(1, n_sites)]
    return Topology(n_sites, links, votes=votes, name=f"tree-{n_sites}")


def erdos_renyi(
    n_sites: int,
    edge_probability: float,
    seed: RandomState = None,
    votes: Optional[Sequence[int]] = None,
    ensure_connected: bool = False,
) -> Topology:
    """A G(n, p) random graph; optionally patched to be connected.

    ``ensure_connected`` adds the cheapest possible patch — a spanning
    chain over the components' representatives — so tests that need a
    connected baseline can ask for one without rejection sampling.
    """
    if not 0.0 <= edge_probability <= 1.0:
        raise TopologyError(f"edge probability must be in [0, 1], got {edge_probability}")
    rng = as_generator(seed)
    n_pairs = n_sites * (n_sites - 1) // 2
    mask = rng.random(n_pairs) < edge_probability
    links = []
    k = 0
    for i in range(n_sites):
        for j in range(i + 1, n_sites):
            if mask[k]:
                links.append((i, j))
            k += 1
    topo = Topology(n_sites, links, votes=votes, name=f"gnp-{n_sites}-{edge_probability:g}")
    if ensure_connected and not topo.is_connected():
        topo = _patch_connected(topo)
    return topo


def _patch_connected(topo: Topology) -> Topology:
    """Chain together the connected components of ``topo``."""
    representatives = []
    seen: set[int] = set()
    for site in topo.sites():
        if site in seen:
            continue
        representatives.append(site)
        stack = [site]
        seen.add(site)
        while stack:
            cur = stack.pop()
            for nbr in topo.neighbors(cur):
                if nbr not in seen:
                    seen.add(nbr)
                    stack.append(nbr)
    extra = [
        (representatives[i], representatives[i + 1])
        for i in range(len(representatives) - 1)
    ]
    return topo.add_links(extra).with_name(topo.name + "+patch")


def paper_topology(chords: int, n_sites: int = 101,
                   votes: Optional[Sequence[int]] = None) -> Topology:
    """One of the paper's evaluated topologies.

    ``chords`` is the paper's topology index: a 101-site ring plus that
    many chords; 4949 chords makes the network fully connected
    (``101*100/2 - 101 = 4949``).
    """
    if chords == max_chords(n_sites) + 0 and n_sites * (n_sites - 3) // 2 == chords:
        # Requesting every chord: build the complete graph directly, which
        # is both faster and self-documenting.
        return fully_connected(n_sites, votes=votes).with_name(
            f"topology-{chords}(complete-{n_sites})"
        )
    return ring_with_chords(n_sites, chords, votes=votes)
