"""Deterministic chord placement for ring-plus-chords topologies.

The paper evaluates "Topology i": a 101-site ring plus ``i`` additional
links (chords) for ``i in {0, 1, 2, 4, 16, 256, 4949}``, with the exact
chord placement deferred to the companion paper [14], which is not
available. DESIGN.md records the substitution we make here:

*Maximally-spread placement.* Chords are added in a deterministic order
that (a) keeps endpoints evenly rotated around the ring and (b) prefers
long chords (endpoints at near-antipodal ring distance). This matches the
paper's description of the topologies as "roughly symmetric" and
reproduces the qualitative progression ring -> fully connected as the
chord count grows.

The rule: enumerate candidate chords grouped by ring distance, longest
first (distance ``n//2`` down to 2 — distance-1 pairs are ring links). A
chord at distance ``d`` starting at site ``s`` joins ``s`` and
``(s + d) mod n``. Within one distance class we emit start sites in a
stride order that spreads them around the ring (stride chosen coprime to
``n`` and near ``n / phi`` so consecutive chords land far apart).
"""

from __future__ import annotations

from math import gcd
from typing import Iterator, List, Tuple

from repro.errors import TopologyError

__all__ = ["chord_endpoints", "spread_chords", "max_chords"]

_GOLDEN = (5**0.5 - 1) / 2  # 1/phi, the low-discrepancy rotation constant


def max_chords(n_sites: int) -> int:
    """Number of chords available on an ``n_sites`` ring.

    A complete graph has ``n(n-1)/2`` links; the ring already uses ``n`` of
    them (``n_sites >= 3``), leaving ``n(n-3)/2`` chords.
    """
    if n_sites < 3:
        raise TopologyError(f"a ring needs at least 3 sites, got {n_sites}")
    return n_sites * (n_sites - 3) // 2


def _spread_stride(n_sites: int) -> int:
    """A stride coprime to ``n_sites`` close to ``n_sites / phi``.

    Stepping start positions by this stride visits every site exactly once
    per distance class while keeping consecutive visits far apart — the
    classic golden-ratio low-discrepancy sequence, made integral.
    """
    target = max(1, round(n_sites * _GOLDEN))
    for offset in range(n_sites):
        for candidate in (target + offset, target - offset):
            if 1 <= candidate < n_sites and gcd(candidate, n_sites) == 1:
                return candidate
    return 1  # n_sites == 1 or 2 never reaches here; rings need n >= 3


def _distance_class(n_sites: int, distance: int) -> Iterator[Tuple[int, int]]:
    """Yield all chords of a given ring distance in spread order."""
    stride = _spread_stride(n_sites)
    antipodal = n_sites % 2 == 0 and distance == n_sites // 2
    # At the antipodal distance of an even ring each chord is generated
    # from both endpoints; only half the start sites give distinct chords.
    count = n_sites // 2 if antipodal else n_sites
    emitted = set()
    start = 0
    while len(emitted) < count:
        a, b = start, (start + distance) % n_sites
        key = (a, b) if a < b else (b, a)
        if key not in emitted:
            emitted.add(key)
            yield key
        start = (start + stride) % n_sites


def chord_endpoints(n_sites: int, n_chords: int) -> List[Tuple[int, int]]:
    """Return the first ``n_chords`` chords of the deterministic placement.

    Chords are emitted longest-distance-first, spread around the ring
    within each distance class. Raises :class:`TopologyError` when more
    chords are requested than the ring can host.
    """
    if n_chords < 0:
        raise TopologyError(f"chord count must be non-negative, got {n_chords}")
    limit = max_chords(n_sites)
    if n_chords > limit:
        raise TopologyError(
            f"a {n_sites}-site ring admits at most {limit} chords, asked for {n_chords}"
        )
    chords: List[Tuple[int, int]] = []
    if n_chords == 0:
        return chords
    for distance in range(n_sites // 2, 1, -1):
        for chord in _distance_class(n_sites, distance):
            chords.append(chord)
            if len(chords) == n_chords:
                return chords
    return chords


def spread_chords(n_sites: int, n_chords: int) -> List[Tuple[int, int]]:
    """Alias of :func:`chord_endpoints`; kept for readable call sites."""
    return chord_endpoints(n_sites, n_chords)
