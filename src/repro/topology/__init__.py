"""Network topology substrate.

The paper's system model (section 5.1) is a set of sites connected by
bi-directional, fallible links. This package provides an immutable
:class:`~repro.topology.model.Topology` value object plus generators for
every topology family the paper touches:

- ring networks (the paper's base topology),
- ring-plus-chords (the paper's Topologies 0, 1, 2, 4, 16, 256, 4949),
- fully connected networks,
- single-bus networks (modelled as a star through a hub, matching the
  analytic bus density in section 4.2),
- and general graphs (grid, tree, Erdős–Rényi) for the estimator and
  simulator, which work on arbitrary topologies.
"""

from repro.topology.model import Link, Topology
from repro.topology.chords import chord_endpoints, spread_chords
from repro.topology.generators import (
    bus,
    erdos_renyi,
    fully_connected,
    grid,
    paper_topology,
    random_tree,
    ring,
    ring_with_chords,
    star,
)
from repro.topology.serialization import (
    from_dict,
    from_networkx,
    to_dict,
    to_networkx,
)

__all__ = [
    "Link",
    "Topology",
    "bus",
    "chord_endpoints",
    "erdos_renyi",
    "from_dict",
    "from_networkx",
    "fully_connected",
    "grid",
    "paper_topology",
    "random_tree",
    "ring",
    "ring_with_chords",
    "spread_chords",
    "star",
    "to_dict",
    "to_networkx",
]
