"""Replicated-database substrate: real reads and writes over the protocols.

The availability machinery elsewhere in the library only counts grants
and denials; this package executes the *data path* — per-site copies with
version timestamps, quorum reads that return the newest copy in the
component, quorum writes that install a new version at every reachable
copy — and checks one-copy serializability on every operation (each
granted read must return the value of the most recent granted write).
This is what turns the reproduction into a distributed-database library
rather than a probability calculator, and it is the machinery the QR
safety tests drive.
"""

from repro.replication.store import CopyState, SiteStore
from repro.replication.item import ReplicatedItem
from repro.replication.transaction import (
    AccessOutcome,
    ReadResult,
    WriteResult,
)
from repro.replication.database import ReplicatedDatabase
from repro.replication.multidb import ItemBinding, MultiItemDatabase, TransactionResult

__all__ = [
    "AccessOutcome",
    "ItemBinding",
    "MultiItemDatabase",
    "CopyState",
    "ReadResult",
    "ReplicatedDatabase",
    "ReplicatedItem",
    "SiteStore",
    "TransactionResult",
    "WriteResult",
]
