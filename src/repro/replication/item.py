"""Replicated data item descriptor.

An item names which sites hold copies and how many votes each copy
carries. The paper's evaluation replicates one item at every site with
one vote per copy; partial replication is expressed by listing only a
subset of sites (non-replica sites can still *submit* accesses — they
just contribute no votes).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ReproError, VoteAssignmentError
from repro.topology.model import Topology

__all__ = ["ReplicatedItem"]


@dataclass(frozen=True)
class ReplicatedItem:
    """Identity, placement, and vote weights of one replicated item."""

    item_id: str
    replica_sites: Tuple[int, ...]
    replica_votes: Tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.item_id:
            raise ReproError("item_id must be non-empty")
        if not self.replica_sites:
            raise ReproError(f"item {self.item_id!r} needs at least one replica")
        if len(self.replica_sites) != len(self.replica_votes):
            raise VoteAssignmentError(
                f"item {self.item_id!r}: {len(self.replica_sites)} sites but "
                f"{len(self.replica_votes)} vote entries"
            )
        if len(set(self.replica_sites)) != len(self.replica_sites):
            raise ReproError(f"item {self.item_id!r} lists a replica site twice")
        if any(v < 0 for v in self.replica_votes):
            raise VoteAssignmentError("replica votes must be non-negative")
        if sum(self.replica_votes) <= 0:
            raise VoteAssignmentError("total votes must be positive")

    # ------------------------------------------------------------------
    @classmethod
    def fully_replicated(cls, item_id: str, topology: Topology) -> "ReplicatedItem":
        """A copy at every site, votes taken from the topology (paper default)."""
        return cls(
            item_id,
            tuple(topology.sites()),
            tuple(int(v) for v in topology.votes),
        )

    @classmethod
    def at_sites(
        cls, item_id: str, sites: Sequence[int], votes: Optional[Sequence[int]] = None
    ) -> "ReplicatedItem":
        """Partial replication with uniform (or explicit) votes."""
        sites_t = tuple(int(s) for s in sites)
        votes_t = tuple(int(v) for v in votes) if votes is not None else (1,) * len(sites_t)
        return cls(item_id, sites_t, votes_t)

    # ------------------------------------------------------------------
    @property
    def total_votes(self) -> int:
        return int(sum(self.replica_votes))

    def votes_vector(self, n_sites: int) -> np.ndarray:
        """Dense per-site vote vector (zeros at non-replica sites)."""
        if max(self.replica_sites) >= n_sites:
            raise ReproError(
                f"item {self.item_id!r} has a replica at site "
                f"{max(self.replica_sites)}, outside a {n_sites}-site network"
            )
        votes = np.zeros(n_sites, dtype=np.int64)
        for site, v in zip(self.replica_sites, self.replica_votes):
            votes[site] = v
        return votes

    def holds_copy(self, site: int) -> bool:
        return site in self.replica_sites
