"""The replicated database: the data path over a replica-control protocol.

:class:`ReplicatedDatabase` owns the per-site stores, a mutable network
state, and a protocol instance; callers drive it with ``submit_read`` /
``submit_write`` plus explicit failure/repair calls (or let the
discrete-event simulator drive the network underneath). The execution
model follows the paper's instantaneous-event semantics: no site or link
changes state while an access is processing.

**Read path.** If the protocol grants the read, the database returns the
copy with the highest commit timestamp among replicas in the submitting
site's component. Quorum intersection (``q_r + q_w > T``) guarantees this
is the globally newest committed value — asserted, not assumed: a
one-copy-serializability checker compares every granted read against the
last granted write and raises :class:`~repro.errors.SerializabilityError`
on any mismatch.

**Write path.** If the protocol grants the write, a fresh commit
timestamp is assigned and the new value installed at every replica in the
component (a superset of a write quorum). ``q_w > T/2`` makes concurrent
writes in disjoint components impossible — also asserted by the checker,
which tracks commit timestamps globally.

**Resilience.** With a :class:`~repro.faults.retry.RetryPolicy` attached,
a denied access is retried with jittered exponential backoff on the
database's *simulated* clock, bounded by attempts and an optional
deadline. The ``on_wait`` hook fires after each backoff advance so a
driving harness (a chaos scenario, a fault-schedule replayer) can apply
the repairs that make the retry worthwhile. With an
:class:`~repro.faults.monitor.InvariantMonitor` attached, consistency
mismatches are *recorded* with context instead of raised, so one bad
read cannot kill a whole chaos campaign.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover
    from repro.faults.monitor import InvariantMonitor
    from repro.faults.retry import RetryPolicy

import numpy as np

from repro.connectivity.dynamic import ComponentTracker, NetworkState
from repro.errors import ProtocolError, ReproError, SerializabilityError
from repro.protocols.base import ReplicaControlProtocol
from repro.replication.item import ReplicatedItem
from repro.replication.store import SiteStore
from repro.replication.transaction import AccessOutcome, ReadResult, WriteResult
from repro.rng import RandomState, as_generator
from repro.telemetry import audit as _audit
from repro.telemetry.recorder import resolve as _resolve_telemetry
from repro.topology.model import Topology

__all__ = ["ReplicatedDatabase"]


class ReplicatedDatabase:
    """One replicated item served by a protocol over a fallible network."""

    def __init__(
        self,
        topology: Topology,
        protocol: ReplicaControlProtocol,
        item: Optional[ReplicatedItem] = None,
        initial_value: Any = None,
        check_serializability: bool = True,
        retry_policy: Optional["RetryPolicy"] = None,
        retry_seed: RandomState = None,
        on_wait: Optional[Callable[[float], None]] = None,
        monitor: Optional["InvariantMonitor"] = None,
        telemetry=None,
        record_history: bool = True,
    ) -> None:
        self.topology = topology
        self.protocol = protocol
        self.item = item or ReplicatedItem.fully_replicated("item", topology)
        if not np.array_equal(self.item.votes_vector(topology.n_sites), topology.votes):
            raise ProtocolError(
                "item vote placement disagrees with the topology's vote vector; "
                "build the topology with Topology.with_votes(item.votes_vector(n))"
            )
        self.check_serializability = check_serializability
        #: Optional retry/backoff discipline applied by submit_read/submit_write.
        self.retry_policy = retry_policy
        self._retry_rng = as_generator(retry_seed)
        #: Called with the new simulated time after each backoff advance,
        #: letting the driving harness heal (or further break) the network
        #: while the access waits.
        self.on_wait = on_wait
        #: Optional chaos monitor: serializability mismatches are recorded
        #: there (with context) instead of raised.
        self.monitor = monitor
        #: Telemetry recorder: every access decision is audited with its
        #: cause (granted / site_down / no_quorum / stale_assignment) and
        #: the quorums in force. The null recorder makes this free.
        self.telemetry = _resolve_telemetry(telemetry)
        if self.telemetry.enabled:
            bind = getattr(protocol, "bind_telemetry", None)
            if bind is not None:
                bind(self.telemetry)

        self.state = NetworkState(topology)
        self.tracker = ComponentTracker(self.state)
        self.stores: Dict[int, SiteStore] = {}
        for site in self.item.replica_sites:
            store = SiteStore(site)
            store.initialize(self.item.item_id, initial_value)
            self.stores[site] = store

        #: Monotone logical clock assigning commit timestamps.
        self._clock = 0
        #: (timestamp, value) of the last granted write, for the checker.
        self._last_commit: Tuple[int, Any] = (0, initial_value)
        #: Operation log for post-hoc analysis. Long-running drivers (the
        #: serving layer pushes ~10^6 accesses through one database) turn
        #: it off; the audit log keeps the exact totals either way.
        self.record_history = record_history
        self.history: List[object] = []
        #: Refined cause of the most recent access decision, exactly as
        #: the audit log recorded it (``granted`` / ``site_down`` /
        #: ``no_quorum`` / ``stale_assignment``). Lets callers reconcile
        #: their own accounting against the audit totals without
        #: re-deriving the stale-assignment refinement. None until the
        #: first audited decision (requires an enabled recorder).
        self.last_audit_reason: Optional[str] = None
        self._time = 0.0

        self.protocol.on_network_change(self.tracker)

    # ------------------------------------------------------------------
    # Network control (exposed so tests/examples can script partitions)
    # ------------------------------------------------------------------
    def _network_changed(self) -> None:
        self.protocol.on_network_change(self.tracker)

    def fail_site(self, site: int) -> None:
        self.state.fail_site(site)
        self._network_changed()

    def repair_site(self, site: int) -> None:
        self.state.repair_site(site)
        self._network_changed()

    def fail_link(self, a: int, b: int) -> None:
        self.state.fail_link(self.topology.link_id(a, b))
        self._network_changed()

    def repair_link(self, a: int, b: int) -> None:
        self.state.repair_link(self.topology.link_id(a, b))
        self._network_changed()

    def advance_time(self, dt: float) -> None:
        """Move the logical wall clock (timestamps on results only)."""
        if dt < 0:
            raise ReproError(f"time must not run backwards, got dt={dt}")
        self._time += dt

    # ------------------------------------------------------------------
    # Data path
    # ------------------------------------------------------------------
    def _component_replicas(self, site: int) -> List[int]:
        """Replica sites inside ``site``'s current component."""
        members = self.tracker.component_of(site)
        return [int(s) for s in members if self.item.holds_copy(int(s))]

    def _consistency_violation(self, detail: str) -> None:
        """Record (chaos mode) or raise (strict mode) a 1SR violation."""
        if self.monitor is not None:
            self.monitor.record_serializability(self._time, detail)
        else:
            raise SerializabilityError(detail)

    def _audit_decision(self, op: str, site: int, reason: str,
                        votes: Optional[int], attempt: int) -> None:
        """Audit one access decision (enabled recorders only).

        A ``no_quorum`` denial is refined to ``stale_assignment`` when
        the protocol is versioned and the submitting site's component
        holds an assignment version older than the newest installed one —
        the denial is then a cost of the QR propagation rule, not of the
        partition itself.
        """
        tel = self.telemetry
        if not tel.enabled:
            self.last_audit_reason = reason
            return
        protocol = self.protocol
        members = self.tracker.component_of(site)
        assignment = None
        effective = getattr(protocol, "effective_assignment", None)
        if effective is not None:
            assignment = effective(self.tracker, site)
        if assignment is None:
            assignment = getattr(protocol, "assignment", None)
        version = None
        versions = getattr(protocol, "site_version", None)
        if versions is not None:
            versions = np.asarray(versions)
            version = int(versions[members].max()) if members.size else int(versions[site])
            if reason == _audit.NO_QUORUM and version < int(versions.max()):
                reason = _audit.STALE_ASSIGNMENT
        self.last_audit_reason = reason
        tel.audit.record(
            self._time, op, reason,
            site=site,
            component_votes=None if votes is None else int(votes),
            component_size=int(members.size),
            read_quorum=getattr(assignment, "read_quorum", None),
            write_quorum=getattr(assignment, "write_quorum", None),
            assignment_version=version,
        )
        tel.metrics.counter(
            "repro_db_accesses_total", "database access decisions by cause",
        ).inc(op=op, outcome=reason)
        if attempt > 1:
            tel.metrics.counter(
                "repro_db_retries_total", "access attempts beyond the first",
            ).inc(op=op)

    def _retry_loop(self, op: str, attempt_once):
        """Drive ``attempt_once(attempt_number)`` under the retry policy.

        Backoff runs on the simulated clock; ``on_wait`` fires after every
        advance so the harness can evolve the network before the retry.
        The last (possibly still denied) result is returned. Every retry
        scheduled counts toward ``repro_retry_attempts_total`` and a final
        denial toward ``repro_retry_exhausted_total``, both labeled with
        the (refined) cause of the denial that provoked them.
        """
        policy = self.retry_policy
        result = attempt_once(1)
        if policy is None or result.granted:
            return result
        started = self._time
        attempt = 1
        tel = self.telemetry
        while attempt < policy.max_attempts:
            cause = self.last_audit_reason or result.outcome.value
            delay = policy.backoff(attempt, self._retry_rng)
            if not policy.within_deadline(self._time + delay - started):
                break
            tel.counter(
                "repro_retry_attempts_total",
                "retry attempts scheduled, by op and denial cause",
            ).inc(op=op, cause=cause)
            self.advance_time(delay)
            if self.on_wait is not None:
                self.on_wait(self._time)
            attempt += 1
            result = attempt_once(attempt)
            if result.granted:
                return result
        tel.counter(
            "repro_retry_exhausted_total",
            "accesses failed after their retry budget, by op and last cause",
        ).inc(op=op, cause=self.last_audit_reason or result.outcome.value)
        return result

    def submit_read(self, site: int) -> ReadResult:
        """Submit a read at ``site``; returns the outcome.

        A granted read returns the newest copy visible in the component.
        Under a retry policy, denied reads are retried with backoff; every
        attempt is appended to the history and the returned result's
        ``attempts`` says which try produced it.
        """
        self._check_site(site)
        return self._retry_loop("read", lambda attempt: self._read_once(site, attempt))

    def _read_once(self, site: int, attempt: int) -> ReadResult:
        if not self.state.site_up[site]:
            result = ReadResult(
                AccessOutcome.SITE_DOWN, site, self._time, attempts=attempt
            )
            if self.record_history:
                self.history.append(result)
            self._audit_decision("read", site, _audit.SITE_DOWN, None, attempt)
            return result
        votes = self.tracker.votes_at(site)
        if not self.protocol.decide(site, is_read=True, tracker=self.tracker):
            result = ReadResult(
                AccessOutcome.NO_QUORUM, site, self._time, component_votes=votes,
                attempts=attempt,
            )
            if self.record_history:
                self.history.append(result)
            self._audit_decision("read", site, _audit.NO_QUORUM, votes, attempt)
            return result

        replicas = self._component_replicas(site)
        if not replicas:
            # A protocol granting a read in a replica-free component is
            # broken (it saw >= q_r >= 1 votes, so some replica is there).
            raise ProtocolError(
                f"protocol granted a read at site {site} but its component "
                "holds no replica"
            )
        newest = max(
            (self.stores[r].read(self.item.item_id) for r in replicas),
            key=lambda copy: copy.timestamp,
        )
        if self.check_serializability:
            expected_ts, expected_value = self._last_commit
            if newest.timestamp != expected_ts or newest.value != expected_value:
                self._consistency_violation(
                    f"read at site {site} returned timestamp {newest.timestamp} "
                    f"(value {newest.value!r}) but the last committed write is "
                    f"timestamp {expected_ts} (value {expected_value!r}) — "
                    "one-copy serializability violated"
                )
        result = ReadResult(
            AccessOutcome.GRANTED,
            site,
            self._time,
            value=newest.value,
            timestamp=newest.timestamp,
            component_votes=votes,
            attempts=attempt,
        )
        if self.record_history:
            self.history.append(result)
        self._audit_decision("read", site, _audit.GRANTED, votes, attempt)
        return result

    def submit_write(self, site: int, value: Any) -> WriteResult:
        """Submit a write at ``site``; on grant, installs at all reachable replicas.

        Under a retry policy, denied writes are retried with backoff
        exactly like reads.
        """
        self._check_site(site)
        return self._retry_loop(
            "write", lambda attempt: self._write_once(site, value, attempt)
        )

    def _write_once(self, site: int, value: Any, attempt: int) -> WriteResult:
        if not self.state.site_up[site]:
            result = WriteResult(
                AccessOutcome.SITE_DOWN, site, self._time, attempts=attempt
            )
            if self.record_history:
                self.history.append(result)
            self._audit_decision("write", site, _audit.SITE_DOWN, None, attempt)
            return result
        votes = self.tracker.votes_at(site)
        if not self.protocol.decide(site, is_read=False, tracker=self.tracker):
            result = WriteResult(
                AccessOutcome.NO_QUORUM, site, self._time, component_votes=votes,
                attempts=attempt,
            )
            if self.record_history:
                self.history.append(result)
            self._audit_decision("write", site, _audit.NO_QUORUM, votes, attempt)
            return result

        replicas = self._component_replicas(site)
        if not replicas:
            raise ProtocolError(
                f"protocol granted a write at site {site} but its component "
                "holds no replica"
            )
        self._clock += 1
        timestamp = self._clock
        if self.check_serializability and timestamp <= self._last_commit[0]:
            self._consistency_violation(
                f"write commit timestamp {timestamp} not newer than last commit "
                f"{self._last_commit[0]} — concurrent writes slipped through"
            )
        for r in replicas:
            self.stores[r].write(self.item.item_id, value, timestamp)
        self._last_commit = (timestamp, value)
        result = WriteResult(
            AccessOutcome.GRANTED,
            site,
            self._time,
            timestamp=timestamp,
            updated_sites=tuple(replicas),
            component_votes=votes,
            attempts=attempt,
        )
        if self.record_history:
            self.history.append(result)
        self._audit_decision("write", site, _audit.GRANTED, votes, attempt)
        return result

    def peek_newest(self, site: int):
        """The newest copy visible in ``site``'s component, sans quorum.

        The stale-read fallback of the serving layer: when a read has
        exhausted its retries, the freshest *component-local* copy may
        still be worth serving — explicitly marked stale, never counted
        as a granted read, and carrying no consistency guarantee. Returns
        None when the site is down or its component holds no replica.
        """
        self._check_site(site)
        if not self.state.site_up[site]:
            return None
        replicas = self._component_replicas(site)
        if not replicas:
            return None
        return max(
            (self.stores[r].read(self.item.item_id) for r in replicas),
            key=lambda copy: copy.timestamp,
        )

    # ------------------------------------------------------------------
    def _check_site(self, site: int) -> None:
        if not 0 <= site < self.topology.n_sites:
            raise ReproError(f"unknown site {site}")

    def copy_at(self, site: int):
        """Inspect the raw copy at one replica site (tests/debugging)."""
        if site not in self.stores:
            raise ReproError(f"site {site} holds no replica")
        return self.stores[site].read(self.item.item_id)

    def grant_counts(self) -> Dict[str, int]:
        """Tally of outcomes in the history, for quick availability checks."""
        counts: Dict[str, int] = {}
        for entry in self.history:
            kind = "read" if isinstance(entry, ReadResult) else "write"
            key = f"{kind}:{entry.outcome.value}"
            counts[key] = counts.get(key, 0) + 1
        return counts
