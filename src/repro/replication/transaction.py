"""Transaction outcome types for the replicated database.

Kept deliberately small: an access either commits with a payload or is
denied with a reason. The database layer produces these; tests and
examples pattern-match on them.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Any, Optional, Tuple

__all__ = ["AccessOutcome", "ReadResult", "WriteResult"]


class AccessOutcome(Enum):
    """Why an access ended the way it did."""

    GRANTED = "granted"
    #: The submitting site is down — ACC counts this as a denial.
    SITE_DOWN = "site_down"
    #: The component lacks the required quorum of votes.
    NO_QUORUM = "no_quorum"


@dataclass(frozen=True)
class ReadResult:
    """Outcome of a read access."""

    outcome: AccessOutcome
    site: int
    time: float
    #: The value and commit timestamp returned (granted reads only).
    value: Any = None
    timestamp: Optional[int] = None
    #: Votes visible in the submitting site's component when decided.
    component_votes: int = 0
    #: Which attempt produced this result (1 = first try; >1 under retry).
    attempts: int = 1

    @property
    def granted(self) -> bool:
        return self.outcome is AccessOutcome.GRANTED


@dataclass(frozen=True)
class WriteResult:
    """Outcome of a write access."""

    outcome: AccessOutcome
    site: int
    time: float
    #: Commit timestamp assigned (granted writes only).
    timestamp: Optional[int] = None
    #: Replica sites whose copies were updated (granted writes only).
    updated_sites: Tuple[int, ...] = ()
    component_votes: int = 0
    #: Which attempt produced this result (1 = first try; >1 under retry).
    attempts: int = 1

    @property
    def granted(self) -> bool:
        return self.outcome is AccessOutcome.GRANTED
