"""Multi-item replicated database: per-item placement, votes, and quorums.

A real distributed database replicates many items, and the Figure-1
algorithm naturally tunes each item separately — a read-mostly catalog
wants ``q_r = 1``, a write-heavy ledger wants majority, and partially
replicated items carry their own vote geometry. This module composes
the single-item machinery:

- one shared :class:`~repro.connectivity.dynamic.NetworkState` (all
  items see the same partitions);
- per item: a vote vector, a replica-control protocol, a
  :class:`~repro.connectivity.dynamic.ComponentTracker` with that item's
  votes, per-site copies, and the one-copy-serializability checker;
- multi-item transactions: an all-or-nothing group of reads/writes that
  commits iff *every* touched item's quorum is satisfied at the
  submitting site. Under the paper's instantaneous-event model no
  failure can interleave with a transaction, so atomic commitment needs
  no 2PC machinery — the decision is simply the conjunction of the
  per-item decisions, evaluated against one frozen network state.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.connectivity.dynamic import ComponentTracker, NetworkState
from repro.errors import ProtocolError, ReproError
from repro.protocols.base import ReplicaControlProtocol
from repro.replication.item import ReplicatedItem
from repro.replication.store import SiteStore
from repro.replication.transaction import AccessOutcome, ReadResult, WriteResult
from repro.topology.model import Topology

__all__ = ["ItemBinding", "TransactionResult", "MultiItemDatabase"]


@dataclass(frozen=True)
class ItemBinding:
    """One item's configuration inside a multi-item database."""

    item: ReplicatedItem
    protocol: ReplicaControlProtocol
    initial_value: Any = None


@dataclass(frozen=True)
class TransactionResult:
    """Outcome of an all-or-nothing multi-item transaction."""

    outcome: AccessOutcome
    site: int
    #: Per-item results, populated only when the transaction committed.
    reads: Mapping[str, ReadResult] = None  # type: ignore[assignment]
    writes: Mapping[str, WriteResult] = None  # type: ignore[assignment]
    #: Item that caused the denial (None for SITE_DOWN or on commit).
    blocking_item: Optional[str] = None

    @property
    def committed(self) -> bool:
        return self.outcome is AccessOutcome.GRANTED


class MultiItemDatabase:
    """Several replicated items over one fallible network."""

    def __init__(self, topology: Topology, bindings: Sequence[ItemBinding]) -> None:
        if not bindings:
            raise ReproError("need at least one item binding")
        ids = [b.item.item_id for b in bindings]
        if len(set(ids)) != len(ids):
            raise ReproError(f"duplicate item ids in {ids}")
        self.topology = topology
        self.state = NetworkState(topology)

        self._bindings: Dict[str, ItemBinding] = {}
        self._trackers: Dict[str, ComponentTracker] = {}
        self._stores: Dict[str, Dict[int, SiteStore]] = {}
        self._clocks: Dict[str, int] = {}
        self._last_commit: Dict[str, Tuple[int, Any]] = {}

        for binding in bindings:
            item = binding.item
            votes = item.votes_vector(topology.n_sites)
            tracker = ComponentTracker(self.state, votes=votes)
            self._bindings[item.item_id] = binding
            self._trackers[item.item_id] = tracker
            stores: Dict[int, SiteStore] = {}
            for site in item.replica_sites:
                store = SiteStore(site)
                store.initialize(item.item_id, binding.initial_value)
                stores[site] = store
            self._stores[item.item_id] = stores
            self._clocks[item.item_id] = 0
            self._last_commit[item.item_id] = (0, binding.initial_value)
            binding.protocol.on_network_change(tracker)

    # ------------------------------------------------------------------
    @property
    def item_ids(self) -> List[str]:
        return list(self._bindings)

    def tracker_for(self, item_id: str) -> ComponentTracker:
        self._check_item(item_id)
        return self._trackers[item_id]

    def binding_for(self, item_id: str) -> ItemBinding:
        self._check_item(item_id)
        return self._bindings[item_id]

    def _check_item(self, item_id: str) -> None:
        if item_id not in self._bindings:
            raise ReproError(f"unknown item {item_id!r}")

    def _check_site(self, site: int) -> None:
        if not 0 <= site < self.topology.n_sites:
            raise ReproError(f"unknown site {site}")

    # ------------------------------------------------------------------
    # Network control
    # ------------------------------------------------------------------
    def _network_changed(self) -> None:
        for item_id, binding in self._bindings.items():
            binding.protocol.on_network_change(self._trackers[item_id])

    def fail_site(self, site: int) -> None:
        self.state.fail_site(site)
        self._network_changed()

    def repair_site(self, site: int) -> None:
        self.state.repair_site(site)
        self._network_changed()

    def fail_link(self, a: int, b: int) -> None:
        self.state.fail_link(self.topology.link_id(a, b))
        self._network_changed()

    def repair_link(self, a: int, b: int) -> None:
        self.state.repair_link(self.topology.link_id(a, b))
        self._network_changed()

    # ------------------------------------------------------------------
    # Per-item decisions and data path
    # ------------------------------------------------------------------
    def _decide(self, item_id: str, site: int, is_read: bool) -> bool:
        binding = self._bindings[item_id]
        return binding.protocol.decide(site, is_read, self._trackers[item_id])

    def _component_replicas(self, item_id: str, site: int) -> List[int]:
        item = self._bindings[item_id].item
        members = self._trackers[item_id].component_of(site)
        return [int(s) for s in members if item.holds_copy(int(s))]

    def _execute_read(self, item_id: str, site: int) -> ReadResult:
        tracker = self._trackers[item_id]
        replicas = self._component_replicas(item_id, site)
        if not replicas:
            raise ProtocolError(
                f"protocol granted a read of {item_id!r} at site {site} but the "
                "component holds no replica"
            )
        newest = max(
            (self._stores[item_id][rep].read(item_id) for rep in replicas),
            key=lambda copy: copy.timestamp,
        )
        expected_ts, expected_value = self._last_commit[item_id]
        if newest.timestamp != expected_ts or newest.value != expected_value:
            from repro.errors import SerializabilityError

            raise SerializabilityError(
                f"read of {item_id!r} at site {site} returned timestamp "
                f"{newest.timestamp} but the last commit is {expected_ts}"
            )
        return ReadResult(
            AccessOutcome.GRANTED, site, 0.0,
            value=newest.value, timestamp=newest.timestamp,
            component_votes=int(tracker.vote_totals[site]),
        )

    def _execute_write(self, item_id: str, site: int, value: Any) -> WriteResult:
        tracker = self._trackers[item_id]
        replicas = self._component_replicas(item_id, site)
        if not replicas:
            raise ProtocolError(
                f"protocol granted a write of {item_id!r} at site {site} but the "
                "component holds no replica"
            )
        self._clocks[item_id] += 1
        timestamp = self._clocks[item_id]
        for rep in replicas:
            self._stores[item_id][rep].write(item_id, value, timestamp)
        self._last_commit[item_id] = (timestamp, value)
        return WriteResult(
            AccessOutcome.GRANTED, site, 0.0,
            timestamp=timestamp, updated_sites=tuple(replicas),
            component_votes=int(tracker.vote_totals[site]),
        )

    def read(self, item_id: str, site: int) -> ReadResult:
        """Single-item read (a one-read transaction)."""
        result = self.transaction(site, reads=[item_id])
        if result.committed:
            return result.reads[item_id]
        return ReadResult(result.outcome, site, 0.0)

    def write(self, item_id: str, site: int, value: Any) -> WriteResult:
        """Single-item write (a one-write transaction)."""
        result = self.transaction(site, writes={item_id: value})
        if result.committed:
            return result.writes[item_id]
        return WriteResult(result.outcome, site, 0.0)

    def transaction(
        self,
        site: int,
        reads: Sequence[str] = (),
        writes: Optional[Mapping[str, Any]] = None,
    ) -> TransactionResult:
        """All-or-nothing multi-item transaction submitted at ``site``.

        Commits iff the submitting site is up and *every* touched item's
        protocol grants its operation in the current (frozen) network
        state; otherwise nothing is applied and the blocking item is
        reported.
        """
        writes = dict(writes or {})
        self._check_site(site)
        read_ids = list(reads)
        for item_id in read_ids + list(writes):
            self._check_item(item_id)
        if not read_ids and not writes:
            raise ReproError("a transaction must touch at least one item")
        overlap = set(read_ids) & set(writes)
        if overlap:
            raise ReproError(
                f"items {sorted(overlap)} appear as both read and write; "
                "a write subsumes the read"
            )

        if not self.state.site_up[site]:
            return TransactionResult(AccessOutcome.SITE_DOWN, site)

        # Decision phase: conjunction over all touched items.
        for item_id in read_ids:
            if not self._decide(item_id, site, is_read=True):
                return TransactionResult(
                    AccessOutcome.NO_QUORUM, site, blocking_item=item_id
                )
        for item_id in writes:
            if not self._decide(item_id, site, is_read=False):
                return TransactionResult(
                    AccessOutcome.NO_QUORUM, site, blocking_item=item_id
                )

        # Execution phase: no event can interleave (instantaneous model),
        # so applying sequentially is atomic.
        read_results = {i: self._execute_read(i, site) for i in read_ids}
        write_results = {
            i: self._execute_write(i, site, value) for i, value in writes.items()
        }
        return TransactionResult(
            AccessOutcome.GRANTED, site, reads=read_results, writes=write_results
        )

    # ------------------------------------------------------------------
    def copy_at(self, item_id: str, site: int):
        """Inspect one raw copy (tests/debugging)."""
        self._check_item(item_id)
        stores = self._stores[item_id]
        if site not in stores:
            raise ReproError(f"site {site} holds no replica of {item_id!r}")
        return stores[site].read(item_id)
