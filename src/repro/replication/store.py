"""Per-site storage for replicated data item copies.

Each copy carries a *version timestamp* — a monotone commit sequence
number assigned by the write path — alongside its value. Reads resolve
staleness by comparing timestamps: the quorum intersection property
guarantees the newest timestamp visible in any read quorum is the newest
commit overall.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional

from repro.errors import ReproError

__all__ = ["CopyState", "SiteStore"]


@dataclass(frozen=True)
class CopyState:
    """One copy's state: the value and the commit timestamp that wrote it."""

    value: Any
    timestamp: int

    def newer_than(self, other: "CopyState") -> bool:
        return self.timestamp > other.timestamp


class SiteStore:
    """All item copies held at one site.

    A site can hold copies of many items; the paper evaluates a single
    item, but the store is keyed by item id so multi-item databases work
    without change.
    """

    def __init__(self, site: int) -> None:
        if site < 0:
            raise ReproError(f"site id must be non-negative, got {site}")
        self.site = int(site)
        self._copies: Dict[str, CopyState] = {}

    def initialize(self, item_id: str, value: Any) -> None:
        """Install the initial copy (timestamp 0)."""
        self._copies[item_id] = CopyState(value=value, timestamp=0)

    def has_copy(self, item_id: str) -> bool:
        return item_id in self._copies

    def read(self, item_id: str) -> CopyState:
        """Return this copy's state; raises if the site holds no copy."""
        try:
            return self._copies[item_id]
        except KeyError:
            raise ReproError(f"site {self.site} holds no copy of {item_id!r}") from None

    def write(self, item_id: str, value: Any, timestamp: int) -> None:
        """Install a newer version; stale installs are rejected.

        The monotonicity check is a defence-in-depth assertion: the quorum
        write path always writes strictly increasing timestamps, so a
        violation here means a protocol bug, not a data race.
        """
        current = self._copies.get(item_id)
        if current is not None and timestamp <= current.timestamp:
            raise ReproError(
                f"stale write to {item_id!r} at site {self.site}: "
                f"timestamp {timestamp} <= current {current.timestamp}"
            )
        self._copies[item_id] = CopyState(value=value, timestamp=timestamp)

    def items(self) -> Dict[str, CopyState]:
        """Snapshot of all copies at this site."""
        return dict(self._copies)
