"""One-call reproduction validation: do the paper's claims hold here, now?

:func:`validate_reproduction` runs a fast battery of the paper's
checkable structural claims (the same ones the benchmark harness asserts
at larger scale) and returns a structured report. It exists so that a
downstream user — or CI — can answer "is this installation faithful?"
with one call or ``python -m repro validate``.

Checks (all at a configurable scale):

1. ring closed form == enumeration oracle (exact, small n);
2. complete closed form == Monte-Carlo (statistical);
3. simulator stationary density == ring closed form (full pipeline);
4. availability at ``q_r = 1`` equals ``p * alpha`` (section 5.3);
5. curves converge at ``q_r = floor(T/2)`` (section 5.3);
6. sparse + read-heavy optimum at the left edge, dense + write-heavy at
   majority (section 5.5);
7. the write-floor constraint is respected and costs availability
   (section 5.4);
8. measured ACC stays below the site-reliability ceiling (section 3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.analytic.complete import complete_density
from repro.analytic.enumeration import enumerate_density
from repro.analytic.montecarlo import montecarlo_density
from repro.analytic.ring import ring_density
from repro.experiments.paper import PAPER_RELIABILITY, ExperimentScale
from repro.protocols.majority import MajorityConsensusProtocol
from repro.quorum.availability import AvailabilityModel
from repro.quorum.bounds import site_reliability_acc_bound
from repro.quorum.constraints import optimize_with_write_floor
from repro.quorum.optimizer import optimal_read_quorum
from repro.simulation.runner import run_simulation
from repro.topology.generators import fully_connected, ring

__all__ = ["CheckResult", "ValidationReport", "validate_reproduction"]

#: Default scale: 31-site networks, enough accesses for ~1% density noise.
VALIDATION_SCALE = ExperimentScale(
    name="validate",
    n_sites=31,
    warmup_accesses=0.0,
    accesses_per_batch=40_000.0,
    n_batches=2,
    initial_state="stationary",
)


@dataclass(frozen=True)
class CheckResult:
    """Outcome of one validation check."""

    name: str
    passed: bool
    detail: str

    def __str__(self) -> str:
        status = "PASS" if self.passed else "FAIL"
        return f"[{status}] {self.name}: {self.detail}"


@dataclass
class ValidationReport:
    """All check outcomes plus an overall verdict."""

    checks: List[CheckResult] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return all(c.passed for c in self.checks)

    def add(self, name: str, passed: bool, detail: str) -> None:
        self.checks.append(CheckResult(name, bool(passed), detail))

    def __str__(self) -> str:
        lines = [str(c) for c in self.checks]
        verdict = "REPRODUCTION VALID" if self.passed else "REPRODUCTION BROKEN"
        lines.append(f"=> {verdict} ({sum(c.passed for c in self.checks)}/"
                     f"{len(self.checks)} checks)")
        return "\n".join(lines)


def validate_reproduction(
    scale: Optional[ExperimentScale] = None,
    seed: int = 0,
) -> ValidationReport:
    """Run the full check battery; see the module docstring for the list."""
    scale = scale or VALIDATION_SCALE
    p = r = PAPER_RELIABILITY
    report = ValidationReport()

    # 1. Ring closed form vs the exact enumeration oracle.
    gap = float(np.abs(ring_density(6, 0.9, 0.8)
                       - enumerate_density(ring(6), 0, 0.9, 0.8)).max())
    report.add("ring closed form == enumeration oracle", gap < 1e-9,
               f"max gap {gap:.2e}")

    # 2. Complete closed form vs Monte-Carlo.
    analytic = complete_density(scale.n_sites, p, r)
    mc = montecarlo_density(fully_connected(scale.n_sites), 0, p, r,
                            n_samples=4_000, seed=seed)
    gap = float(np.abs(analytic - mc).max())
    report.add("complete closed form == Monte-Carlo", gap < 0.05,
               f"max gap {gap:.4f}")

    # 3. Simulator stationary density vs ring closed form (full pipeline).
    n = scale.n_sites
    cfg = scale.config(0, alpha=0.5, seed=seed, topology=ring(n))
    result = run_simulation(cfg, MajorityConsensusProtocol(n))
    simulated = result.density_matrix("time").mean(axis=0)
    expected = ring_density(n, p, r)
    gap = float(np.abs(simulated - expected).max())
    report.add("simulator density == ring closed form", gap < 0.04,
               f"max gap {gap:.4f} (threshold 0.04 at this access budget)")

    model = result.availability_model()

    # 4. Left-edge identity: A(alpha, 1) = alpha * R(1) + (1-alpha) * W(T)
    # with R(1) = p. (The paper quotes ".96 alpha" because W(101) is
    # negligible at its scale; at n = 31 the write-all term is real, so
    # we check the exact identity.)
    w_all = float(np.asarray(model.write_availability_at(1)))
    r1 = float(model.read_availability(1))
    worst = 0.0
    for alpha in (0.25, 0.5, 0.75, 1.0):
        got = float(model.availability(alpha, 1))
        worst = max(worst, abs(got - (alpha * r1 + (1 - alpha) * w_all)))
    r1_dev = abs(r1 - p)
    report.add("A(alpha, q_r=1) identity with R(1) = p",
               worst < 1e-9 and r1_dev < 0.02,
               f"identity residual {worst:.2e}, |R(1) - p| = {r1_dev:.4f}")

    # 5. Convergence at the majority edge. The residual spread is exactly
    # the one-vote gap R(floor(T/2)) - W(floor(T/2)+2) = f(q) + f(q+1),
    # which the analytic density bounds; check against that, not a magic
    # constant (the gap shrinks as T grows — 0.06 at n=31, 0.02 at 101).
    edge = [float(model.curve(a)[-1]) for a in (0.0, 0.5, 1.0)]
    spread = max(edge) - min(edge)
    q = n // 2
    analytic_gap = float(expected[q] + expected[q + 1])
    report.add("curves converge at q_r = floor(T/2)",
               spread < analytic_gap + 0.03,
               f"spread {spread:.4f} vs analytic one-vote gap {analytic_gap:.4f}")

    # 6. Regime placement (section 5.5) from analytic densities.
    ring_model = AvailabilityModel(ring_density(101, p, r),
                                   ring_density(101, p, r))
    dense_model = AvailabilityModel(complete_density(101, p, r),
                                    complete_density(101, p, r))
    sparse_opt = optimal_read_quorum(ring_model, 0.9).read_quorum
    dense_curve = dense_model.curve(0.25)
    dense_majority_attains = float(dense_curve[-1]) >= float(dense_curve.max()) - 1e-9
    ok = sparse_opt <= 3 and dense_majority_attains
    report.add("5.5 regimes: sparse/read->left edge, dense/write->majority",
               ok, f"ring-101@0.9 q*={sparse_opt}; complete-101@0.25 majority "
                   f"attains max: {dense_majority_attains}")

    # 7. Write floor respected and costly (section 5.4). A 101-site pure
    # ring tops out at A_w ~ 0.075 (the paper's 20% example uses topology
    # 2, which has chords); 5% is binding but feasible here.
    floor = 0.05
    free = optimal_read_quorum(ring_model, 0.9)
    floored = optimize_with_write_floor(ring_model, 0.9, floor)
    write = float(np.asarray(ring_model.write_availability_at(floored.read_quorum)))
    ok = write >= floor and floored.availability <= free.availability + 1e-12
    report.add("5.4 write floor respected and costs availability", ok,
               f"A_w {write:.3f} >= {floor}; A {floored.availability:.3f} <= "
               f"{free.availability:.3f}")

    # 8. ACC ceiling (section 3).
    ceiling = site_reliability_acc_bound(p)
    measured = result.availability.mean
    report.add("ACC <= site reliability", measured <= ceiling + 0.02,
               f"{measured:.4f} <= {ceiling:.2f}")

    return report
