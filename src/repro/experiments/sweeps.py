"""Parameter sensitivity sweeps.

The paper evaluates a single operating point — component reliability
0.96 and ``rho = 1/128`` — and seven topologies. These utilities sweep
the reliability dimension to answer the follow-up questions the paper
leaves open: *how robust is the optimal quorum choice to the reliability
estimate?* and *where is the crossover below which majority consensus
stops paying even on dense networks?*

Each sweep point dispatches through the :mod:`repro.engines` registry
(default: the ``closed-form`` engine, whose densities make each point
microseconds and are memoized in the cross-layer density cache). Any
registered model-kind engine works — ``engine="mc-stratified"`` sweeps
with the variance-reduced estimator instead, which is how the sweep
machinery extends beyond the closed-form families.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.analytic.complete import complete_density
from repro.analytic.ring import ring_density
from repro.errors import OptimizationError
from repro.quorum.availability import AvailabilityModel
from repro.quorum.optimizer import optimal_read_quorum

__all__ = [
    "SweepPoint",
    "reliability_sweep",
    "find_majority_crossover",
    "DENSITY_FAMILIES",
]

#: Analytic density families available for sweeping: name -> f(n, p, r).
DENSITY_FAMILIES: dict = {
    "ring": ring_density,
    "complete": complete_density,
}


@dataclass(frozen=True)
class SweepPoint:
    """One sweep evaluation."""

    reliability: float
    alpha: float
    optimal_read_quorum: int
    optimal_availability: float
    availability_at_majority: float
    availability_at_rowa: float

    @property
    def majority_beats_rowa(self) -> bool:
        return self.availability_at_majority > self.availability_at_rowa


def _model(family: str, n_sites: int, reliability: float,
           engine: str = "closed-form") -> AvailabilityModel:
    if family not in DENSITY_FAMILIES:
        raise OptimizationError(
            f"unknown family {family!r}; choose from {sorted(DENSITY_FAMILIES)}"
        )
    # Dispatch through the engine registry. The default closed-form
    # engine memoizes its densities in the cross-layer density cache
    # under the same key every other closed-form consumer uses, so sweep
    # points and verification engines share entries.
    from repro.engines import KIND_MODEL, get_engine
    from repro.verification.cases import VerificationCase

    case = VerificationCase(
        name=f"sweep-{family}-{n_sites}-r{reliability:.6g}",
        family=family,
        n_sites=n_sites,
        p=reliability,
        r=reliability,
        alpha=0.5,  # sweeps evaluate alpha themselves via model.curve
        read_quorums=(1,),
    )
    built = get_engine(engine, kind=KIND_MODEL).build(case)
    if built is None:
        raise OptimizationError(
            f"engine {engine!r} does not apply to {family} n={n_sites} "
            f"(use a statistical engine past the enumeration cap)"
        )
    return built.model


def reliability_sweep(
    family: str,
    n_sites: int,
    alpha: float,
    reliabilities: Sequence[float],
    engine: str = "closed-form",
) -> Tuple[SweepPoint, ...]:
    """Optimal assignment and endpoint availabilities at each reliability.

    Uses ``p = r`` (the paper's convention: sites and links share one
    reliability). ``engine`` names any registered model-kind engine.
    """
    if not 0.0 <= alpha <= 1.0:
        raise OptimizationError(f"alpha must be in [0, 1], got {alpha}")
    points: List[SweepPoint] = []
    for rel in reliabilities:
        model = _model(family, n_sites, float(rel), engine=engine)
        best = optimal_read_quorum(model, alpha)
        curve = model.curve(alpha)
        points.append(
            SweepPoint(
                reliability=float(rel),
                alpha=alpha,
                optimal_read_quorum=best.read_quorum,
                optimal_availability=best.availability,
                availability_at_majority=float(curve[-1]),
                availability_at_rowa=float(curve[0]),
            )
        )
    return tuple(points)


def find_majority_crossover(
    family: str,
    n_sites: int,
    alpha: float,
    low: float = 0.5,
    high: float = 0.999,
    tolerance: float = 1e-4,
    max_iterations: int = 60,
    engine: str = "closed-form",
) -> Optional[float]:
    """Reliability at which majority and ROWA availabilities cross.

    Returns the bisection root of
    ``A(alpha, floor(T/2)) - A(alpha, 1)`` over ``[low, high]``, or
    ``None`` when there is no sign change on the bracket (one endpoint
    dominates the whole range — e.g. a pure ring at high alpha, where
    ROWA wins everywhere).
    """

    def gap(rel: float) -> float:
        model = _model(family, n_sites, rel, engine=engine)
        curve = model.curve(alpha)
        return float(curve[-1] - curve[0])

    g_low, g_high = gap(low), gap(high)
    if g_low == 0.0:
        return low
    if g_high == 0.0:
        return high
    if np.sign(g_low) == np.sign(g_high):
        return None
    for _ in range(max_iterations):
        mid = (low + high) / 2.0
        g_mid = gap(mid)
        if abs(high - low) < tolerance:
            return mid
        if g_mid == 0.0:
            return mid
        if np.sign(g_mid) == np.sign(g_low):
            low, g_low = mid, g_mid
        else:
            high, g_high = mid, g_mid
    return (low + high) / 2.0
