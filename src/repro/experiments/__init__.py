"""Experiment layer: canonical parameters and figure/table regeneration.

- :mod:`repro.experiments.paper` — the paper's section 5 parameters
  (101 sites, seven topologies, reliability 0.96, rho = 1/128, five read
  fractions) plus laptop-scale variants used by tests and benches.
- :mod:`repro.experiments.figures` — regenerate the data behind
  Figures 2–7: availability vs read quorum, one curve per alpha.
- :mod:`repro.experiments.tables` — the section 5.4 write-constraint
  analysis and the section 5.5 read-write-ratio summary table.
- :mod:`repro.experiments.report` — plain-text rendering of the above.
"""

from repro.experiments.paper import (
    PAPER_ALPHAS,
    PAPER_CHORD_COUNTS,
    PAPER_N_SITES,
    PAPER_RELIABILITY,
    PAPER_RHO,
    PAPER_SCALE,
    ExperimentScale,
    SMALL_SCALE,
    TEST_SCALE,
    paper_config,
)
from repro.experiments.figures import FigureData, FigureSeries, figure_data
from repro.experiments.tables import (
    ReadWriteRatioRow,
    WriteConstraintRow,
    read_write_ratio_table,
    write_constraint_table,
)
from repro.experiments.report import (
    render_figure,
    render_rw_table,
    render_write_constraint_table,
)
from repro.experiments.campaign import CampaignResult, render_campaign, run_campaign
from repro.experiments.charts import ascii_chart, figure_chart
from repro.experiments.sweeps import (
    SweepPoint,
    find_majority_crossover,
    reliability_sweep,
)
from repro.experiments.validation import (
    CheckResult,
    ValidationReport,
    validate_reproduction,
)

__all__ = [
    "ExperimentScale",
    "FigureData",
    "FigureSeries",
    "PAPER_ALPHAS",
    "PAPER_CHORD_COUNTS",
    "PAPER_N_SITES",
    "PAPER_RELIABILITY",
    "PAPER_RHO",
    "PAPER_SCALE",
    "CampaignResult",
    "CheckResult",
    "ReadWriteRatioRow",
    "SMALL_SCALE",
    "SweepPoint",
    "TEST_SCALE",
    "ValidationReport",
    "WriteConstraintRow",
    "ascii_chart",
    "figure_chart",
    "figure_data",
    "find_majority_crossover",
    "paper_config",
    "read_write_ratio_table",
    "render_figure",
    "render_campaign",
    "render_rw_table",
    "reliability_sweep",
    "render_write_constraint_table",
    "run_campaign",
    "validate_reproduction",
    "write_constraint_table",
]
