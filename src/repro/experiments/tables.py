"""The paper's tabular analyses: write constraints (5.4) and the
read-write-ratio summary (5.5).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.errors import OptimizationError
from repro.quorum.availability import AvailabilityModel
from repro.quorum.constraints import optimize_with_write_floor
from repro.quorum.optimizer import optimal_read_quorum

__all__ = [
    "WriteConstraintRow",
    "write_constraint_table",
    "ReadWriteRatioRow",
    "read_write_ratio_table",
]


@dataclass(frozen=True)
class WriteConstraintRow:
    """Optimal assignment under one write-availability floor."""

    write_floor: float
    read_quorum: Optional[int]
    write_quorum: Optional[int]
    availability: Optional[float]
    write_availability: Optional[float]
    feasible: bool


def write_constraint_table(
    model: AvailabilityModel,
    alpha: float,
    write_floors: Sequence[float] = (0.0, 0.05, 0.1, 0.2, 0.4, 0.6),
) -> Tuple[WriteConstraintRow, ...]:
    """Optimal ``q_r`` under each write floor (section 5.4's analysis).

    ``write_floor = 0`` row is the unconstrained optimum. Infeasible
    floors (beyond what majority can deliver) produce a row flagged
    ``feasible=False`` rather than an exception, so the full sweep always
    renders.
    """
    rows = []
    for floor in write_floors:
        try:
            res = optimize_with_write_floor(model, alpha, floor)
        except OptimizationError:
            rows.append(
                WriteConstraintRow(
                    write_floor=float(floor),
                    read_quorum=None,
                    write_quorum=None,
                    availability=None,
                    write_availability=None,
                    feasible=False,
                )
            )
            continue
        write_avail = float(np.asarray(model.write_availability_at(res.read_quorum)))
        rows.append(
            WriteConstraintRow(
                write_floor=float(floor),
                read_quorum=res.read_quorum,
                write_quorum=res.write_quorum,
                availability=res.availability,
                write_availability=write_avail,
                feasible=True,
            )
        )
    return tuple(rows)


@dataclass(frozen=True)
class ReadWriteRatioRow:
    """Section 5.5 summary for one (topology, alpha) cell.

    Records where the optimum falls and how the two canonical static
    choices — majority and ROWA — compare, quantifying the paper's claim
    that write-only research (``q_r = q_w``) transfers only to dense
    topologies and low read rates.
    """

    topology_name: str
    alpha: float
    optimal_read_quorum: int
    optimal_availability: float
    availability_at_majority: float
    availability_at_rowa: float
    #: The regime flags record *attainment* (does the endpoint reach the
    #: optimum within tolerance?), not the argmax — on dense topologies
    #: the curve plateaus and several quorums tie, and the paper's claim
    #: "majority is optimal" means majority attains the maximum.
    optimum_is_majority: bool
    optimum_is_rowa: bool
    optimum_is_interior: bool
    majority_is_worst: bool


def read_write_ratio_table(
    models: Sequence[Tuple[str, AvailabilityModel]],
    alphas: Sequence[float],
) -> Tuple[ReadWriteRatioRow, ...]:
    """Build the section 5.5 grid over topologies and read fractions."""
    tol = 1e-9
    rows = []
    for name, model in models:
        q_max = model.max_read_quorum
        for alpha in alphas:
            res = optimal_read_quorum(model, float(alpha))
            curve = model.curve(float(alpha))
            q_opt = res.read_quorum
            best = float(curve.max())
            at_majority = best - float(curve[-1]) <= tol
            at_rowa = best - float(curve[0]) <= tol
            rows.append(
                ReadWriteRatioRow(
                    topology_name=name,
                    alpha=float(alpha),
                    optimal_read_quorum=q_opt,
                    optimal_availability=res.availability,
                    availability_at_majority=float(curve[-1]),
                    availability_at_rowa=float(curve[0]),
                    optimum_is_majority=at_majority,
                    optimum_is_rowa=at_rowa,
                    optimum_is_interior=not (at_majority or at_rowa),
                    majority_is_worst=bool(
                        curve[-1] <= curve.min() + tol
                    ),
                )
            )
    return tuple(rows)
