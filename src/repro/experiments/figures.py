"""Regenerate the data behind the paper's Figures 2–7.

Each figure plots availability against the read quorum ``q_r`` for one
topology, with five curves ``alpha in {0, .25, .5, .75, 1}``. The paper
produces each point by simulating the quorum consensus protocol at that
``(alpha, q_r)``; we exploit the paper's own observation (section 4.2)
that a single run's on-line density estimate determines the whole
availability surface: one simulation per topology yields the empirical
``f_i`` matrix, and the Figure-1 algebra evaluates every curve from it.
(The component process does not depend on ``alpha`` or ``q_r``, so this
is not an approximation beyond Monte-Carlo noise; the test suite
spot-checks curve points against direct protocol simulation.)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.experiments.paper import PAPER_ALPHAS, SMALL_SCALE, ExperimentScale
from repro.protocols.majority import MajorityConsensusProtocol
from repro.quorum.availability import AvailabilityModel
from repro.simulation.config import SimulationConfig
from repro.simulation.runner import SimulationResult, run_simulation
from repro.topology.model import Topology

__all__ = ["FigureSeries", "FigureData", "figure_data"]


@dataclass(frozen=True)
class FigureSeries:
    """One curve of a figure: availability over the quorum grid."""

    alpha: float
    availability: np.ndarray

    @property
    def max_value(self) -> float:
        return float(self.availability.max())

    @property
    def argmax_quorum(self) -> int:
        """The optimal ``q_r`` on this curve (ties toward smaller quorums)."""
        best = self.max_value
        return int(np.nonzero(self.availability >= best - 1e-12)[0][0]) + 1

    @property
    def maximized_at_endpoint(self) -> bool:
        """Does the optimum sit at ``q_r = 1`` or ``q_r = floor(T/2)``?"""
        q = self.argmax_quorum
        return q == 1 or q == self.availability.shape[0]


@dataclass(frozen=True)
class FigureData:
    """All curves of one paper figure plus the run they came from."""

    topology_name: str
    quorums: np.ndarray
    series: Tuple[FigureSeries, ...]
    model: AvailabilityModel
    result: SimulationResult

    def curve(self, alpha: float) -> FigureSeries:
        for s in self.series:
            if abs(s.alpha - alpha) < 1e-12:
                return s
        raise KeyError(f"no curve for alpha={alpha}")

    @property
    def convergence_spread(self) -> float:
        """Spread of the curves at ``q_r = floor(T/2)``.

        The paper's "most striking observation" is that all curves of a
        topology converge at the right edge; this is the max-min gap
        there.
        """
        edge = np.asarray([s.availability[-1] for s in self.series])
        return float(edge.max() - edge.min())


def figure_data(
    config: Optional[SimulationConfig] = None,
    topology: Optional[Topology] = None,
    chords: Optional[int] = None,
    alphas: Sequence[float] = PAPER_ALPHAS,
    scale: ExperimentScale = SMALL_SCALE,
    weighting: str = "time",
    seed: Optional[int] = 0,
) -> FigureData:
    """Produce one figure's data.

    Provide either a full ``config``, a ``topology``, or a paper
    ``chords`` index. The simulation itself runs under the majority
    protocol (any static protocol gives the same component process; the
    majority instance exists for every ``T``), and the curves come from
    the run's empirical density model.
    """
    if config is None:
        if topology is not None:
            config = scale.config(0, alpha=0.5, seed=seed, topology=topology)
        elif chords is not None:
            config = scale.config(chords, alpha=0.5, seed=seed)
        else:
            raise ValueError("need one of config, topology, or chords")

    protocol = MajorityConsensusProtocol(config.topology.total_votes)
    result = run_simulation(config, protocol)
    model = result.availability_model(weighting=weighting)
    quorums = model.feasible_read_quorums()
    series = tuple(
        FigureSeries(alpha=float(a), availability=model.curve(float(a)))
        for a in alphas
    )
    return FigureData(
        topology_name=config.topology.name,
        quorums=quorums,
        series=series,
        model=model,
        result=result,
    )
