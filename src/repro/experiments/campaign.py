"""One-call regeneration of the paper's entire evaluation section.

:func:`run_campaign` executes everything section 5 reports — all six
figures, the section 5.4 write-constraint example, and the section 5.5
read-write-ratio table — at a chosen scale, and
:func:`render_campaign` renders it as one text report ready to diff
against EXPERIMENTS.md. ``python -m repro campaign`` is the CLI entry.

At ``PAPER_SCALE`` this is the full multi-hour reproduction run; the
default bench scale finishes in about a minute.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.experiments.figures import FigureData, figure_data
from repro.experiments.paper import (
    PAPER_ALPHAS,
    PAPER_CHORD_COUNTS,
    ExperimentScale,
    SMALL_SCALE,
)
from repro.experiments.report import (
    render_figure,
    render_rw_table,
    render_write_constraint_table,
)
from repro.experiments.tables import (
    ReadWriteRatioRow,
    WriteConstraintRow,
    read_write_ratio_table,
    write_constraint_table,
)

__all__ = ["CampaignResult", "run_campaign", "render_campaign"]

#: Figure number -> chord count, as in the paper (Figures 2-7; 4949 is
#: stated to coincide with 256 and is costly, so it is opt-in).
FIGURE_CHORDS: Tuple[Tuple[int, int], ...] = (
    (2, 0), (3, 1), (4, 2), (5, 4), (6, 16), (7, 256),
)


@dataclass
class CampaignResult:
    """Everything one campaign run produced."""

    scale_name: str
    figures: List[Tuple[int, FigureData]]
    write_constraint_rows: Tuple[WriteConstraintRow, ...]
    write_constraint_alpha: float
    rw_rows: Tuple[ReadWriteRatioRow, ...]

    def figure(self, number: int) -> FigureData:
        for num, data in self.figures:
            if num == number:
                return data
        raise KeyError(f"no figure {number} in this campaign")


def run_campaign(
    scale: ExperimentScale = SMALL_SCALE,
    seed: int = 0,
    alphas: Sequence[float] = PAPER_ALPHAS,
    write_constraint_alpha: float = 0.75,
    write_floors: Sequence[float] = (0.0, 0.05, 0.1, 0.2),
    include_fully_connected: bool = False,
) -> CampaignResult:
    """Run every section-5 experiment at ``scale``.

    One simulation per topology; every figure curve and both tables come
    from those runs' on-line density estimates (the paper's own
    technique, section 4.2).
    """
    figure_list = list(FIGURE_CHORDS)
    if include_fully_connected:
        figure_list.append((8, PAPER_CHORD_COUNTS[-1]))

    figures: List[Tuple[int, FigureData]] = []
    models = []
    for number, chords in figure_list:
        fig = figure_data(chords=chords, scale=scale, seed=seed + chords)
        figures.append((number, fig))
        models.append((fig.topology_name, fig.model))

    # Section 5.4 reads its worked example off Topology 2 (our Figure 4).
    topology2 = next(fig for num, fig in figures if num == 4)
    wc_rows = write_constraint_table(
        topology2.model, write_constraint_alpha, write_floors=write_floors
    )

    rw_rows = read_write_ratio_table(models, alphas)
    return CampaignResult(
        scale_name=scale.name,
        figures=figures,
        write_constraint_rows=wc_rows,
        write_constraint_alpha=write_constraint_alpha,
        rw_rows=rw_rows,
    )


def render_campaign(result: CampaignResult, max_points: int = 12) -> str:
    """The whole campaign as one text report."""
    lines = [
        "=" * 72,
        "Johnson & Raab (ICPP 1991) — evaluation campaign "
        f"(scale: {result.scale_name})",
        "=" * 72,
    ]
    for number, fig in result.figures:
        lines.append("")
        lines.append(f"--- Figure {number} ---")
        lines.append(render_figure(fig, max_points=max_points))
    lines.append("")
    lines.append("--- section 5.4 write-constraint example (Topology 2) ---")
    topology2 = result.figure(4)
    lines.append(
        render_write_constraint_table(
            result.write_constraint_rows,
            result.write_constraint_alpha,
            topology2.topology_name,
        )
    )
    lines.append("")
    lines.append("--- section 5.5 ---")
    lines.append(render_rw_table(result.rw_rows))
    return "\n".join(lines)
