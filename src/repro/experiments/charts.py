"""ASCII charts: render availability curves in a terminal.

The paper's figures are line plots; in an offline/terminal reproduction
the closest faithful artifact is a character raster. One glyph per
curve, overlap marked with ``*``, y-axis in availability, x-axis in read
quorum. Deliberately dependency-free (no matplotlib in this
environment) and tested like any other renderer.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.errors import ReproError
from repro.experiments.figures import FigureData

__all__ = ["ascii_chart", "figure_chart"]

#: Curve glyphs, assigned in series order.
GLYPHS = "o+x#@%&="


def ascii_chart(
    series: Sequence[np.ndarray],
    labels: Sequence[str],
    width: int = 64,
    height: int = 18,
    y_min: float = 0.0,
    y_max: float = 1.0,
    x_label: str = "q_r",
    y_label: str = "A",
) -> str:
    """Render one or more equally-long curves as an ASCII raster.

    Values are clipped to ``[y_min, y_max]``; x positions are spread
    uniformly over the width.
    """
    if not series:
        raise ReproError("need at least one series")
    if len(labels) != len(series):
        raise ReproError(f"{len(series)} series but {len(labels)} labels")
    if len(series) > len(GLYPHS):
        raise ReproError(f"at most {len(GLYPHS)} series supported")
    if width < 8 or height < 4:
        raise ReproError("chart must be at least 8x4 characters")
    if y_max <= y_min:
        raise ReproError(f"need y_max > y_min, got [{y_min}, {y_max}]")
    n_points = {np.asarray(s).shape[0] for s in series}
    if len(n_points) != 1:
        raise ReproError(f"series lengths differ: {sorted(n_points)}")
    n = n_points.pop()
    if n < 2:
        raise ReproError("need at least two points per series")

    grid = [[" "] * width for _ in range(height)]
    xs = np.linspace(0, width - 1, n).round().astype(int)
    for glyph, curve in zip(GLYPHS, series):
        values = np.clip(np.asarray(curve, dtype=float), y_min, y_max)
        rows = ((y_max - values) / (y_max - y_min) * (height - 1)).round().astype(int)
        for x, row in zip(xs, rows):
            cell = grid[row][x]
            grid[row][x] = glyph if cell in (" ", glyph) else "*"

    gutter = max(len(f"{y_max:.2f}"), len(f"{y_min:.2f}"))
    lines: List[str] = []
    for r, row in enumerate(grid):
        if r == 0:
            tick = f"{y_max:.2f}"
        elif r == height - 1:
            tick = f"{y_min:.2f}"
        elif r == (height - 1) // 2:
            tick = f"{(y_min + y_max) / 2:.2f}"
        else:
            tick = ""
        lines.append(f"{tick:>{gutter}} |" + "".join(row))
    lines.append(" " * gutter + " +" + "-" * width)
    lines.append(" " * (gutter + 2) + f"{x_label} = 1 ... {x_label} = {n}"
                 f"   (y: {y_label})")
    legend = "   ".join(f"{g} {label}" for g, label in zip(GLYPHS, labels))
    lines.append(" " * (gutter + 2) + legend + "   (* overlap)")
    return "\n".join(lines)


def figure_chart(data: FigureData, width: int = 64, height: int = 18) -> str:
    """ASCII rendering of one paper figure (all alpha curves)."""
    series = [s.availability for s in data.series]
    labels = [f"a={s.alpha:g}" for s in data.series]
    header = f"availability vs read quorum — {data.topology_name}"
    return header + "\n" + ascii_chart(series, labels, width=width, height=height)
