"""Canonical parameters of the paper's evaluation (section 5).

The paper's full scale (101 sites, 100 000 warm-up accesses, 1 000 000
accesses per batch, 5–18 batches) took half an hour to two hours per
batch on a 1990 DEC Station 5000. :data:`PAPER_SCALE` encodes those
numbers faithfully; :data:`SMALL_SCALE` and :data:`TEST_SCALE` shrink the
access volume (and, for TEST_SCALE, the network) while keeping every
dimensionless parameter — reliability, rho, alpha grid — identical, so
the qualitative results are unchanged and only the confidence intervals
widen. EXPERIMENTS.md records which scale produced each reported number.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.simulation.config import SimulationConfig
from repro.topology.generators import paper_topology
from repro.topology.model import Topology

__all__ = [
    "PAPER_N_SITES",
    "PAPER_CHORD_COUNTS",
    "PAPER_ALPHAS",
    "PAPER_RELIABILITY",
    "PAPER_RHO",
    "ExperimentScale",
    "PAPER_SCALE",
    "SMALL_SCALE",
    "TEST_SCALE",
    "paper_config",
]

#: Sites in the paper's evaluated networks.
PAPER_N_SITES = 101

#: Chord counts of "Topology i" (section 5.1); 4949 = fully connected.
PAPER_CHORD_COUNTS: Tuple[int, ...] = (0, 1, 2, 4, 16, 256, 4949)

#: Read fractions of the figures' five curves.
PAPER_ALPHAS: Tuple[float, ...] = (0.0, 0.25, 0.5, 0.75, 1.0)

#: Stationary reliability of every site and link.
PAPER_RELIABILITY = 0.96

#: Ratio of mean time-to-next-access to mean time-to-next-failure.
PAPER_RHO = 1.0 / 128.0


@dataclass(frozen=True)
class ExperimentScale:
    """Workload volume knobs, independent of the physical parameters."""

    name: str
    n_sites: int
    warmup_accesses: float
    accesses_per_batch: float
    n_batches: int
    #: "all_up" (paper-faithful reset + warm-up) or "stationary" (start
    #: from the exact stationary state; no warm-up bias at any scale).
    initial_state: str = "all_up"

    def config(
        self,
        chords: int,
        alpha: float,
        accounting: str = "sampled",
        seed: Optional[int] = 0,
        topology: Optional[Topology] = None,
    ) -> SimulationConfig:
        """A paper-parameterized config at this scale.

        ``chords`` selects the paper topology (ignored when an explicit
        ``topology`` is passed). The chord count is clamped to what the
        ring at this scale can host, so e.g. ``chords=4949`` means "fully
        connected" at any ``n_sites``.
        """
        if topology is None:
            limit = self.n_sites * (self.n_sites - 3) // 2
            topology = paper_topology(min(chords, limit), n_sites=self.n_sites)
        return SimulationConfig.paper_like(
            topology,
            alpha=alpha,
            reliability=PAPER_RELIABILITY,
            rho=PAPER_RHO,
            warmup_accesses=self.warmup_accesses,
            accesses_per_batch=self.accesses_per_batch,
            n_batches=self.n_batches,
            accounting=accounting,
            initial_state=self.initial_state,
            seed=seed,
        )


#: The paper's exact scale (section 5.2).
PAPER_SCALE = ExperimentScale(
    name="paper",
    n_sites=PAPER_N_SITES,
    warmup_accesses=100_000.0,
    accesses_per_batch=1_000_000.0,
    n_batches=5,
)

#: Laptop-scale: full 101-site networks, 30x fewer accesses per batch.
SMALL_SCALE = ExperimentScale(
    name="small",
    n_sites=PAPER_N_SITES,
    warmup_accesses=3_000.0,
    accesses_per_batch=30_000.0,
    n_batches=4,
)

#: Test-scale: small networks, short batches — seconds, not minutes.
TEST_SCALE = ExperimentScale(
    name="test",
    n_sites=21,
    warmup_accesses=500.0,
    accesses_per_batch=4_000.0,
    n_batches=3,
)


def paper_config(
    chords: int,
    alpha: float,
    scale: ExperimentScale = SMALL_SCALE,
    **kwargs,
) -> SimulationConfig:
    """Shorthand for ``scale.config(chords, alpha, ...)``."""
    return scale.config(chords, alpha, **kwargs)
