"""Plain-text rendering of figure and table data.

The benchmark harness prints these so that a reproduction run emits the
same rows/series the paper reports, ready to diff against EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.experiments.figures import FigureData
from repro.experiments.tables import ReadWriteRatioRow, WriteConstraintRow

__all__ = ["render_figure", "render_write_constraint_table", "render_rw_table"]


def _sample_indices(n: int, max_points: int) -> np.ndarray:
    """Evenly spaced indices (always including both endpoints)."""
    if n <= max_points:
        return np.arange(n)
    return np.unique(np.linspace(0, n - 1, max_points).round().astype(int))


def render_figure(data: FigureData, max_points: int = 12) -> str:
    """Render one figure as a q_r-by-alpha availability table."""
    idx = _sample_indices(data.quorums.shape[0], max_points)
    header_alphas = "  ".join(f"a={s.alpha:4.2f}" for s in data.series)
    lines = [
        f"figure: availability vs read quorum — {data.topology_name}",
        f"  q_r   {header_alphas}",
    ]
    for i in idx:
        cells = "  ".join(f"{s.availability[i]:6.4f}" for s in data.series)
        lines.append(f"  {int(data.quorums[i]):4d}  {cells}")
    for s in data.series:
        endpoint = "endpoint" if s.maximized_at_endpoint else "INTERIOR"
        lines.append(
            f"  optimum alpha={s.alpha:4.2f}: q_r={s.argmax_quorum} "
            f"A={s.max_value:.4f} ({endpoint})"
        )
    lines.append(f"  convergence spread at q_r=floor(T/2): {data.convergence_spread:.4f}")
    return "\n".join(lines)


def render_write_constraint_table(
    rows: Sequence[WriteConstraintRow], alpha: float, topology_name: str
) -> str:
    lines = [
        f"write-constraint optimization — {topology_name}, alpha={alpha:g}",
        "  floor A_w   q_r   q_w   A(alpha,q_r)   A(0,q_r)",
    ]
    for row in rows:
        if not row.feasible:
            lines.append(f"  {row.write_floor:9.2f}   infeasible")
            continue
        lines.append(
            f"  {row.write_floor:9.2f}   {row.read_quorum:3d}   {row.write_quorum:3d}"
            f"   {row.availability:12.4f}   {row.write_availability:8.4f}"
        )
    return "\n".join(lines)


def render_rw_table(rows: Sequence[ReadWriteRatioRow]) -> str:
    lines = [
        "read-write-ratio summary (section 5.5)",
        "  topology              alpha   q_r*      A*     A(maj)   A(rowa)  regime",
    ]
    for row in rows:
        if row.optimum_is_interior:
            regime = "interior"
        elif row.optimum_is_majority:
            regime = "majority"
        else:
            regime = "rowa"
        worst = " majority-worst" if row.majority_is_worst else ""
        lines.append(
            f"  {row.topology_name:<20s}  {row.alpha:5.2f}   {row.optimal_read_quorum:4d}"
            f"  {row.optimal_availability:6.4f}  {row.availability_at_majority:7.4f}"
            f"  {row.availability_at_rowa:7.4f}  {regime}{worst}"
        )
    return "\n".join(lines)
