"""The engine registry: registration contract and built-in coverage."""

import pytest

from repro.engines import (
    KIND_DENSITY_MODEL,
    KIND_MODEL,
    KIND_SIMULATION,
    EngineSpec,
    get_engine,
    list_engines,
    register_engine,
    unregister_engine,
)
from repro.errors import VerificationError
from repro.verification.cases import profile_cases

BUILTINS = {
    "closed-form": KIND_MODEL,
    "enumeration": KIND_MODEL,
    "enum-compiled": KIND_MODEL,
    "monte-carlo": KIND_MODEL,
    "mc-stratified": KIND_MODEL,
    "mc-importance": KIND_MODEL,
    "simulation": KIND_SIMULATION,
    "parallel": KIND_SIMULATION,
    "sharded": KIND_SIMULATION,
    "sharded-reference": KIND_SIMULATION,
    "online-density": KIND_DENSITY_MODEL,
}


def _spec(name="test-double", kind=KIND_MODEL, **kwargs):
    kwargs.setdefault("description", "a test double")
    kwargs.setdefault("builder", lambda case: None)
    return EngineSpec(name=name, kind=kind, **kwargs)


class TestRegistration:
    def test_register_get_unregister_roundtrip(self):
        spec = register_engine(_spec())
        try:
            assert get_engine("test-double") is spec
        finally:
            unregister_engine("test-double")
        with pytest.raises(VerificationError, match="unknown engine"):
            get_engine("test-double")

    def test_duplicate_rejected_without_replace(self):
        register_engine(_spec())
        try:
            with pytest.raises(VerificationError, match="already registered"):
                register_engine(_spec())
            replacement = register_engine(_spec(), replace=True)
            assert get_engine("test-double") is replacement
        finally:
            unregister_engine("test-double")

    def test_unregister_unknown_is_noop(self):
        unregister_engine("never-registered")

    def test_unknown_name_lists_known_engines(self):
        with pytest.raises(VerificationError, match="closed-form"):
            get_engine("no-such-engine")

    def test_kind_mismatch_is_an_error(self):
        with pytest.raises(VerificationError, match="kind"):
            get_engine("closed-form", kind=KIND_SIMULATION)

    def test_unknown_kind_rejected_at_spec_construction(self):
        with pytest.raises(VerificationError, match="unknown kind"):
            _spec(kind="oracle")

    def test_builder_required(self):
        with pytest.raises(VerificationError, match="no builder"):
            EngineSpec(name="x", kind=KIND_MODEL, description="d")


class TestBuiltins:
    def test_all_builtins_registered_with_expected_kind(self):
        for name, kind in BUILTINS.items():
            assert get_engine(name, kind=kind).name == name

    def test_listing_is_cost_ordered_within_kind(self):
        specs = list_engines(kind=KIND_MODEL)
        assert [s.name for s in specs] == sorted(
            (s.name for s in specs),
            key=lambda n: (get_engine(n).cost_rank, n),
        )

    def test_capability_filter(self):
        names = {s.name for s in list_engines(capability="variance-reduced")}
        assert names == {"mc-stratified", "mc-importance"}
        exact = {s.name for s in list_engines(capability="exact")}
        assert {"closed-form", "enumeration"} <= exact

    def test_every_model_engine_builds_from_a_case(self):
        case = profile_cases("quick")[0]
        for spec in list_engines(kind=KIND_MODEL):
            engine = spec.build(case)
            if engine is None:  # engine does not apply to this case
                continue
            estimates = engine.availability_estimates(case)
            assert 0.0 <= estimates["A*"].value <= 1.0

    def test_mc_importance_reports_effective_samples(self):
        case = profile_cases("quick")[0]
        engine = get_engine("mc-importance", kind=KIND_MODEL).build(case)
        # Kish effective size: positive and never above the raw budget.
        assert 0 < engine.n_samples <= case.mc_samples

    def test_online_density_builds_availability_model(self):
        import numpy as np

        from repro.analytic.ring import ring_density_matrix
        from repro.quorum.availability import AvailabilityModel
        from repro.topology.generators import ring

        matrix = ring_density_matrix(ring(7), 0.9, 0.9)
        model = get_engine("online-density", kind=KIND_DENSITY_MODEL).build(
            matrix, None, None)
        assert isinstance(model, AvailabilityModel)
        assert np.isfinite(model.availability(0.5, 4))
