"""Tests for the reproduction-validation battery."""

import pytest

from repro.experiments.paper import ExperimentScale
from repro.experiments.validation import (
    CheckResult,
    ValidationReport,
    validate_reproduction,
)

#: Faster-than-default scale for the test run (half the access budget).
FAST = ExperimentScale(
    name="validate-fast",
    n_sites=31,
    warmup_accesses=0.0,
    accesses_per_batch=25_000.0,
    n_batches=2,
    initial_state="stationary",
)


class TestReportMechanics:
    def test_empty_report_passes(self):
        assert ValidationReport().passed

    def test_single_failure_fails_report(self):
        report = ValidationReport()
        report.add("a", True, "fine")
        report.add("b", False, "broken")
        assert not report.passed
        text = str(report)
        assert "[PASS] a" in text
        assert "[FAIL] b" in text
        assert "REPRODUCTION BROKEN" in text

    def test_check_result_str(self):
        assert str(CheckResult("x", True, "d")) == "[PASS] x: d"


class TestFullBattery:
    @pytest.fixture(scope="class")
    def report(self):
        return validate_reproduction(scale=FAST, seed=3)

    def test_all_checks_pass(self, report):
        assert report.passed, "\n" + str(report)

    def test_covers_all_claim_areas(self, report):
        names = " ".join(c.name for c in report.checks)
        for keyword in ("enumeration", "Monte-Carlo", "simulator",
                        "q_r=1", "converge", "regimes", "write floor",
                        "site reliability"):
            assert keyword in names, keyword

    def test_deterministic_by_seed(self):
        a = validate_reproduction(scale=FAST, seed=9)
        b = validate_reproduction(scale=FAST, seed=9)
        assert [c.detail for c in a.checks] == [c.detail for c in b.checks]
