"""Tests for the one-call campaign orchestrator."""

import pytest

from repro.experiments.campaign import (
    CampaignResult,
    render_campaign,
    run_campaign,
)
from repro.experiments.paper import PAPER_ALPHAS, TEST_SCALE


@pytest.fixture(scope="module")
def campaign():
    return run_campaign(scale=TEST_SCALE, seed=5)


class TestRunCampaign:
    def test_covers_all_six_figures(self, campaign):
        assert [num for num, _ in campaign.figures] == [2, 3, 4, 5, 6, 7]

    def test_figure_lookup(self, campaign):
        fig4 = campaign.figure(4)
        assert "topology-2" in fig4.topology_name
        with pytest.raises(KeyError):
            campaign.figure(9)

    def test_rw_table_covers_grid(self, campaign):
        assert len(campaign.rw_rows) == 6 * len(PAPER_ALPHAS)

    def test_write_constraint_rows(self, campaign):
        assert campaign.write_constraint_rows[0].write_floor == 0.0
        assert campaign.write_constraint_alpha == 0.75

    def test_every_curve_is_a_probability(self, campaign):
        for _, fig in campaign.figures:
            for series in fig.series:
                assert ((0 <= series.availability)
                        & (series.availability <= 1 + 1e-12)).all()

    def test_fully_connected_opt_in(self):
        result = run_campaign(scale=TEST_SCALE, seed=1,
                              include_fully_connected=True)
        assert [num for num, _ in result.figures][-1] == 8
        assert result.figure(8).model.total_votes == TEST_SCALE.n_sites


class TestRenderCampaign:
    def test_renders_all_sections(self, campaign):
        text = render_campaign(campaign)
        for marker in ("--- Figure 2 ---", "--- Figure 7 ---",
                       "write-constraint example", "--- section 5.5 ---",
                       "regime"):
            assert marker in text

    def test_scale_in_header(self, campaign):
        assert "scale: test" in render_campaign(campaign)
