"""Tests for the ASCII chart renderer."""

import numpy as np
import pytest

from repro.errors import ReproError
from repro.experiments.charts import GLYPHS, ascii_chart, figure_chart
from repro.experiments.figures import figure_data
from repro.experiments.paper import TEST_SCALE


class TestAsciiChart:
    def test_basic_render(self):
        up = np.linspace(0.1, 0.9, 10)
        down = np.linspace(0.9, 0.1, 10)
        text = ascii_chart([up, down], ["up", "down"], width=20, height=10)
        assert "o" in text and "+" in text
        assert "up" in text and "down" in text
        assert "1.00" in text and "0.00" in text

    def test_crossing_curves_marked_overlap(self):
        a = np.linspace(0.0, 1.0, 21)
        b = np.linspace(1.0, 0.0, 21)
        text = ascii_chart([a, b], ["a", "b"], width=21, height=11)
        assert "*" in text  # they cross in the middle

    def test_single_series_no_overlap_glyph(self):
        text = ascii_chart([np.linspace(0, 1, 5)], ["only"], width=10, height=5)
        assert "*" not in text.split("(")[0]  # legend mentions it, raster doesn't

    def test_values_clipped(self):
        text = ascii_chart([np.array([-1.0, 2.0])], ["wild"], width=10, height=5)
        assert "o" in text

    def test_geometry_rows(self):
        text = ascii_chart([np.linspace(0, 1, 4)], ["s"], width=16, height=6)
        lines = text.split("\n")
        # height rows + axis + x-label + legend
        assert len(lines) == 6 + 3

    def test_validation(self):
        with pytest.raises(ReproError):
            ascii_chart([], [])
        with pytest.raises(ReproError):
            ascii_chart([np.ones(3)], ["a", "b"])
        with pytest.raises(ReproError):
            ascii_chart([np.ones(3), np.ones(4)], ["a", "b"])
        with pytest.raises(ReproError):
            ascii_chart([np.ones(1)], ["a"])
        with pytest.raises(ReproError):
            ascii_chart([np.ones(3)], ["a"], width=4)
        with pytest.raises(ReproError):
            ascii_chart([np.ones(3)], ["a"], y_min=1.0, y_max=0.0)
        too_many = [np.linspace(0, 1, 3)] * (len(GLYPHS) + 1)
        with pytest.raises(ReproError):
            ascii_chart(too_many, ["x"] * len(too_many))


class TestFigureChart:
    def test_renders_paper_figure(self):
        fig = figure_data(chords=0, scale=TEST_SCALE, seed=1)
        text = figure_chart(fig, width=32, height=10)
        assert "availability vs read quorum" in text
        assert "a=0.75" in text
        # Five curves -> five glyphs in the legend.
        legend = text.strip().split("\n")[-1]
        for glyph in GLYPHS[:5]:
            assert glyph in legend
