"""Tests for the reliability sweeps."""

import numpy as np
import pytest

from repro.errors import OptimizationError
from repro.experiments.sweeps import (
    SweepPoint,
    find_majority_crossover,
    reliability_sweep,
)


class TestReliabilitySweep:
    def test_point_fields(self):
        points = reliability_sweep("complete", 15, 0.5, [0.9])
        assert len(points) == 1
        p = points[0]
        assert p.reliability == 0.9
        assert 1 <= p.optimal_read_quorum <= 7
        assert p.optimal_availability >= p.availability_at_majority - 1e-12
        assert p.optimal_availability >= p.availability_at_rowa - 1e-12

    def test_optimal_availability_increases_with_reliability(self):
        points = reliability_sweep("complete", 21, 0.5, np.linspace(0.6, 0.99, 8))
        values = [p.optimal_availability for p in points]
        assert all(b >= a - 1e-9 for a, b in zip(values, values[1:]))

    def test_ring_read_heavy_prefers_rowa_at_every_reliability(self):
        points = reliability_sweep("ring", 101, 0.9, [0.7, 0.9, 0.99])
        for p in points:
            assert not p.majority_beats_rowa

    def test_complete_write_heavy_prefers_majority_when_reliable(self):
        points = reliability_sweep("complete", 31, 0.1, [0.95, 0.99])
        for p in points:
            assert p.majority_beats_rowa

    def test_unreliable_links_erode_majority_advantage(self):
        """On a complete graph at low alpha, dropping reliability far
        enough makes even majority components rare."""
        points = reliability_sweep("complete", 21, 0.25, [0.5, 0.99])
        assert (
            points[0].availability_at_majority
            < points[1].availability_at_majority
        )

    def test_validation(self):
        with pytest.raises(OptimizationError):
            reliability_sweep("torus", 9, 0.5, [0.9])
        with pytest.raises(OptimizationError):
            reliability_sweep("ring", 9, 1.5, [0.9])


class TestCrossover:
    def test_complete_graph_crossover_exists_at_high_alpha(self):
        """On a dense network at alpha = .8, majority wins when reliable
        (its write term is intact and reads barely suffer) but ROWA wins
        when components are flaky (reads-at-one-site degrade gracefully):
        a crossover must exist."""
        crossover = find_majority_crossover("complete", 21, 0.8)
        assert crossover is not None
        assert 0.5 < crossover < 0.999
        # Verify the sign change around it.
        lo = reliability_sweep("complete", 21, 0.8, [crossover - 0.05])[0]
        hi = reliability_sweep("complete", 21, 0.8, [crossover + 0.05])[0]
        assert not lo.majority_beats_rowa
        assert hi.majority_beats_rowa

    def test_complete_graph_mid_alpha_majority_dominates(self):
        """At alpha = .5 the write-all term is fatal for ROWA at every
        reliability in the bracket — majority dominates, no crossover."""
        assert find_majority_crossover("complete", 21, 0.5) is None

    def test_ring_pure_reads_no_crossover(self):
        # At alpha = 1 the curve is R(q_r), monotone in q_r: ROWA wins at
        # every reliability. (At alpha = .9 a genuine crossover appears
        # near reliability .998, where a 101-ring is almost never cut.)
        assert find_majority_crossover("ring", 101, 1.0) is None
        crossover = find_majority_crossover("ring", 101, 0.9)
        assert crossover is not None and crossover > 0.99

    def test_alpha_zero_majority_always_wins_on_complete(self):
        # At alpha = 0, ROWA means write-all: majority dominates over the
        # whole bracket, so no crossover.
        assert find_majority_crossover("complete", 21, 0.0, low=0.6) is None
