"""Tests for the experiment layer (paper params, figures, tables, report)."""

import numpy as np
import pytest

from repro.analytic.complete import complete_density
from repro.analytic.ring import ring_density
from repro.experiments.figures import figure_data
from repro.experiments.paper import (
    PAPER_ALPHAS,
    PAPER_CHORD_COUNTS,
    PAPER_RELIABILITY,
    PAPER_RHO,
    PAPER_SCALE,
    TEST_SCALE,
    paper_config,
)
from repro.experiments.report import (
    render_figure,
    render_rw_table,
    render_write_constraint_table,
)
from repro.experiments.tables import read_write_ratio_table, write_constraint_table
from repro.quorum.availability import AvailabilityModel


class TestPaperParameters:
    def test_constants(self):
        assert PAPER_CHORD_COUNTS == (0, 1, 2, 4, 16, 256, 4949)
        assert PAPER_ALPHAS == (0.0, 0.25, 0.5, 0.75, 1.0)
        assert PAPER_RELIABILITY == 0.96
        assert PAPER_RHO == pytest.approx(1 / 128)

    def test_paper_scale_matches_section_5_2(self):
        assert PAPER_SCALE.n_sites == 101
        assert PAPER_SCALE.warmup_accesses == 100_000
        assert PAPER_SCALE.accesses_per_batch == 1_000_000

    def test_config_derivation(self):
        cfg = paper_config(chords=2, alpha=0.75, scale=TEST_SCALE)
        assert cfg.component_reliability == pytest.approx(0.96)
        assert cfg.mean_time_to_failure == pytest.approx(128.0)
        assert cfg.workload.alpha == 0.75
        assert cfg.topology.n_sites == TEST_SCALE.n_sites

    def test_chord_clamping_at_small_scale(self):
        cfg = paper_config(chords=4949, alpha=0.5, scale=TEST_SCALE)
        assert cfg.topology.is_fully_connected()

    def test_explicit_topology_override(self):
        from repro.topology.generators import grid

        topo = grid(3, 3)
        cfg = TEST_SCALE.config(0, alpha=0.5, topology=topo)
        assert cfg.topology is topo


class TestFigureData:
    @pytest.fixture(scope="class")
    def fig(self):
        return figure_data(chords=2, scale=TEST_SCALE, seed=7)

    def test_series_cover_alphas(self, fig):
        assert tuple(s.alpha for s in fig.series) == PAPER_ALPHAS

    def test_curve_shapes(self, fig):
        q_max = fig.model.max_read_quorum
        assert fig.quorums.shape == (q_max,)
        for s in fig.series:
            assert s.availability.shape == (q_max,)
            assert ((0 <= s.availability) & (s.availability <= 1 + 1e-12)).all()

    def test_alpha_orders_curves_at_qr1(self, fig):
        """At q_r = 1 availability is alpha*p + (1-alpha)*W(T): increasing
        in alpha because reads are far easier than write-all."""
        values = [s.availability[0] for s in fig.series]
        assert values == sorted(values)

    def test_left_edge_identity(self, fig):
        """Availability at q_r=1, alpha=1 is the site reliability (5.3)."""
        top = fig.curve(1.0)
        assert top.availability[0] == pytest.approx(0.96, abs=0.02)

    def test_convergence_at_majority(self, fig):
        assert fig.convergence_spread < 0.06

    def test_curve_lookup(self, fig):
        assert fig.curve(0.5).alpha == 0.5
        with pytest.raises(KeyError):
            fig.curve(0.33)

    def test_figure_requires_some_input(self):
        with pytest.raises(ValueError):
            figure_data()


class TestWriteConstraintTable:
    @pytest.fixture(scope="class")
    def model(self):
        f = ring_density(101, 0.96, 0.96)
        return AvailabilityModel(f, f)

    def test_rows_cover_floors(self, model):
        rows = write_constraint_table(model, alpha=0.75)
        assert len(rows) == 6
        assert rows[0].write_floor == 0.0

    def test_floor_zero_unconstrained(self, model):
        rows = write_constraint_table(model, 0.75, write_floors=(0.0,))
        assert rows[0].feasible
        assert rows[0].read_quorum == 1  # ring at high alpha: ROWA optimum

    def test_tighter_floor_higher_quorum(self, model):
        rows = write_constraint_table(model, 0.75, write_floors=(0.0, 0.1, 0.3))
        feasible = [r for r in rows if r.feasible]
        quorums = [r.read_quorum for r in feasible]
        assert quorums == sorted(quorums)

    def test_floors_respected(self, model):
        for row in write_constraint_table(model, 0.75):
            if row.feasible and row.write_floor > 0:
                assert row.write_availability >= row.write_floor

    def test_infeasible_floor_flagged(self):
        f = ring_density(21, 0.5, 0.5)
        model = AvailabilityModel(f, f)
        rows = write_constraint_table(model, 0.5, write_floors=(0.99,))
        assert not rows[0].feasible
        assert rows[0].read_quorum is None


class TestReadWriteRatioTable:
    @pytest.fixture(scope="class")
    def models(self):
        ring_f = ring_density(101, 0.96, 0.96)
        dense_f = complete_density(101, 0.96, 0.96)
        return [
            ("ring-101", AvailabilityModel(ring_f, ring_f)),
            ("complete-101", AvailabilityModel(dense_f, dense_f)),
        ]

    def test_grid_coverage(self, models):
        rows = read_write_ratio_table(models, PAPER_ALPHAS)
        assert len(rows) == 10

    def test_section_5_5_claims(self, models):
        """Dense topologies / low alpha -> majority optimal; sparse + high
        alpha -> ROWA optimal and majority worst."""
        rows = {(r.topology_name, r.alpha): r for r in
                read_write_ratio_table(models, PAPER_ALPHAS)}
        assert rows[("complete-101", 0.0)].optimum_is_majority
        assert rows[("complete-101", 0.25)].optimum_is_majority
        assert rows[("ring-101", 1.0)].optimum_is_rowa
        assert rows[("ring-101", 0.75)].optimum_is_rowa
        assert rows[("ring-101", 1.0)].majority_is_worst

    def test_regime_flags_consistent(self, models):
        for row in read_write_ratio_table(models, PAPER_ALPHAS):
            assert (
                row.optimum_is_majority + row.optimum_is_rowa + row.optimum_is_interior
                <= 2
            )
            # At least one regime label applies unless T is degenerate.
            assert row.optimum_is_majority or row.optimum_is_rowa or row.optimum_is_interior


class TestReportRendering:
    def test_render_figure(self):
        fig = figure_data(chords=0, scale=TEST_SCALE, seed=3)
        text = render_figure(fig)
        assert "availability vs read quorum" in text
        assert "optimum alpha=0.75" in text
        assert "convergence spread" in text

    def test_render_write_constraint(self):
        f = ring_density(21, 0.96, 0.96)
        model = AvailabilityModel(f, f)
        rows = write_constraint_table(model, 0.75, write_floors=(0.0, 0.2, 0.99))
        text = render_write_constraint_table(rows, 0.75, "ring-21")
        assert "floor A_w" in text
        assert "infeasible" in text

    def test_render_rw_table(self):
        f = ring_density(21, 0.96, 0.96)
        model = AvailabilityModel(f, f)
        rows = read_write_ratio_table([("ring-21", model)], (0.0, 1.0))
        text = render_rw_table(rows)
        assert "regime" in text
        assert "ring-21" in text
