"""End-to-end validation of the bus network model.

Chains four independently-built pieces: the bus closed form (section
4.2), the star-through-a-hub topology encoding, heterogeneous
per-component failure rates, and the simulator — the stationary density
measured at a real simulated site must match the paper's formula.
"""

import numpy as np
import pytest

from repro.analytic.bus import bus_density
from repro.protocols.majority import MajorityConsensusProtocol
from repro.simulation.config import SimulationConfig
from repro.simulation.processes import reliability_to_repair_time
from repro.simulation.runner import run_simulation
from repro.simulation.workload import AccessWorkload
from repro.topology.generators import bus


@pytest.fixture(scope="module")
def bus_run():
    n = 8
    p, r = 0.9, 0.8
    topo = bus(n)  # sites 0..7 plus zero-vote hub at 8
    hub = n

    mu_f = 20.0
    # Per-component mean times: sites at reliability p, hub at r.
    mttf = np.full(topo.n_sites + topo.n_links, mu_f)
    mttr = np.empty(topo.n_sites + topo.n_links)
    mttr[:n] = reliability_to_repair_time(p, mu_f)
    mttr[hub] = reliability_to_repair_time(r, mu_f)
    mttr[topo.n_sites:] = 1.0  # links are infallible; value unused

    fallible_links = np.zeros(topo.n_links, dtype=bool)  # perfect spokes

    workload = AccessWorkload.uniform(topo.n_sites, alpha=0.5)
    cfg = SimulationConfig(
        topology=topo,
        workload=workload,
        mean_time_to_failure=mttf,
        mean_time_to_repair=mttr,
        warmup_accesses=0.0,
        accesses_per_batch=60_000.0,
        n_batches=2,
        initial_state="stationary",
        fallible_links=fallible_links,
        seed=31,
    )
    result = run_simulation(cfg, MajorityConsensusProtocol(topo.total_votes))
    return n, p, r, result


class TestBusPipeline:
    def test_simulated_density_matches_bus_closed_form(self, bus_run):
        n, p, r, result = bus_run
        measured = result.density_matrix("time")[:n].mean(axis=0)
        expected = bus_density(n, p, r, sites_need_bus=False)
        assert np.abs(measured - expected).max() < 0.02

    def test_hub_density_reflects_bus_reliability(self, bus_run):
        """The hub carries zero votes; when down it sits at 0 votes, and
        the fraction of time down is 1 - r."""
        n, p, r, result = bus_run
        hub_density = result.density_matrix("time")[n]
        assert hub_density[0] == pytest.approx(1 - r, abs=0.02)

    def test_bus_down_isolates_everyone(self, bus_run):
        """With the bus down, every up site is a singleton: mass at
        exactly 1 vote must include the p * (1 - r) bus-down term."""
        n, p, r, result = bus_run
        site_density = result.density_matrix("time")[:n].mean(axis=0)
        from scipy.special import comb

        bus_up_singleton = r * comb(n - 1, 0) * p * (1 - p) ** (n - 1)
        expected_singleton = p * (1 - r) + bus_up_singleton
        assert site_density[1] == pytest.approx(expected_singleton, abs=0.02)
