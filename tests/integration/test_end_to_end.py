"""End-to-end integration tests: the full paper workflow on small systems.

Each test exercises the complete pipeline a user of the library would
run: build a topology, simulate it, estimate densities on-line, feed the
Figure-1 algorithm, pick quorums, and (for the dynamic tests) install
them through the QR protocol while the network keeps failing.
"""

import numpy as np
import pytest

from repro.analytic.ring import ring_density
from repro.experiments.paper import TEST_SCALE
from repro.protocols.majority import MajorityConsensusProtocol
from repro.protocols.quorum_consensus import QuorumConsensusProtocol
from repro.protocols.reassignment import QuorumReassignmentProtocol
from repro.quorum.assignment import QuorumAssignment
from repro.quorum.availability import AvailabilityModel
from repro.quorum.optimizer import optimal_read_quorum
from repro.simulation.config import SimulationConfig
from repro.simulation.runner import run_simulation
from repro.topology.generators import ring, ring_with_chords


class TestFigureOneWorkflow:
    """Simulate -> estimate f_i -> optimize -> verify the choice wins."""

    @pytest.fixture(scope="class")
    def run(self):
        cfg = SimulationConfig.paper_like(
            ring_with_chords(15, 2),
            alpha=0.75,
            warmup_accesses=300.0,
            accesses_per_batch=20_000.0,
            n_batches=3,
            seed=11,
        )
        protocol = MajorityConsensusProtocol(cfg.topology.total_votes)
        return cfg, run_simulation(cfg, protocol)

    def test_online_estimate_close_to_analytic_shape(self, run):
        cfg, result = run
        model = result.availability_model()
        # A chorded ring sits between the pure ring and complete closed
        # forms; sanity-check the gross shape: down mass approximately 1-p.
        assert model.read_density[0] == pytest.approx(0.04, abs=0.01)

    def test_recommended_quorum_beats_majority_in_direct_simulation(self, run):
        cfg, result = run
        model = result.availability_model()
        best = optimal_read_quorum(model, alpha=0.75)
        if best.read_quorum == model.max_read_quorum:
            pytest.skip("optimum coincides with majority on this draw")
        # Re-simulate both assignments directly and compare measured ACC.
        opt_proto = QuorumConsensusProtocol(best.assignment)
        maj_proto = MajorityConsensusProtocol(cfg.topology.total_votes)
        acc_opt = run_simulation(cfg, opt_proto).availability.mean
        acc_maj = run_simulation(cfg, maj_proto).availability.mean
        assert acc_opt > acc_maj - 0.01

    def test_predicted_availability_matches_direct_measurement(self, run):
        cfg, result = run
        model = result.availability_model()
        q = 3
        predicted = float(model.availability(0.75, q))
        direct = run_simulation(
            cfg, QuorumConsensusProtocol(QuorumAssignment.from_read_quorum(15, q))
        )
        assert direct.availability.mean == pytest.approx(predicted, abs=0.03)


class TestDynamicReassignmentWorkflow:
    def test_qr_protocol_survives_full_simulation(self):
        """Run the QR protocol inside the simulator with an observer that
        periodically re-optimizes from the on-line estimate. The run must
        complete, install at least one reassignment, and never violate the
        version-propagation invariant."""
        topo = ring(11)
        cfg = SimulationConfig.paper_like(
            topo,
            alpha=0.9,
            warmup_accesses=0.0,
            accesses_per_batch=20_000.0,
            n_batches=1,
            seed=4,
        )
        T = topo.total_votes
        protocol = QuorumReassignmentProtocol(T, QuorumAssignment.majority(T))
        from repro.protocols.estimator import OnlineDensityEstimator

        estimator = OnlineDensityEstimator(topo.n_sites, T)
        state = {"last": None}

        def observer(time, tracker, proto):
            estimator.observe_all(tracker.vote_totals, weight=1.0)
            if estimator.total_weight < 50 * topo.n_sites:
                return
            model = AvailabilityModel.from_density_matrix(estimator.density_matrix())
            best = optimal_read_quorum(model, alpha=0.9)
            current = proto.effective_assignment(tracker, 0)
            if current is not None and best.assignment != current:
                if proto.try_reassign(tracker, 0, best.assignment):
                    state["last"] = best.assignment

        result = run_simulation(cfg, protocol, change_observer=observer)
        assert protocol.installs >= 1
        # At alpha = 0.9 on a ring the optimizer should move away from
        # majority toward small read quorums.
        assert state["last"] is not None
        assert state["last"].read_quorum < T // 2

    def test_dynamic_beats_static_majority_on_read_heavy_ring(self):
        """The headline value proposition: on a read-heavy sparse network,
        QR + on-line optimization yields higher measured availability than
        static majority consensus."""
        # A 21-site ring fragments enough for the quorum choice to matter:
        # analytically A(opt) - A(majority) ~ 0.13 at alpha = 0.9.
        topo = ring(21)
        T = topo.total_votes
        base = SimulationConfig.paper_like(
            topo,
            alpha=0.9,
            warmup_accesses=200.0,
            accesses_per_batch=15_000.0,
            n_batches=3,
            seed=21,
        )

        static = run_simulation(base, MajorityConsensusProtocol(T))

        analytic = ring_density(T, 0.96, 0.96)
        model = AvailabilityModel(analytic, analytic)
        protocol = QuorumReassignmentProtocol(T, QuorumAssignment.majority(T))
        best = optimal_read_quorum(model, alpha=0.9)

        def observer(time, tracker, proto):
            current = proto.effective_assignment(tracker, 0)
            if current is not None and current != best.assignment:
                proto.try_reassign(tracker, 0, best.assignment)

        dynamic = run_simulation(base, protocol, change_observer=observer)
        assert dynamic.availability.mean > static.availability.mean + 0.05


class TestMetricRelationships:
    def test_acc_bounded_by_site_reliability_and_surv(self):
        """Paper section 3: single-site reliability lower-bounds SURV and
        upper-bounds ACC."""
        cfg = SimulationConfig.paper_like(
            ring_with_chords(13, 1),
            alpha=0.5,
            warmup_accesses=200.0,
            accesses_per_batch=15_000.0,
            n_batches=2,
            seed=9,
        )
        res = run_simulation(cfg, MajorityConsensusProtocol(13))
        p = cfg.component_reliability
        assert res.availability.mean <= p + 0.02
        # SURV for the easier operation (read == write under majority) is
        # at least the single-site reliability... for majority the claim
        # holds for the metric pair as the paper states it:
        assert res.surv_read.mean >= p - 0.05
