"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.quorum.availability import AvailabilityModel
from repro.topology.generators import fully_connected, ring, ring_with_chords


@pytest.fixture
def small_ring():
    """A 7-site ring — small enough for exact enumeration oracles."""
    return ring(7)


@pytest.fixture
def small_complete():
    """A 5-site complete graph — exact enumeration remains cheap."""
    return fully_connected(5)


@pytest.fixture
def medium_topology():
    """A 21-site ring with 4 chords for simulator tests."""
    return ring_with_chords(21, 4)


@pytest.fixture
def peaked_model():
    """An availability model whose density concentrates near T.

    T = 10; mass 0.05 at v=0, 0.15 spread over mid sizes, 0.8 at v in
    {9, 10}. Mimics a reliable, well-connected network.
    """
    f = np.zeros(11)
    f[0] = 0.05
    f[4] = 0.05
    f[5] = 0.05
    f[6] = 0.05
    f[9] = 0.30
    f[10] = 0.50
    return AvailabilityModel(f, f)


@pytest.fixture
def fragmented_model():
    """A model for a fragile network: mass concentrated at small sizes."""
    f = np.zeros(11)
    f[0] = 0.2
    f[1] = 0.35
    f[2] = 0.25
    f[3] = 0.1
    f[5] = 0.05
    f[10] = 0.05
    return AvailabilityModel(f, f)


def uniform_density(total_votes: int) -> np.ndarray:
    """Uniform density over 0..T (test helper)."""
    return np.full(total_votes + 1, 1.0 / (total_votes + 1))
