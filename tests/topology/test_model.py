"""Unit tests for the Topology and Link value objects."""

import numpy as np
import pytest

from repro.errors import TopologyError, VoteAssignmentError
from repro.topology.model import Link, Topology


class TestLink:
    def test_normalizes_endpoint_order(self):
        assert Link(5, 2).endpoints() == (2, 5)
        assert Link(2, 5) == Link(5, 2)

    def test_rejects_self_loop(self):
        with pytest.raises(TopologyError):
            Link(3, 3)

    def test_other_endpoint(self):
        link = Link(1, 4)
        assert link.other(1) == 4
        assert link.other(4) == 1

    def test_other_rejects_non_endpoint(self):
        with pytest.raises(TopologyError):
            Link(1, 4).other(2)

    def test_ordering_is_lexicographic(self):
        assert Link(0, 1) < Link(0, 2) < Link(1, 2)


class TestTopologyConstruction:
    def test_basic_properties(self):
        topo = Topology(4, [(0, 1), (1, 2), (2, 3)])
        assert topo.n_sites == 4
        assert topo.n_links == 3
        assert topo.total_votes == 4
        assert list(topo.sites()) == [0, 1, 2, 3]

    def test_rejects_zero_sites(self):
        with pytest.raises(TopologyError):
            Topology(0, [])

    def test_rejects_out_of_range_link(self):
        with pytest.raises(TopologyError):
            Topology(3, [(0, 3)])

    def test_rejects_duplicate_link_any_orientation(self):
        with pytest.raises(TopologyError):
            Topology(3, [(0, 1), (1, 0)])

    def test_rejects_wrong_vote_length(self):
        with pytest.raises(VoteAssignmentError):
            Topology(3, [(0, 1)], votes=[1, 1])

    def test_rejects_negative_votes(self):
        with pytest.raises(VoteAssignmentError):
            Topology(3, [(0, 1)], votes=[1, -1, 1])

    def test_rejects_all_zero_votes(self):
        with pytest.raises(VoteAssignmentError):
            Topology(3, [(0, 1)], votes=[0, 0, 0])

    def test_votes_default_uniform(self):
        topo = Topology(5, [])
        assert np.array_equal(topo.votes, np.ones(5, dtype=np.int64))

    def test_votes_are_read_only(self):
        topo = Topology(3, [(0, 1)])
        with pytest.raises(ValueError):
            topo.votes[0] = 7

    def test_zero_vote_sites_allowed(self):
        topo = Topology(3, [(0, 1), (1, 2)], votes=[1, 0, 1])
        assert topo.total_votes == 2


class TestTopologyAccessors:
    def test_neighbors_sorted(self):
        topo = Topology(4, [(2, 0), (0, 3), (0, 1)])
        assert topo.neighbors(0) == (1, 2, 3)
        assert topo.degree(0) == 3
        assert topo.degree(1) == 1

    def test_neighbors_unknown_site(self):
        with pytest.raises(TopologyError):
            Topology(2, [(0, 1)]).neighbors(9)

    def test_has_link_and_link_id(self):
        topo = Topology(4, [(0, 1), (2, 3)])
        assert topo.has_link(1, 0)
        assert not topo.has_link(0, 2)
        assert not topo.has_link(1, 1)
        assert topo.links[topo.link_id(3, 2)] == Link(2, 3)

    def test_link_id_missing(self):
        with pytest.raises(TopologyError):
            Topology(4, [(0, 1)]).link_id(2, 3)

    def test_link_endpoint_arrays(self):
        topo = Topology(4, [(0, 1), (1, 2), (0, 3)])
        u, v = topo.link_endpoint_arrays()
        assert (u < v).all()
        assert len(u) == 3

    def test_link_endpoint_arrays_empty(self):
        u, v = Topology(2, []).link_endpoint_arrays()
        assert u.size == 0 and v.size == 0


class TestDerivedTopologies:
    def test_with_votes(self):
        topo = Topology(3, [(0, 1), (1, 2)])
        weighted = topo.with_votes([3, 1, 2])
        assert weighted.total_votes == 6
        assert topo.total_votes == 3  # original unchanged

    def test_add_links(self):
        topo = Topology(3, [(0, 1)])
        bigger = topo.add_links([(1, 2)])
        assert bigger.n_links == 2
        assert topo.n_links == 1

    def test_add_duplicate_link_rejected(self):
        with pytest.raises(TopologyError):
            Topology(3, [(0, 1)]).add_links([(1, 0)])


class TestStructurePredicates:
    def test_ring_detection(self):
        ring3 = Topology(3, [(0, 1), (1, 2), (0, 2)])
        assert ring3.is_ring()
        path = Topology(3, [(0, 1), (1, 2)])
        assert not path.is_ring()

    def test_two_disjoint_triangles_not_ring(self):
        topo = Topology(6, [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)])
        assert not topo.is_ring()

    def test_fully_connected_detection(self):
        assert Topology(4, [(i, j) for i in range(4) for j in range(i + 1, 4)]).is_fully_connected()
        assert not Topology(4, [(0, 1)]).is_fully_connected()
        assert Topology(1, []).is_fully_connected()

    def test_star_detection(self):
        assert Topology(4, [(0, 1), (0, 2), (0, 3)]).is_star()
        assert not Topology(4, [(0, 1), (1, 2), (2, 3)]).is_star()

    def test_connectivity(self):
        assert Topology(3, [(0, 1), (1, 2)]).is_connected()
        assert not Topology(3, [(0, 1)]).is_connected()
        assert Topology(1, []).is_connected()


class TestDunder:
    def test_equality_and_hash(self):
        a = Topology(3, [(0, 1), (1, 2)])
        b = Topology(3, [(1, 2), (0, 1)])
        assert a == b
        assert hash(a) == hash(b)

    def test_inequality_by_votes(self):
        a = Topology(3, [(0, 1)])
        b = Topology(3, [(0, 1)], votes=[2, 1, 1])
        assert a != b

    def test_repr_contains_vitals(self):
        topo = Topology(3, [(0, 1)], name="probe")
        assert "probe" in repr(topo)
        assert "n_sites=3" in repr(topo)
