"""Unit tests for the deterministic chord placement."""

import pytest

from repro.errors import TopologyError
from repro.topology.chords import chord_endpoints, max_chords, spread_chords


class TestMaxChords:
    def test_matches_complete_graph(self):
        for n in (3, 4, 10, 101):
            assert max_chords(n) == n * (n - 1) // 2 - n

    def test_rejects_tiny_rings(self):
        with pytest.raises(TopologyError):
            max_chords(2)


class TestChordEndpoints:
    def test_count_and_uniqueness(self):
        chords = chord_endpoints(101, 256)
        assert len(chords) == 256
        assert len(set(chords)) == 256

    def test_no_ring_links_emitted(self):
        n = 20
        chords = chord_endpoints(n, max_chords(n))
        for a, b in chords:
            dist = min((b - a) % n, (a - b) % n)
            assert dist >= 2, f"chord ({a},{b}) is a ring link"

    def test_exhausts_exactly_all_chords(self):
        n = 12
        chords = chord_endpoints(n, max_chords(n))
        assert len(chords) == max_chords(n)
        assert len(set(chords)) == max_chords(n)

    def test_deterministic(self):
        assert chord_endpoints(31, 16) == chord_endpoints(31, 16)

    def test_prefix_property(self):
        """Asking for fewer chords yields a prefix — topologies nest."""
        assert chord_endpoints(101, 4) == chord_endpoints(101, 16)[:4]

    def test_longest_first(self):
        n = 21
        chords = chord_endpoints(n, 5)
        for a, b in chords:
            dist = min((b - a) % n, (a - b) % n)
            assert dist == n // 2  # first chords are antipodal

    def test_zero_chords(self):
        assert chord_endpoints(11, 0) == []

    def test_negative_rejected(self):
        with pytest.raises(TopologyError):
            chord_endpoints(11, -1)

    def test_over_limit_rejected(self):
        with pytest.raises(TopologyError):
            chord_endpoints(10, max_chords(10) + 1)

    def test_spread_alias(self):
        assert spread_chords(31, 7) == chord_endpoints(31, 7)

    def test_first_chords_spread_around_ring(self):
        """Consecutive same-distance chords should not share endpoints."""
        chords = chord_endpoints(101, 8)
        endpoints = [s for pair in chords for s in pair]
        assert len(set(endpoints)) == len(endpoints)

    def test_even_ring_antipodal_class(self):
        n = 10
        chords = chord_endpoints(n, n // 2)  # the whole antipodal class
        dists = {min((b - a) % n, (a - b) % n) for a, b in chords}
        assert dists == {n // 2}
        assert len(set(chords)) == n // 2
