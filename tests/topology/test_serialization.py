"""Unit tests for topology serialization and networkx interop."""

import json

import networkx as nx
import pytest

from repro.errors import TopologyError
from repro.topology.generators import ring_with_chords
from repro.topology.model import Topology
from repro.topology.serialization import from_dict, from_networkx, to_dict, to_networkx


class TestDictRoundTrip:
    def test_round_trip_preserves_everything(self):
        topo = ring_with_chords(11, 3).with_votes([2] * 10 + [1])
        again = from_dict(to_dict(topo))
        assert again == topo
        assert again.name == topo.name

    def test_dict_is_json_compatible(self):
        payload = to_dict(ring_with_chords(7, 2))
        assert from_dict(json.loads(json.dumps(payload))) == ring_with_chords(7, 2)

    def test_missing_key_raises(self):
        payload = to_dict(ring_with_chords(7, 1))
        del payload["links"]
        with pytest.raises(TopologyError):
            from_dict(payload)

    def test_unknown_schema_raises(self):
        payload = to_dict(ring_with_chords(7, 1))
        payload["schema"] = 99
        with pytest.raises(TopologyError):
            from_dict(payload)


class TestNetworkxInterop:
    def test_round_trip(self):
        topo = ring_with_chords(9, 2).with_votes([1, 2, 1, 1, 3, 1, 1, 1, 1])
        again = from_networkx(to_networkx(topo))
        assert again == topo

    def test_votes_attribute_exported(self):
        graph = to_networkx(Topology(3, [(0, 1)], votes=[5, 1, 1]))
        assert graph.nodes[0]["votes"] == 5

    def test_missing_votes_default_to_one(self):
        graph = nx.path_graph(4)
        topo = from_networkx(graph)
        assert topo.total_votes == 4

    def test_arbitrary_labels_relabelled_sorted(self):
        graph = nx.Graph()
        graph.add_edge("c", "a")
        graph.add_edge("a", "b")
        topo = from_networkx(graph)
        # sorted labels: a->0, b->1, c->2
        assert topo.has_link(0, 2) and topo.has_link(0, 1)

    def test_self_loops_dropped(self):
        graph = nx.Graph()
        graph.add_edge(0, 0)
        graph.add_edge(0, 1)
        topo = from_networkx(graph)
        assert topo.n_links == 1

    def test_empty_graph_rejected(self):
        with pytest.raises(TopologyError):
            from_networkx(nx.Graph())
