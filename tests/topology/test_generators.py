"""Unit tests for the topology generators."""

import numpy as np
import pytest

from repro.errors import TopologyError
from repro.topology.generators import (
    PAPER_CHORD_COUNTS,
    bus,
    erdos_renyi,
    fully_connected,
    grid,
    paper_topology,
    random_tree,
    ring,
    ring_with_chords,
    star,
)


class TestRing:
    def test_basic_shape(self):
        topo = ring(10)
        assert topo.n_sites == 10
        assert topo.n_links == 10
        assert topo.is_ring()

    def test_minimum_size(self):
        with pytest.raises(TopologyError):
            ring(2)

    def test_custom_votes(self):
        topo = ring(4, votes=[2, 1, 1, 1])
        assert topo.total_votes == 5


class TestRingWithChords:
    def test_zero_chords_is_ring(self):
        topo = ring_with_chords(11, 0)
        assert topo.is_ring()
        assert "topology-0" in topo.name

    @pytest.mark.parametrize("n_chords", [1, 2, 4, 16])
    def test_link_count(self, n_chords):
        topo = ring_with_chords(21, n_chords)
        assert topo.n_links == 21 + n_chords

    def test_all_chords_gives_complete(self):
        n = 9
        topo = ring_with_chords(n, n * (n - 3) // 2)
        assert topo.is_fully_connected()

    def test_too_many_chords(self):
        with pytest.raises(TopologyError):
            ring_with_chords(9, 9 * (9 - 3) // 2 + 1)

    def test_chords_are_not_ring_links(self):
        topo = ring_with_chords(15, 5)
        ring_links = {(i, (i + 1) % 15) for i in range(15)}
        ring_links = {tuple(sorted(l)) for l in ring_links}
        chords = {l.endpoints() for l in topo.links} - ring_links
        assert len(chords) == 5


class TestFullyConnected:
    def test_link_count(self):
        topo = fully_connected(8)
        assert topo.n_links == 28
        assert topo.is_fully_connected()

    def test_single_site(self):
        assert fully_connected(1).n_links == 0


class TestStarAndBus:
    def test_star_shape(self):
        topo = star(6, hub=2)
        assert topo.is_star()
        assert topo.degree(2) == 5

    def test_star_bad_hub(self):
        with pytest.raises(TopologyError):
            star(4, hub=4)

    def test_bus_hub_has_zero_votes(self):
        topo = bus(5)
        assert topo.n_sites == 6  # 5 sites + hub
        assert topo.votes[5] == 0
        assert topo.total_votes == 5

    def test_bus_votes_without_hub_entry(self):
        topo = bus(3, votes=[2, 1, 1])
        assert topo.total_votes == 4
        assert topo.votes[3] == 0

    def test_bus_votes_wrong_length(self):
        with pytest.raises(TopologyError):
            bus(3, votes=[1, 1])


class TestGrid:
    def test_link_count(self):
        topo = grid(3, 4)
        # 3 rows x 3 horizontal + 2 x 4 vertical = 9 + 8
        assert topo.n_sites == 12
        assert topo.n_links == 17
        assert topo.is_connected()

    def test_degenerate_line(self):
        topo = grid(1, 5)
        assert topo.n_links == 4

    def test_bad_dimensions(self):
        with pytest.raises(TopologyError):
            grid(0, 3)


class TestRandomFamilies:
    def test_tree_is_connected_and_minimal(self):
        topo = random_tree(30, seed=7)
        assert topo.n_links == 29
        assert topo.is_connected()

    def test_tree_deterministic_by_seed(self):
        assert random_tree(12, seed=3) == random_tree(12, seed=3)

    def test_gnp_extremes(self):
        assert erdos_renyi(6, 0.0, seed=0).n_links == 0
        assert erdos_renyi(6, 1.0, seed=0).is_fully_connected()

    def test_gnp_bad_probability(self):
        with pytest.raises(TopologyError):
            erdos_renyi(5, 1.5)

    def test_gnp_ensure_connected(self):
        topo = erdos_renyi(25, 0.02, seed=5, ensure_connected=True)
        assert topo.is_connected()


class TestPaperTopology:
    @pytest.mark.parametrize("chords", PAPER_CHORD_COUNTS[:-1])
    def test_link_counts(self, chords):
        topo = paper_topology(chords)
        assert topo.n_sites == 101
        assert topo.n_links == 101 + chords

    def test_fully_connected_case(self):
        topo = paper_topology(4949)
        assert topo.is_fully_connected()
        assert topo.n_links == 101 * 100 // 2
