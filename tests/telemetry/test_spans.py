"""Unit tests for span tracing: nesting, timing, and the overflow cap."""

from repro.telemetry.recorder import NULL, Telemetry
from repro.telemetry.spans import NULL_SPAN, SpanCollector


class TestNesting:
    def test_parent_child_links(self):
        spans = SpanCollector()
        with spans.span("outer") as outer:
            with spans.span("inner") as inner:
                pass
        assert inner.parent_id == outer.span_id
        inner_rec, outer_rec = spans.records
        assert inner_rec.name == "inner"  # children finish first
        assert inner_rec.parent_id == outer_rec.span_id
        assert outer_rec.parent_id is None
        assert spans.children_of(outer_rec.span_id) == [inner_rec]

    def test_siblings_share_parent(self):
        spans = SpanCollector()
        with spans.span("outer"):
            with spans.span("a"):
                pass
            with spans.span("b"):
                pass
        a, b = spans.by_name("a")[0], spans.by_name("b")[0]
        assert a.parent_id == b.parent_id

    def test_exception_still_records_and_unwinds(self):
        spans = SpanCollector()
        try:
            with spans.span("outer"):
                with spans.span("inner"):
                    raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert [r.name for r in spans.records] == ["inner", "outer"]
        with spans.span("next") as nxt:
            pass
        assert nxt.parent_id is None  # stack fully unwound

    def test_timings_nonnegative_and_ordered(self):
        spans = SpanCollector()
        with spans.span("outer"):
            with spans.span("inner"):
                sum(range(1000))
        inner, outer = spans.records
        assert inner.wall >= 0 and inner.cpu >= 0
        assert outer.wall >= inner.wall

    def test_attrs_preserved(self):
        spans = SpanCollector()
        with spans.span("s", batch=3, protocol="majority"):
            pass
        assert spans.records[0].attrs == {"batch": 3, "protocol": "majority"}


class TestOverflow:
    def test_cap_drops_records_but_not_aggregates(self):
        spans = SpanCollector(max_spans=2)
        for _ in range(5):
            with spans.span("tick"):
                pass
        assert len(spans) == 2
        assert spans.overflowed == 3
        # The aggregate histogram saw every span regardless of the cap.
        assert spans.seconds.count(name="tick") == 5


class TestNullPath:
    def test_null_span_is_shared_noop(self):
        with NULL_SPAN as s:
            assert s is NULL_SPAN

    def test_null_recorder_returns_null_span(self):
        assert NULL.span("anything", x=1) is NULL_SPAN
        assert not NULL.enabled

    def test_enabled_recorder_routes_to_collector(self):
        tel = Telemetry()
        with tel.span("work"):
            pass
        assert len(tel.spans) == 1
        assert tel.spans.records[0].name == "work"
