"""Denial-cause attribution on the database access path.

The scripted scenario exercises every audit cause the paper's protocols
can produce — ``site_down``, ``no_quorum``, and (for versioned QR
protocols) ``stale_assignment`` — and asserts the per-cause volumes sum
exactly to the ACC denial count.
"""

import pytest

from repro.protocols.quorum_consensus import QuorumConsensusProtocol
from repro.protocols.reassignment import QuorumReassignmentProtocol
from repro.quorum.assignment import QuorumAssignment
from repro.replication.database import ReplicatedDatabase
from repro.telemetry.recorder import Telemetry
from repro.topology.generators import ring


def make_db(protocol, telemetry):
    return ReplicatedDatabase(ring(5), protocol, initial_value="v0",
                              telemetry=telemetry)


def isolate_site_zero(db):
    """Cut ring(5) links (0,1) and (4,0): site 0 alone vs {1,2,3,4}."""
    db.fail_link(0, 1)
    db.fail_link(4, 0)


class TestStaticProtocolAttribution:
    def test_site_down_attributed(self):
        tel = Telemetry()
        db = make_db(QuorumConsensusProtocol(QuorumAssignment(5, 3, 3)), tel)
        db.fail_site(2)
        assert not db.submit_read(2).granted
        assert tel.audit.denials_by_reason() == {"site_down": 1.0}
        (rec,) = tel.audit.records
        assert rec.site == 2 and rec.op == "read"

    def test_no_quorum_attributed_with_quorums_in_force(self):
        tel = Telemetry()
        db = make_db(QuorumConsensusProtocol(QuorumAssignment(5, 3, 3)), tel)
        isolate_site_zero(db)
        assert not db.submit_read(0).granted
        assert not db.submit_write(0, "x").granted
        assert tel.audit.denials_by_reason() == {"no_quorum": 2.0}
        for rec in tel.audit.records:
            assert rec.component_votes == 1
            assert rec.component_size == 1
            assert rec.read_quorum == 3 and rec.write_quorum == 3  # q_r+q_w>T

    def test_granted_recorded_with_context(self):
        tel = Telemetry()
        db = make_db(QuorumConsensusProtocol(QuorumAssignment(5, 3, 3)), tel)
        assert db.submit_write(1, "x").granted
        (rec,) = tel.audit.records
        assert rec.granted and rec.component_votes == 5


class TestStaleAssignmentAttribution:
    def _partitioned_qr_db(self):
        tel = Telemetry()
        qr = QuorumReassignmentProtocol(5, QuorumAssignment(5, 3, 3))
        db = make_db(qr, tel)
        isolate_site_zero(db)
        # The majority component installs a new assignment (version 2);
        # isolated site 0 still holds version 1.
        assert qr.try_reassign(db.tracker, 1, QuorumAssignment(5, 2, 4))
        return tel, db, qr

    def test_stale_component_denial_refined(self):
        tel, db, qr = self._partitioned_qr_db()
        assert not db.submit_read(0).granted
        assert tel.audit.denials_by_reason() == {"stale_assignment": 1.0}
        (rec,) = tel.audit.records
        assert rec.assignment_version == 1
        assert qr.max_version() == 2

    def test_current_component_denial_stays_no_quorum(self):
        tel = Telemetry()
        qr = QuorumReassignmentProtocol(5, QuorumAssignment(5, 3, 3))
        db = make_db(qr, tel)
        isolate_site_zero(db)
        # No reassignment happened: both components hold version 1, so a
        # denial at site 0 is a plain partition cost.
        assert not db.submit_read(0).granted
        assert tel.audit.denials_by_reason() == {"no_quorum": 1.0}

    def test_reasons_sum_to_acc_denial_count(self):
        tel, db, _ = self._partitioned_qr_db()
        db.submit_read(0)            # stale_assignment (isolated, version 1)
        db.submit_write(0, "x")      # stale_assignment
        db.fail_site(3)              # splits the majority side: {1,2} | {4}
        db.submit_read(3)            # site_down
        db.submit_read(1)            # granted: 2 votes >= q_r=2
        db.submit_write(2, "y")      # no_quorum: 2 votes < q_w=4, version current
        counts = db.grant_counts()
        denied = sum(v for k, v in counts.items() if not k.endswith(":granted"))
        granted = sum(v for k, v in counts.items() if k.endswith(":granted"))
        by_reason = tel.audit.denials_by_reason()
        assert sum(by_reason.values()) == denied == 4
        assert by_reason == {"stale_assignment": 2.0, "site_down": 1.0,
                             "no_quorum": 1.0}
        assert tel.audit.granted() == granted == 1
        assert tel.audit.submitted() == denied + granted
        assert tel.audit.availability() == pytest.approx(granted / (denied + granted))

    def test_metrics_counter_mirrors_audit(self):
        tel, db, _ = self._partitioned_qr_db()
        db.submit_read(0)
        db.submit_read(1)
        counter = tel.metrics.get("repro_db_accesses_total")
        assert counter.value(op="read", outcome="stale_assignment") == 1
        assert counter.value(op="read", outcome="granted") == 1


class TestDisabledRecorder:
    def test_null_recorder_audits_nothing(self):
        db = ReplicatedDatabase(
            ring(5),
            QuorumConsensusProtocol(QuorumAssignment(5, 3, 3)),
            initial_value="v0",
        )
        db.submit_read(0)
        db.fail_site(1)
        db.submit_read(1)
        assert len(db.telemetry.audit) == 0
        assert not db.telemetry.enabled
