"""End-to-end telemetry through the simulation stack.

The load-bearing assertion is the ISSUE acceptance criterion: on a
multi-batch ring run, the audit log's per-cause volumes reconcile
*exactly* with the engine's reported ACC numerator and denominator.
"""

import pytest

from repro.experiments.paper import ExperimentScale
from repro.faults.chaos import run_chaos_campaign
from repro.faults.schedule import FaultSchedule, ScriptedPartition
from repro.protocols.majority import MajorityConsensusProtocol
from repro.protocols.reassignment import QuorumReassignmentProtocol
from repro.quorum.assignment import QuorumAssignment
from repro.simulation.runner import run_simulation
from repro.telemetry.audit import DENIAL_REASONS, GRANTED
from repro.telemetry.recorder import NULL, Telemetry, current, use

#: Tiny but many-batched: the reconciliation must hold across batch
#: boundaries, protocol resets, and the warm-up/measurement split.
TEN_BATCH_SCALE = ExperimentScale(
    name="ten-batch",
    n_sites=13,
    warmup_accesses=200.0,
    accesses_per_batch=1_500.0,
    n_batches=10,
)


def ring_run(protocol=None, telemetry=None, accounting="sampled"):
    config = TEN_BATCH_SCALE.config(0, alpha=0.5, seed=11,
                                    accounting=accounting)
    if protocol is None:
        protocol = MajorityConsensusProtocol(config.topology.total_votes)
    return config, run_simulation(config, protocol, telemetry=telemetry)


class TestAccReconciliation:
    @pytest.mark.parametrize("accounting", ["sampled", "expected"])
    def test_audit_totals_match_batch_accounting_exactly(self, accounting):
        tel = Telemetry()
        _, result = ring_run(telemetry=tel, accounting=accounting)
        assert len(result.batches) == 10
        submitted = sum(b.accesses_submitted for b in result.batches)
        granted = sum(b.accesses_granted for b in result.batches)
        snap = result.telemetry
        assert snap is not None
        assert snap.audit_volume() == pytest.approx(submitted, abs=1e-9)
        assert snap.audit_volume(reason=GRANTED) == pytest.approx(granted, abs=1e-9)
        by_reason = snap.denials_by_reason()
        assert set(by_reason) <= set(DENIAL_REASONS)
        assert sum(by_reason.values()) == pytest.approx(submitted - granted,
                                                        abs=1e-9)
        assert snap.audit_availability() == pytest.approx(
            granted / submitted, abs=1e-12)

    def test_audit_records_tagged_with_batches(self):
        tel = Telemetry()
        ring_run(telemetry=tel)
        batches = {r.batch_index for r in tel.audit.records}
        assert batches == set(range(10))

    def test_span_tree_covers_engine_phases(self):
        tel = Telemetry()
        ring_run(telemetry=tel)
        names = {r.name for r in tel.spans.records}
        assert {"run.batches", "engine.run_batch", "engine.prime"} <= names
        [run_root] = tel.spans.by_name("run.batches")
        assert run_root.parent_id is None
        batch_spans = tel.spans.by_name("engine.run_batch")
        assert len(batch_spans) == 10
        for span in batch_spans:
            assert span.parent_id == run_root.span_id
            assert {c.name for c in tel.spans.children_of(span.span_id)}

    def test_engine_counters_match_audit(self):
        tel = Telemetry()
        _, result = ring_run(telemetry=tel)
        snap = result.telemetry
        assert snap.counter_value("repro_engine_accesses_total",
                                  decision="granted") == pytest.approx(
            snap.audit_volume(reason=GRANTED))
        assert snap.counter_value("repro_engine_epochs_total") > 0


class TestVersionedProtocolTelemetry:
    def test_qr_run_reconciles_and_reports_versions(self):
        config = TEN_BATCH_SCALE.config(0, alpha=0.5, seed=3)
        protocol = QuorumReassignmentProtocol(
            config.topology.n_sites,
            QuorumAssignment.majority(config.topology.total_votes),
        )
        tel = Telemetry()
        result = run_simulation(config, protocol, telemetry=tel)
        snap = result.telemetry
        submitted = sum(b.accesses_submitted for b in result.batches)
        granted = sum(b.accesses_granted for b in result.batches)
        assert snap.audit_volume() == pytest.approx(submitted, abs=1e-9)
        assert sum(snap.denials_by_reason().values()) == pytest.approx(
            submitted - granted, abs=1e-9)
        # Every quorum-decided record reports the version in force; only
        # site_down aggregates lack one (a down site has no component).
        versions = [r.assignment_version for r in tel.audit.records
                    if r.reason != "site_down"]
        assert versions and all(v is not None for v in versions)


class TestChaosTelemetry:
    def test_campaign_snapshot_reconciles(self):
        config = TEN_BATCH_SCALE.config(0, alpha=0.5, seed=5)
        horizon = config.warmup_time + config.batch_time
        half = list(range(config.topology.n_sites // 2))
        config = config.with_fault_schedule(FaultSchedule([
            ScriptedPartition(0.3 * horizon, [half], heal_at=0.7 * horizon),
        ]))
        protocol = MajorityConsensusProtocol(config.topology.total_votes)
        tel = Telemetry()
        report = run_chaos_campaign(config, protocol, n_batches=4,
                                    telemetry=tel)
        snap = report.telemetry
        assert snap is not None
        assert snap.meta["mode"] == "chaos"
        submitted = sum(b.accesses_submitted for b in report.batches)
        granted = sum(b.accesses_granted for b in report.batches)
        assert snap.audit_volume() == pytest.approx(submitted, abs=1e-9)
        assert snap.audit_volume(reason=GRANTED) == pytest.approx(granted,
                                                                  abs=1e-9)
        assert snap.counter_value("repro_invariant_checks_total") > 0
        # The scripted partition shows up as chaos-sourced events.
        assert snap.counter_value("repro_engine_events_total",
                                  source="chaos") > 0


class TestRecorderScoping:
    def test_disabled_by_default(self):
        _, result = ring_run()
        assert result.telemetry is None
        assert current() is NULL

    def test_use_scopes_the_current_recorder(self):
        tel = Telemetry()
        with use(tel):
            assert current() is tel
            _, result = ring_run()
            assert result.telemetry is not None
        assert current() is NULL

    def test_results_identical_with_and_without_telemetry(self):
        _, bare = ring_run()
        _, instrumented = ring_run(telemetry=Telemetry())
        for a, b in zip(bare.batches, instrumented.batches):
            assert a.accesses_submitted == b.accesses_submitted
            assert a.accesses_granted == b.accesses_granted
            assert a.surv_read == b.surv_read
            assert a.surv_write == b.surv_write
            assert a.n_epochs == b.n_epochs and a.n_events == b.n_events
