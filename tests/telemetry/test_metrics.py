"""Unit tests for the metric primitives (counters, gauges, histograms)."""

import math

import numpy as np
import pytest

from repro.errors import ReproError
from repro.telemetry.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    P2Quantile,
)


class TestCounter:
    def test_inc_and_value(self):
        c = Counter("hits")
        c.inc()
        c.inc(2.5)
        assert c.value() == 3.5

    def test_labeled_series_are_independent(self):
        c = Counter("ops")
        c.inc(op="read")
        c.inc(3, op="write")
        assert c.value(op="read") == 1
        assert c.value(op="write") == 3
        assert c.total() == 4

    def test_label_order_irrelevant(self):
        c = Counter("x")
        c.inc(a=1, b=2)
        c.inc(b=2, a=1)
        assert c.value(a=1, b=2) == 2

    def test_negative_rejected(self):
        c = Counter("x")
        with pytest.raises(ReproError):
            c.inc(-1)

    def test_missing_series_is_zero(self):
        assert Counter("x").value(op="read") == 0.0


class TestGauge:
    def test_set_and_add(self):
        g = Gauge("depth")
        g.set(5)
        g.add(-2)
        assert g.value() == 3

    def test_missing_is_nan(self):
        assert math.isnan(Gauge("x").value())


class TestHistogram:
    def test_bucket_counts_cumulate_correctly(self):
        h = Histogram("lat", buckets=(0.1, 1.0, 10.0))
        for v in (0.05, 0.5, 0.5, 5.0, 50.0):
            h.observe(v)
        series = h.series()[()]
        assert series.bucket_counts == [1, 2, 1, 1]  # last is +Inf
        assert series.count == 5
        assert series.min == 0.05
        assert series.max == 50.0

    def test_mean_and_stddev_match_numpy(self):
        rng = np.random.default_rng(7)
        data = rng.exponential(0.3, size=500)
        h = Histogram("lat")
        for v in data:
            h.observe(v)
        series = h.series()[()]
        assert series.mean() == pytest.approx(float(np.mean(data)))
        assert series.stddev() == pytest.approx(float(np.std(data)), rel=1e-6)

    def test_per_label_series(self):
        h = Histogram("lat")
        h.observe(1.0, op="read")
        h.observe(2.0, op="write")
        assert h.count(op="read") == 1
        assert h.sum(op="write") == 2.0

    def test_quantile_small_sample_exact(self):
        h = Histogram("lat")
        for v in (1.0, 2.0, 3.0):
            h.observe(v)
        assert h.quantile(0.5) == 2.0

    def test_empty_bucket_list_rejected(self):
        with pytest.raises(ReproError):
            Histogram("lat", buckets=())


class TestP2Quantile:
    def test_rejects_degenerate_q(self):
        with pytest.raises(ReproError):
            P2Quantile(0.0)
        with pytest.raises(ReproError):
            P2Quantile(1.0)

    def test_nan_before_observations(self):
        assert math.isnan(P2Quantile(0.5).value())

    @pytest.mark.parametrize("q", [0.5, 0.9, 0.99])
    def test_streaming_estimate_close_to_numpy(self, q):
        rng = np.random.default_rng(42)
        data = rng.exponential(1.0, size=5000)
        est = P2Quantile(q)
        for v in data:
            est.observe(v)
        exact = float(np.quantile(data, q))
        # P² is approximate; a few percent of the local scale is expected.
        assert est.value() == pytest.approx(exact, rel=0.05)


class TestRegistry:
    def test_idempotent_registration(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")

    def test_kind_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.counter("a")
        with pytest.raises(ReproError):
            reg.gauge("a")

    def test_iteration_sorted_by_name(self):
        reg = MetricsRegistry()
        reg.counter("b")
        reg.gauge("a")
        assert [m.name for m in reg] == ["a", "b"]
        assert len(reg) == 2
