"""TelemetrySnapshot.merged: the per-worker → campaign aggregation."""

import math

import numpy as np
import pytest

from repro.errors import ReproError
from repro.telemetry.recorder import Telemetry
from repro.telemetry.snapshot import TelemetrySnapshot


def _snap(telemetry, **meta):
    return TelemetrySnapshot.from_telemetry(telemetry, meta=meta)


class TestCounterAndAuditMerge:
    def test_counter_series_add(self):
        a, b = Telemetry(), Telemetry()
        a.metrics.counter("ops", "c").inc(3.0, op="read")
        a.metrics.counter("ops", "c").inc(1.0, op="write")
        b.metrics.counter("ops", "c").inc(4.0, op="read")
        merged = TelemetrySnapshot.merged([_snap(a), _snap(b)])
        assert merged.counter_value("ops", op="read") == 7.0
        assert merged.counter_value("ops", op="write") == 1.0
        assert merged.counter_value("ops") == 8.0

    def test_counter_only_in_one_snapshot(self):
        a, b = Telemetry(), Telemetry()
        a.metrics.counter("only_a", "c").inc(2.0)
        b.metrics.counter("only_b", "c").inc(5.0)
        merged = TelemetrySnapshot.merged([_snap(a), _snap(b)])
        assert merged.counter_value("only_a") == 2.0
        assert merged.counter_value("only_b") == 5.0

    def test_audit_totals_add_exactly(self):
        a, b = Telemetry(), Telemetry()
        a.audit.record(op="read", reason="granted", time=0.0, site=0, volume=100.0)
        a.audit.record(op="read", reason="no_quorum", time=0.0, site=1, volume=7.0)
        b.audit.record(op="read", reason="granted", time=0.0, site=0, volume=50.0)
        merged = TelemetrySnapshot.merged([_snap(a), _snap(b)])
        assert merged.audit_volume(reason="granted") == 150.0
        assert merged.audit_volume(reason="no_quorum") == 7.0
        assert merged.audit_availability() == pytest.approx(150.0 / 157.0)

    def test_audit_records_concatenate_and_overflow_adds(self):
        a, b = Telemetry(), Telemetry()
        a.audit.record(op="read", reason="granted", time=0.0, site=0)
        b.audit.record(op="write", reason="granted", time=1.0, site=1)
        sa, sb = _snap(a), _snap(b)
        sa.audit_overflow = 3
        sb.audit_overflow = 4
        merged = TelemetrySnapshot.merged([sa, sb])
        assert len(merged.audit_records) == 2
        assert merged.audit_overflow == 7

    def test_gauges_last_writer_wins(self):
        a, b = Telemetry(), Telemetry()
        a.metrics.gauge("depth", "g").set(1.0, worker=0)
        b.metrics.gauge("depth", "g").set(9.0, worker=0)
        merged = TelemetrySnapshot.merged([_snap(a), _snap(b)])
        assert merged.gauge_value("depth", worker=0) == 9.0


class TestHistogramMerge:
    def _observe(self, telemetry, values):
        for value in values:
            telemetry.metrics.histogram("lat", "h").observe(value, op="read")

    def test_moments_match_single_recorder(self):
        rng = np.random.default_rng(3)
        samples = rng.exponential(0.002, 2_000)
        reference = Telemetry()
        self._observe(reference, samples)
        shards = [Telemetry() for _ in range(4)]
        for i, value in enumerate(samples):
            self._observe(shards[i % 4], [value])
        merged = TelemetrySnapshot.merged([_snap(t) for t in shards])
        got = merged.histogram_series("lat")[0]
        want = _snap(reference).histogram_series("lat")[0]
        assert got["bucket_counts"] == want["bucket_counts"]
        assert got["count"] == want["count"]
        assert got["sum"] == pytest.approx(want["sum"], abs=1e-9)
        assert got["min"] == want["min"] and got["max"] == want["max"]
        assert got["mean"] == pytest.approx(want["mean"], abs=1e-12)
        assert got["stddev"] == pytest.approx(want["stddev"], abs=1e-9)

    def test_pooled_quantiles_are_sane(self):
        rng = np.random.default_rng(4)
        samples = rng.exponential(0.001, 2_000)
        shards = [Telemetry() for _ in range(3)]
        for i, value in enumerate(samples):
            self._observe(shards[i % 3], [value])
        merged = TelemetrySnapshot.merged([_snap(t) for t in shards])
        series = merged.histogram_series("lat")[0]
        estimates = [series["quantiles"][q] for q in ("0.5", "0.9", "0.99")]
        assert estimates == sorted(estimates)
        for q, estimate in zip((0.5, 0.9, 0.99), estimates):
            exact = float(np.quantile(samples, q))
            assert series["min"] <= estimate <= series["max"]
            # Bucket re-estimates are decade-resolution by construction.
            assert exact / 10 < estimate < exact * 10

    def test_single_nonempty_side_copies_p2_estimates_verbatim(self):
        a = Telemetry()
        self._observe(a, [0.001, 0.002, 0.003, 0.004, 0.005])
        empty = TelemetrySnapshot(meta={"created_at": 0.0})
        merged = TelemetrySnapshot.merged([_snap(a), empty])
        assert (merged.histogram_series("lat")[0]
                == _snap(a).histogram_series("lat")[0])

    def test_bucket_layout_mismatch_rejected(self):
        a, b = Telemetry(), Telemetry()
        a.metrics.histogram("h", "x", buckets=(1.0, 2.0)).observe(1.5)
        b.metrics.histogram("h", "x", buckets=(1.0, 5.0)).observe(1.5)
        with pytest.raises(ReproError):
            TelemetrySnapshot.merged([_snap(a), _snap(b)])


class TestMergeMechanics:
    def test_merge_of_zero_snapshots_rejected(self):
        with pytest.raises(ReproError):
            TelemetrySnapshot.merged([])

    def test_spans_concatenate(self):
        a, b = Telemetry(), Telemetry()
        with a.spans.span("alpha"):
            pass
        with b.spans.span("beta"):
            pass
        merged = TelemetrySnapshot.merged([_snap(a), _snap(b)])
        names = [span["name"] for span in merged.spans]
        assert "alpha" in names and "beta" in names

    def test_meta_counts_sources(self):
        snaps = [_snap(Telemetry()) for _ in range(3)]
        merged = TelemetrySnapshot.merged(snaps, meta={"mode": "test"})
        assert merged.meta["merged_from"] == 3
        assert merged.meta["mode"] == "test"
        assert merged.meta["created_at"] >= snaps[0].meta["created_at"]

    def test_pairwise_merge_wrapper(self):
        a, b = Telemetry(), Telemetry()
        a.metrics.counter("n", "c").inc(1.0)
        b.metrics.counter("n", "c").inc(2.0)
        merged = _snap(a).merge(_snap(b))
        assert merged.counter_value("n") == 3.0

    def test_merged_snapshot_round_trips_through_records(self):
        a, b = Telemetry(), Telemetry()
        a.metrics.counter("n", "c").inc(1.0, op="read")
        a.metrics.histogram("lat", "h").observe(0.01)
        b.audit.record(op="read", reason="granted", time=0.0, site=0)
        merged = TelemetrySnapshot.merged([_snap(a), _snap(b)])
        round_tripped = TelemetrySnapshot.from_records(list(merged.to_records()))
        assert round_tripped.counter_value("n", op="read") == 1.0
        assert round_tripped.audit_totals == merged.audit_totals
