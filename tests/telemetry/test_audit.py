"""Unit tests for the quorum-decision audit log."""

import pytest

from repro.telemetry.audit import (
    GRANTED,
    NO_QUORUM,
    SITE_DOWN,
    STALE_ASSIGNMENT,
    AuditLog,
    AuditRecord,
)


def test_record_carries_decision_context():
    log = AuditLog()
    log.start_batch(4)
    log.record(1.5, "read", GRANTED, volume=2.0, site=3, component_votes=4,
               component_size=4, read_quorum=2, write_quorum=4,
               assignment_version=1)
    (rec,) = log.records
    assert rec.granted
    assert rec.batch_index == 4
    assert rec.component_votes == 4
    assert rec.read_quorum == 2 and rec.write_quorum == 4
    assert rec.assignment_version == 1


def test_zero_volume_ignored():
    log = AuditLog()
    log.record(0.0, "read", GRANTED, volume=0.0)
    assert len(log) == 0
    assert log.submitted() == 0.0


def test_totals_partition_submitted_volume():
    log = AuditLog()
    log.record(0.0, "read", GRANTED, volume=10.0)
    log.record(0.0, "read", SITE_DOWN, volume=2.0)
    log.record(0.0, "write", NO_QUORUM, volume=3.0)
    log.record(0.0, "write", STALE_ASSIGNMENT, volume=1.0)
    assert log.submitted() == 16.0
    assert log.granted() == 10.0
    assert log.denied() == 6.0
    assert log.denials_by_reason() == {
        SITE_DOWN: 2.0, NO_QUORUM: 3.0, STALE_ASSIGNMENT: 1.0,
    }
    assert sum(log.denials_by_reason().values()) == log.denied()
    assert log.availability() == pytest.approx(10.0 / 16.0)


def test_per_op_filters():
    log = AuditLog()
    log.record(0.0, "read", GRANTED, volume=4.0)
    log.record(0.0, "write", NO_QUORUM, volume=1.0)
    assert log.submitted("read") == 4.0
    assert log.denied("read") == 0.0
    assert log.denied("write") == 1.0


def test_cap_preserves_exact_totals():
    log = AuditLog(max_records=3)
    for _ in range(10):
        log.record(0.0, "read", GRANTED)
    assert len(log) == 3
    assert log.overflowed == 7
    # The reconciliation totals never saturate.
    assert log.submitted() == 10.0


def test_record_dict_round_trip():
    rec = AuditRecord(time=2.0, op="write", reason=NO_QUORUM, volume=3.0,
                      site=1, component_votes=2, component_size=2,
                      read_quorum=3, write_quorum=3, assignment_version=2,
                      batch_index=0)
    assert AuditRecord.from_dict(rec.to_dict()) == rec


def test_str_is_informative():
    rec = AuditRecord(time=1.0, op="read", reason=SITE_DOWN, volume=1.0, site=2)
    assert "site 2" in str(rec)
    assert SITE_DOWN in str(rec)
