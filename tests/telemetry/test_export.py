"""Exporter tests: Prometheus text, JSONL round trip, and the report."""

import pytest

from repro.errors import ReproError
from repro.telemetry.export import (
    load_snapshot_jsonl,
    render_report,
    to_jsonl_lines,
    to_prometheus,
    write_jsonl,
)
from repro.telemetry.recorder import Telemetry
from repro.telemetry.snapshot import TelemetrySnapshot


@pytest.fixture
def telemetry() -> Telemetry:
    tel = Telemetry()
    tel.counter("repro_test_ops_total", "operations").inc(3, op="read")
    tel.counter("repro_test_ops_total").inc(1, op="write")
    tel.gauge("repro_test_depth", "queue depth").set(7)
    hist = tel.histogram("repro_test_seconds", "latency")
    for v in (0.0005, 0.02, 0.3):
        hist.observe(v)
    with tel.span("unit.work", stage=1):
        pass
    tel.start_batch(0)
    tel.audit.record(1.0, "read", "granted", volume=5.0, site=0)
    tel.audit.record(2.0, "read", "no_quorum", volume=2.0, site=1)
    tel.audit.record(2.0, "write", "site_down", volume=1.0, site=2)
    return tel


@pytest.fixture
def snapshot(telemetry) -> TelemetrySnapshot:
    return telemetry.snapshot(meta={"protocol": "unit-test"})


class TestPrometheus:
    def test_counter_series(self, snapshot):
        text = to_prometheus(snapshot)
        assert "# TYPE repro_test_ops_total counter" in text
        assert 'repro_test_ops_total{op="read"} 3' in text
        assert 'repro_test_ops_total{op="write"} 1' in text

    def test_gauge(self, snapshot):
        assert "repro_test_depth 7" in to_prometheus(snapshot)

    def test_histogram_buckets_cumulative(self, snapshot):
        text = to_prometheus(snapshot)
        assert "# TYPE repro_test_seconds histogram" in text
        assert 'repro_test_seconds_bucket{le="+Inf"} 3' in text
        assert "repro_test_seconds_count 3" in text
        # Cumulative counts never decrease down the bucket list.
        counts = [
            int(line.rsplit(" ", 1)[1])
            for line in text.splitlines()
            if line.startswith("repro_test_seconds_bucket")
        ]
        assert counts == sorted(counts)

    def test_span_histogram_exported(self, snapshot):
        assert 'repro_span_seconds_count{name="unit.work"} 1' in to_prometheus(snapshot)


class TestJsonlRoundTrip:
    def test_round_trip_preserves_values(self, snapshot, tmp_path):
        path = write_jsonl(snapshot, tmp_path / "events.jsonl")
        loaded = load_snapshot_jsonl(path)
        assert loaded.meta["protocol"] == "unit-test"
        assert loaded.counter_value("repro_test_ops_total", op="read") == 3
        assert loaded.counter_value("repro_test_ops_total") == 4
        assert loaded.gauge_value("repro_test_depth") == 7
        (series,) = loaded.histogram_series("repro_test_seconds")
        assert series["count"] == 3
        assert loaded.audit_volume() == 8.0
        assert loaded.audit_volume(reason="granted") == 5.0
        assert loaded.denials_by_reason() == {"no_quorum": 2.0, "site_down": 1.0}
        assert [s["name"] for s in loaded.spans] == ["unit.work"]

    def test_missing_file_errors(self, tmp_path):
        with pytest.raises(ReproError, match="not found"):
            load_snapshot_jsonl(tmp_path / "absent.jsonl")

    def test_corrupt_line_reports_line_number(self, snapshot, tmp_path):
        path = tmp_path / "events.jsonl"
        lines = to_jsonl_lines(snapshot)
        lines.insert(1, "{not json")
        path.write_text("\n".join(lines))
        with pytest.raises(ReproError, match=":2:"):
            load_snapshot_jsonl(path)

    def test_unknown_schema_rejected(self, tmp_path):
        path = tmp_path / "events.jsonl"
        path.write_text('{"type": "meta", "schema": 99, "meta": {}}\n')
        with pytest.raises(ReproError, match="schema 99"):
            load_snapshot_jsonl(path)

    def test_stream_without_meta_rejected(self):
        with pytest.raises(ReproError, match="no meta"):
            TelemetrySnapshot.from_records([{"type": "counter", "name": "x",
                                             "help": "", "series": []}])

    def test_unknown_record_type_rejected(self):
        with pytest.raises(ReproError, match="unknown"):
            TelemetrySnapshot.from_records([{"type": "meta", "schema": 1,
                                             "meta": {}},
                                            {"type": "mystery"}])


class TestReport:
    def test_report_sections(self, snapshot):
        text = render_report(snapshot)
        assert "quorum-decision audit" in text
        assert "ACC = 0.6250" in text  # 5 granted / 8 submitted
        assert "no_quorum" in text and "site_down" in text
        assert "unit.work" in text
        assert "repro_test_ops_total" in text

    def test_denial_shares_sum_to_denied(self, snapshot):
        denied = snapshot.audit_volume() - snapshot.audit_volume(reason="granted")
        assert sum(snapshot.denials_by_reason().values()) == denied
