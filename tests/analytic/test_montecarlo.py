"""Monte-Carlo density estimation vs the exact oracle and closed forms."""

import numpy as np
import pytest

from repro.analytic.complete import complete_density
from repro.analytic.enumeration import enumerate_density_matrix
from repro.analytic.montecarlo import montecarlo_density, montecarlo_density_matrix
from repro.errors import SimulationError, TopologyError
from repro.topology.generators import fully_connected, grid, ring


class TestMonteCarloAccuracy:
    def test_converges_to_enumeration_on_ring(self):
        topo = ring(5)
        exact = enumerate_density_matrix(topo, 0.9, 0.8)
        approx = montecarlo_density_matrix(topo, 0.9, 0.8, n_samples=40_000, seed=0)
        assert np.abs(approx - exact).max() < 0.015

    def test_converges_to_closed_form_on_complete(self):
        n = 6
        exact = complete_density(n, 0.9, 0.7)
        approx = montecarlo_density(fully_connected(n), 0, 0.9, 0.7,
                                    n_samples=40_000, seed=1)
        assert np.abs(approx - exact).max() < 0.015

    def test_works_on_general_graph(self):
        """Grids have no closed form — the MC estimator is the only option."""
        topo = grid(3, 3)
        f = montecarlo_density(topo, 4, 0.9, 0.9, n_samples=4_000, seed=2)
        assert f.shape == (10,)
        assert f.sum() == pytest.approx(1.0)
        assert f[0] == pytest.approx(0.1, abs=0.02)  # centre site down prob


class TestMonteCarloMechanics:
    def test_deterministic_by_seed(self):
        topo = ring(6)
        a = montecarlo_density_matrix(topo, 0.9, 0.9, n_samples=500, seed=42)
        b = montecarlo_density_matrix(topo, 0.9, 0.9, n_samples=500, seed=42)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        topo = ring(6)
        a = montecarlo_density_matrix(topo, 0.9, 0.9, n_samples=500, seed=1)
        b = montecarlo_density_matrix(topo, 0.9, 0.9, n_samples=500, seed=2)
        assert not np.array_equal(a, b)

    def test_batching_covers_exact_sample_count(self):
        """An uneven batch split must still account for every sample."""
        topo = ring(5)
        a = montecarlo_density_matrix(topo, 0.9, 0.9, n_samples=301, seed=3, batch_size=7)
        # Row masses are counts/n_samples; each row must sum to exactly 1.
        np.testing.assert_allclose(a.sum(axis=1), 1.0, atol=1e-12)

    def test_rows_sum_to_one(self):
        matrix = montecarlo_density_matrix(ring(4), 0.8, 0.8, n_samples=200, seed=0)
        np.testing.assert_allclose(matrix.sum(axis=1), 1.0)

    def test_invalid_sample_count(self):
        with pytest.raises(SimulationError):
            montecarlo_density_matrix(ring(4), 0.9, 0.9, n_samples=0)

    def test_unknown_site(self):
        with pytest.raises(TopologyError):
            montecarlo_density(ring(4), 9, 0.9, 0.9, n_samples=10)

    def test_per_component_reliability_vectors(self):
        topo = ring(4)
        site_rel = np.array([1.0, 1.0, 0.5, 1.0])
        f = montecarlo_density(topo, 2, site_rel, 1.0, n_samples=8_000, seed=4)
        assert f[0] == pytest.approx(0.5, abs=0.03)


class TestBatchedLabelling:
    """The block-diagonal batched path vs the per-state reference loop."""

    def test_batched_counts_match_perstate_oracle(self):
        from repro.analytic.montecarlo import _chunk_counts, _perstate_counts
        from repro.rng import as_generator

        for topo in (ring(7), fully_connected(5), grid(3, 3)):
            site_rel = np.full(topo.n_sites, 0.85)
            link_rel = np.full(topo.n_links, 0.8)
            for seed in range(3):
                batched = _chunk_counts(
                    topo, site_rel, link_rel, 50, as_generator(seed))
                perstate = _perstate_counts(
                    topo, site_rel, link_rel, 50, as_generator(seed))
                np.testing.assert_array_equal(batched, perstate)

    def test_worker_count_does_not_change_the_estimate(self):
        """Sharding blocks across processes is bitwise invisible."""
        topo = ring(9)
        serial = montecarlo_density_matrix(
            topo, 0.9, 0.85, n_samples=1_000, seed=11, batch_size=128,
            n_workers=1)
        sharded = montecarlo_density_matrix(
            topo, 0.9, 0.85, n_samples=1_000, seed=11, batch_size=128,
            n_workers=4)
        np.testing.assert_array_equal(serial, sharded)

    def test_batch_size_does_not_change_sample_accounting(self):
        topo = ring(5)
        for batch_size in (1, 7, 64, 1_000):
            matrix = montecarlo_density_matrix(
                topo, 0.9, 0.9, n_samples=123, seed=5, batch_size=batch_size)
            np.testing.assert_allclose(matrix.sum(axis=1), 1.0, atol=1e-12)

    def test_invalid_worker_and_batch_arguments(self):
        with pytest.raises(SimulationError):
            montecarlo_density_matrix(ring(4), 0.9, 0.9, n_samples=10,
                                      batch_size=0)
        with pytest.raises(SimulationError):
            montecarlo_density_matrix(ring(4), 0.9, 0.9, n_samples=10,
                                      n_workers=0)
