"""Unit tests for the density representation helpers."""

import numpy as np
import pytest

from repro.analytic.density import (
    density_matrix_mean,
    normalize_density,
    validate_density,
)
from repro.errors import DensityError


class TestValidateDensity:
    def test_accepts_valid(self):
        f = np.array([0.25, 0.25, 0.5])
        out = validate_density(f, total_votes=2)
        assert out.dtype == np.float64

    def test_rejects_wrong_length(self):
        with pytest.raises(DensityError):
            validate_density(np.array([0.5, 0.5]), total_votes=2)

    def test_rejects_negative_mass(self):
        with pytest.raises(DensityError):
            validate_density(np.array([-0.1, 0.6, 0.5]))

    def test_rejects_non_unit_mass(self):
        with pytest.raises(DensityError):
            validate_density(np.array([0.3, 0.3]))

    def test_rejects_2d(self):
        with pytest.raises(DensityError):
            validate_density(np.ones((2, 2)) / 4)

    def test_tolerance_absorbs_float_noise(self):
        f = np.array([0.5, 0.5 + 1e-12])
        validate_density(f)  # should not raise


class TestNormalizeDensity:
    def test_rescales(self):
        out = normalize_density(np.array([1.0, 3.0]))
        np.testing.assert_allclose(out, [0.25, 0.75])

    def test_clips_tiny_negatives(self):
        out = normalize_density(np.array([-1e-15, 1.0]))
        assert out[0] == 0.0
        assert out.sum() == pytest.approx(1.0)

    def test_rejects_zero_mass(self):
        with pytest.raises(DensityError):
            normalize_density(np.zeros(3))

    def test_input_unmodified(self):
        f = np.array([1.0, 1.0])
        normalize_density(f)
        np.testing.assert_array_equal(f, [1.0, 1.0])


class TestDensityMatrixMean:
    def test_uniform_default(self):
        matrix = np.array([[1.0, 0.0], [0.0, 1.0]])
        np.testing.assert_allclose(density_matrix_mean(matrix), [0.5, 0.5])

    def test_explicit_weights(self):
        matrix = np.array([[1.0, 0.0], [0.0, 1.0]])
        np.testing.assert_allclose(
            density_matrix_mean(matrix, np.array([0.9, 0.1])), [0.9, 0.1]
        )

    def test_weights_must_sum_to_one(self):
        matrix = np.ones((2, 3)) / 3
        with pytest.raises(DensityError):
            density_matrix_mean(matrix, np.array([0.5, 0.6]))

    def test_negative_weights_rejected(self):
        matrix = np.ones((2, 3)) / 3
        with pytest.raises(DensityError):
            density_matrix_mean(matrix, np.array([-0.5, 1.5]))

    def test_wrong_weight_length(self):
        matrix = np.ones((2, 3)) / 3
        with pytest.raises(DensityError):
            density_matrix_mean(matrix, np.array([1.0]))

    def test_requires_2d(self):
        with pytest.raises(DensityError):
            density_matrix_mean(np.ones(3) / 3)
