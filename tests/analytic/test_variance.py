"""Variance-reduced Monte-Carlo estimators (DESIGN.md §13).

Three claims are load-bearing and tested here:

- **Unbiasedness**: stratified and importance-sampled density matrices
  converge to the closed forms / exhaustive enumeration the exact
  engines compute — no systematic tilt from the stratification or the
  proposal distribution.
- **Exact stratum accounting** (Hypothesis): the Poisson-Binomial
  stratum weights sum to 1 for any failure-probability vector, and
  strata outside the retained set contribute exactly zero mass.
- **Determinism**: both estimators are pure functions of their seed.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analytic.ring import ring_density_matrix
from repro.analytic.variance import (
    ImportanceStats,
    failure_count_weights,
    importance_density_matrix,
    stratified_density_matrix,
)
from repro.errors import DensityError, SimulationError
from repro.topology.generators import fully_connected, ring

#: Rows of every returned matrix are proper densities.


def _assert_density_matrix(matrix, topology):
    assert matrix.shape == (topology.n_sites, topology.total_votes + 1)
    assert (matrix >= 0.0).all()
    np.testing.assert_allclose(matrix.sum(axis=1), 1.0, atol=1e-12)


class TestFailureCountWeights:
    def test_matches_binomial_for_homogeneous_probs(self):
        from math import comb

        q = 0.2
        weights = failure_count_weights(np.full(5, q))
        expected = [comb(5, k) * q**k * (1 - q) ** (5 - k) for k in range(6)]
        np.testing.assert_allclose(weights, expected, atol=1e-15)

    def test_degenerate_components(self):
        weights = failure_count_weights(np.array([0.0, 1.0, 0.0]))
        np.testing.assert_array_equal(weights, [0.0, 1.0, 0.0, 0.0])

    @given(st.lists(st.floats(min_value=0.0, max_value=1.0), max_size=12))
    @settings(max_examples=200, deadline=None)
    def test_weights_sum_to_one(self, probs):
        weights = failure_count_weights(np.array(probs))
        assert weights.shape == (len(probs) + 1,)
        assert (weights >= 0.0).all()
        np.testing.assert_allclose(weights.sum(), 1.0, atol=1e-12)

    def test_rejects_bad_inputs(self):
        with pytest.raises(DensityError, match="1-D"):
            failure_count_weights(np.zeros((2, 2)))
        with pytest.raises(DensityError, match=r"\[0, 1\]"):
            failure_count_weights(np.array([0.5, 1.5]))


class TestStratifiedUnbiasedness:
    @pytest.mark.parametrize("allocation", ["proportional", "neyman"])
    def test_converges_to_ring_closed_form(self, allocation):
        topology = ring(7)
        exact = ring_density_matrix(topology, 0.9, 0.9)
        estimate = stratified_density_matrix(
            topology, 0.9, 0.9, n_samples=60_000, seed=5,
            allocation=allocation)
        _assert_density_matrix(estimate, topology)
        assert np.abs(estimate - exact).max() < 5e-3

    def test_converges_on_complete_graph(self):
        topology = fully_connected(5)
        from repro.analytic.enumeration import enumerate_density_matrix

        exact = enumerate_density_matrix(topology, 0.95, 0.95)
        estimate = stratified_density_matrix(
            topology, 0.95, 0.95, n_samples=60_000, seed=9)
        _assert_density_matrix(estimate, topology)
        assert np.abs(estimate - exact).max() < 5e-3

    def test_seed_deterministic(self):
        one = stratified_density_matrix(ring(7), 0.99, 0.99, n_samples=2_000,
                                        seed=3)
        two = stratified_density_matrix(ring(7), 0.99, 0.99, n_samples=2_000,
                                        seed=3)
        np.testing.assert_array_equal(one, two)

    def test_perfect_reliability_is_exact(self):
        # Only stratum 0 has mass: the estimate IS the deterministic
        # all-up evaluation, regardless of budget.
        topology = ring(7)
        estimate = stratified_density_matrix(topology, 1.0, 1.0,
                                             n_samples=100, seed=0)
        expected = np.zeros((7, topology.total_votes + 1))
        expected[:, topology.total_votes] = 1.0
        np.testing.assert_allclose(estimate, expected, atol=1e-12)

    def test_rejects_bad_args(self):
        with pytest.raises(SimulationError):
            stratified_density_matrix(ring(7), 0.9, 0.9, n_samples=0)
        with pytest.raises(SimulationError):
            stratified_density_matrix(ring(7), 0.9, 0.9,
                                      allocation="uniformly-wrong")


class TestStratificationPlan:
    def test_plan_reports_budget_and_mass(self):
        matrix, plan = stratified_density_matrix(
            ring(7), 0.99, 0.99, n_samples=4_000, seed=1, return_plan=True)
        _assert_density_matrix(matrix, ring(7))
        np.testing.assert_allclose(plan.weights.sum(), 1.0, atol=1e-12)
        assert plan.retained_mass > 0.999
        assert 0 in plan.exact_strata  # all-up handled deterministically
        assert plan.sampled_states <= 4_000
        assert all(count > 0 for count in plan.allocations.values())

    @given(
        p=st.floats(min_value=0.5, max_value=0.999),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=20, deadline=None)
    def test_dropped_strata_contribute_exactly_zero(self, p, seed):
        topology = ring(5)
        matrix, plan = stratified_density_matrix(
            topology, p, p, n_samples=500, seed=seed, return_plan=True)
        _assert_density_matrix(matrix, topology)
        covered = set(plan.exact_strata) | set(plan.allocations)
        m = plan.weights.shape[0] - 1
        dropped_mass = sum(
            plan.weights[k] for k in range(m + 1) if k not in covered)
        np.testing.assert_allclose(
            plan.retained_mass + dropped_mass, 1.0, atol=1e-9)


class TestImportanceSampling:
    def test_converges_to_ring_closed_form_rare_event(self):
        topology = ring(7)
        exact = ring_density_matrix(topology, 0.999, 0.999)
        estimate = importance_density_matrix(
            topology, 0.999, 0.999, n_samples=60_000, seed=5)
        _assert_density_matrix(estimate, topology)
        assert np.abs(estimate - exact).max() < 5e-3

    def test_beats_plain_mc_in_rare_regime(self):
        from repro.analytic.montecarlo import montecarlo_density_matrix

        topology = ring(7)
        exact = ring_density_matrix(topology, 0.999, 0.999)
        plain_err = np.abs(
            montecarlo_density_matrix(topology, 0.999, 0.999,
                                      n_samples=4_000, seed=2) - exact).max()
        is_err = np.abs(
            importance_density_matrix(topology, 0.999, 0.999,
                                      n_samples=4_000, seed=2) - exact).max()
        assert is_err < plain_err

    def test_seed_deterministic(self):
        one = importance_density_matrix(ring(7), 0.999, 0.999,
                                        n_samples=2_000, seed=3)
        two = importance_density_matrix(ring(7), 0.999, 0.999,
                                        n_samples=2_000, seed=3)
        np.testing.assert_array_equal(one, two)

    def test_stats_bound_the_weights(self):
        _, stats = importance_density_matrix(
            ring(7), 0.999, 0.999, n_samples=4_000, seed=1,
            return_stats=True)
        assert isinstance(stats, ImportanceStats)
        assert stats.n_samples == 4_000
        assert 0 < stats.effective_samples <= stats.n_samples
        # Defensive mixture bounds every weight by 1/lambda.
        assert stats.max_weight <= 1.0 / 0.25 + 1e-12
        assert stats.mean_weight == pytest.approx(1.0, rel=0.2)

    def test_rejects_bad_args(self):
        with pytest.raises(SimulationError):
            importance_density_matrix(ring(7), 0.999, 0.999, n_samples=0)
        with pytest.raises(SimulationError):
            importance_density_matrix(ring(7), 0.999, 0.999, mixture=0.0)
