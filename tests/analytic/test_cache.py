"""Tests for the cross-layer density cache and the growable Rel tables."""

import numpy as np
import pytest

from repro.analytic import cache as density_cache
from repro.analytic import closed_form_density
from repro.analytic.cache import DensityCache
from repro.analytic.enumeration import enumerate_density_matrix
from repro.topology.generators import ring


@pytest.fixture(autouse=True)
def _fresh_cache():
    density_cache.get_cache().clear()
    yield
    density_cache.get_cache().clear()


class TestDensityCache:
    def test_second_call_hits(self):
        first = closed_form_density("ring", 6, 0.9, 0.9)
        second = closed_form_density("ring", 6, 0.9, 0.9)
        assert np.array_equal(first, second)
        stats = density_cache.stats()
        assert stats.hits == 1
        assert stats.misses == 1
        assert stats.entries == 1

    def test_distinct_points_do_not_collide(self):
        a = closed_form_density("ring", 6, 0.9, 0.9)
        b = closed_form_density("ring", 6, 0.95, 0.95)
        c = closed_form_density("complete", 6, 0.9, 0.9)
        assert not np.array_equal(a, b)
        assert not np.array_equal(a, c)
        assert density_cache.stats().misses == 3

    def test_quantization_shares_entries(self):
        rel = 0.9
        jittered = rel + 1e-15  # below QUANTIZE_DECIMALS resolution
        closed_form_density("ring", 6, rel, rel)
        closed_form_density("ring", 6, jittered, jittered)
        assert density_cache.stats().hits == 1

    def test_caller_mutation_cannot_poison(self):
        first = closed_form_density("ring", 6, 0.9, 0.9)
        first[0] = 42.0
        second = closed_form_density("ring", 6, 0.9, 0.9)
        assert second[0] != 42.0

    def test_enumeration_layer_and_row_keys(self):
        topo = ring(4)
        full = enumerate_density_matrix(topo, 0.9, 0.8)
        again = enumerate_density_matrix(topo, 0.9, 0.8)
        assert np.array_equal(full, again)
        row = enumerate_density_matrix(topo, 0.9, 0.8, site=1)
        stats = density_cache.stats()
        # Full matrix hit once; the single-row request is its own key.
        assert stats.by_layer["enumeration"] == (1, 2)
        assert np.array_equal(row, full[1])

    def test_votes_change_the_key(self):
        base = enumerate_density_matrix(ring(4), 0.9, 0.8)
        weighted = enumerate_density_matrix(
            ring(4, votes=[2, 1, 1, 1]), 0.9, 0.8
        )
        assert density_cache.stats().misses == 2
        assert base.shape != weighted.shape

    def test_env_knob_disables(self, monkeypatch):
        monkeypatch.setenv(density_cache.ENV_KNOB, "0")
        assert not density_cache.enabled()
        closed_form_density("ring", 6, 0.9, 0.9)
        closed_form_density("ring", 6, 0.9, 0.9)
        stats = density_cache.stats()
        assert stats.hits == 0
        assert stats.misses == 0
        assert stats.entries == 0

    def test_disabled_context_manager(self):
        with density_cache.disabled():
            assert not density_cache.enabled()
            closed_form_density("ring", 6, 0.9, 0.9)
        assert density_cache.enabled()
        assert density_cache.stats().entries == 0

    def test_lru_eviction_is_bounded(self):
        small = DensityCache(max_entries=2)
        for i in range(4):
            small.put("closed_form", ("k", i), np.array([float(i)]))
        assert len(small._store) == 2
        assert small.get("closed_form", ("k", 0)) is None
        assert small.get("closed_form", ("k", 3)) is not None

    def test_hit_rate(self):
        closed_form_density("ring", 6, 0.9, 0.9)
        closed_form_density("ring", 6, 0.9, 0.9)
        closed_form_density("ring", 6, 0.9, 0.9)
        stats = density_cache.stats()
        assert stats.hit_rate == pytest.approx(2 / 3)

    def test_telemetry_counters(self):
        from repro.telemetry.recorder import Telemetry, use

        tel = Telemetry()
        with use(tel):
            closed_form_density("ring", 6, 0.9, 0.9)
            closed_form_density("ring", 6, 0.9, 0.9)
        snapshot = tel.snapshot()
        assert snapshot.counter_value(
            "repro_density_cache_misses_total", layer="closed_form"
        ) == 1.0
        assert snapshot.counter_value(
            "repro_density_cache_hits_total", layer="closed_form"
        ) == 1.0

    def test_sweep_shares_closed_form_entries(self):
        from repro.experiments.sweeps import reliability_sweep

        closed_form_density("ring", 6, 0.9, 0.9)
        reliability_sweep("ring", 6, 0.8, [0.9])
        assert density_cache.stats().hits >= 1


class TestGrowableRelTables:
    def test_extension_is_bitwise_identical(self):
        from repro.analytic.rel import _RAW_TABLES, rel_table

        _RAW_TABLES.clear()
        fresh = rel_table(24, 0.93).copy()
        _RAW_TABLES.clear()
        rel_table(5, 0.93)
        rel_table(13, 0.93)  # extends 5 -> 13
        extended = rel_table(24, 0.93)  # extends 13 -> 24
        assert np.array_equal(fresh, extended)
        _RAW_TABLES.clear()

    def test_larger_request_reuses_prefix(self):
        from repro.analytic.rel import _RAW_TABLES, rel_table

        _RAW_TABLES.clear()
        small = rel_table(6, 0.9).copy()
        big = rel_table(12, 0.9)
        assert np.array_equal(small, big[:7])
        assert len(_RAW_TABLES) == 1  # one growable table, not one per m_max
        _RAW_TABLES.clear()

    def test_zero_size_bootstrap(self):
        from repro.analytic.rel import _RAW_TABLES, rel_table

        _RAW_TABLES.clear()
        assert rel_table(0, 0.7).tolist() == [1.0]
        grown = rel_table(3, 0.7)
        assert grown[0] == 1.0 and grown[1] == 1.0
        _RAW_TABLES.clear()
