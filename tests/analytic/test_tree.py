"""Tests for the polynomial-time tree density against the exact oracle."""

import numpy as np
import pytest

from repro.analytic.bus import bus_density
from repro.analytic.enumeration import enumerate_density, enumerate_density_matrix
from repro.analytic.tree import tree_density, tree_density_matrix
from repro.errors import DensityError, TopologyError
from repro.topology.generators import bus, random_tree, ring, star
from repro.topology.model import Topology


class TestAgainstOracle:
    @pytest.mark.parametrize("seed", range(5))
    @pytest.mark.parametrize("p,r", [(0.9, 0.8), (0.96, 0.96), (0.5, 0.6)])
    def test_random_trees_match_enumeration(self, seed, p, r):
        topo = random_tree(7, seed=seed)
        expected = enumerate_density_matrix(topo, p, r)
        got = tree_density_matrix(topo, p, r)
        np.testing.assert_allclose(got, expected, atol=1e-12)

    def test_path_graph_by_hand(self):
        # Path 0-1-2 with p=1: f_1 depends only on link states.
        topo = Topology(3, [(0, 1), (1, 2)])
        r = 0.7
        f = tree_density(topo, 1, 1.0, r)
        assert f[1] == pytest.approx((1 - r) ** 2)
        assert f[2] == pytest.approx(2 * r * (1 - r))
        assert f[3] == pytest.approx(r * r)

    def test_star_center_vs_leaf(self):
        topo = star(6, hub=0)
        p, r = 0.9, 0.8
        hub = tree_density(topo, 0, p, r)
        leaf = tree_density(topo, 3, p, r)
        np.testing.assert_allclose(hub, enumerate_density(topo, 0, p, r), atol=1e-12)
        np.testing.assert_allclose(leaf, enumerate_density(topo, 3, p, r), atol=1e-12)
        # A leaf is cut off by one link; the hub by five: leaf singleton
        # mass exceeds the hub's.
        assert leaf[1] > hub[1]

    def test_heterogeneous_reliabilities(self):
        topo = random_tree(6, seed=3)
        rng = np.random.default_rng(0)
        p = rng.uniform(0.5, 1.0, size=6)
        r = rng.uniform(0.5, 1.0, size=5)
        expected = enumerate_density_matrix(topo, p, r)
        got = tree_density_matrix(topo, p, r)
        np.testing.assert_allclose(got, expected, atol=1e-12)

    def test_weighted_votes(self):
        topo = Topology(4, [(0, 1), (1, 2), (1, 3)], votes=[2, 1, 3, 1])
        expected = enumerate_density_matrix(topo, 0.85, 0.75)
        got = tree_density_matrix(topo, 0.85, 0.75)
        np.testing.assert_allclose(got, expected, atol=1e-12)

    def test_bus_encoding_cross_check(self):
        """tree_density on the star-through-a-hub encoding reproduces the
        independent-sites bus closed form — two derivations, one answer."""
        n, p, r = 6, 0.9, 0.8
        topo = bus(n)  # hub = site n with zero votes
        site_rel = np.full(n + 1, p)
        site_rel[n] = r
        f = tree_density(topo, 0, site_rel, 1.0)
        expected = bus_density(n, p, r, sites_need_bus=False)
        np.testing.assert_allclose(f, expected, atol=1e-12)


class TestScalability:
    def test_large_tree_is_fast_and_valid(self):
        topo = random_tree(300, seed=1)
        f = tree_density(topo, 0, 0.96, 0.96)
        assert f.shape == (301,)
        assert f.sum() == pytest.approx(1.0)
        assert f[0] == pytest.approx(0.04)

    def test_deep_path_no_recursion_limit(self):
        n = 2000
        topo = Topology(n, [(i, i + 1) for i in range(n - 1)])
        f = tree_density(topo, 0, 0.99, 0.99)
        assert f.sum() == pytest.approx(1.0)


class TestValidation:
    def test_rejects_non_tree(self):
        with pytest.raises(TopologyError):
            tree_density(ring(5), 0, 0.9, 0.9)
        disconnected = Topology(4, [(0, 1), (2, 3)])
        with pytest.raises(TopologyError):
            tree_density(disconnected, 0, 0.9, 0.9)

    def test_rejects_unknown_site(self):
        with pytest.raises(TopologyError):
            tree_density(random_tree(5, seed=0), 9, 0.9, 0.9)

    def test_rejects_bad_reliability(self):
        with pytest.raises(DensityError):
            tree_density(random_tree(5, seed=0), 0, 1.2, 0.9)

    def test_single_site_tree(self):
        topo = Topology(1, [])
        f = tree_density(topo, 0, 0.9, 1.0)
        assert f[0] == pytest.approx(0.1)
        assert f[1] == pytest.approx(0.9)
