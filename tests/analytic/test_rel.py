"""Unit tests for Gilbert's Rel(m, r) recursion."""

import itertools

import numpy as np
import pytest

from repro.analytic.rel import all_connected_probability, rel, rel_table
from repro.errors import DensityError


def rel_bruteforce(m: int, r: float) -> float:
    """Exact Rel by enumerating all link states of K_m (tests only)."""
    pairs = list(itertools.combinations(range(m), 2))
    total = 0.0
    for mask in itertools.product([0, 1], repeat=len(pairs)):
        prob = 1.0
        parent = list(range(m))

        def find(x):
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        for up, (a, b) in zip(mask, pairs):
            prob *= r if up else (1 - r)
            if up:
                parent[find(a)] = find(b)
        if len({find(i) for i in range(m)}) == 1:
            total += prob
    return total


class TestRelBaseCases:
    def test_trivial_sizes(self):
        assert rel(0, 0.5) == 1.0
        assert rel(1, 0.5) == 1.0

    def test_two_sites_is_link_probability(self):
        assert rel(2, 0.37) == pytest.approx(0.37)

    def test_perfect_links(self):
        for m in range(1, 8):
            assert rel(m, 1.0) == pytest.approx(1.0)

    def test_no_links(self):
        assert rel(2, 0.0) == 0.0
        assert rel(5, 0.0) == 0.0

    def test_negative_m_rejected(self):
        with pytest.raises(DensityError):
            rel(-1, 0.5)

    def test_bad_reliability_rejected(self):
        with pytest.raises(DensityError):
            rel(3, 1.5)


class TestRelAgainstBruteForce:
    @pytest.mark.parametrize("m", [2, 3, 4, 5])
    @pytest.mark.parametrize("r", [0.2, 0.5, 0.9])
    def test_matches_enumeration(self, m, r):
        assert rel(m, r) == pytest.approx(rel_bruteforce(m, r), abs=1e-12)

    def test_three_sites_closed_form(self):
        # P(K3 connected) = r^3 + 3 r^2 (1-r)
        r = 0.7
        assert rel(3, r) == pytest.approx(r**3 + 3 * r**2 * (1 - r))


class TestRelProperties:
    def test_monotone_in_r(self):
        values = [rel(6, r) for r in np.linspace(0.05, 0.95, 10)]
        assert all(b >= a - 1e-12 for a, b in zip(values, values[1:]))

    def test_bounded(self):
        table = rel_table(40, 0.3)
        assert ((0.0 <= table) & (table <= 1.0)).all()

    def test_large_m_high_r_tends_to_one(self):
        # With r = .96 a 101-clique is connected almost surely.
        assert rel(101, 0.96) > 0.999

    def test_table_consistent_with_scalar(self):
        table = rel_table(10, 0.6)
        for m in range(11):
            assert table[m] == pytest.approx(rel(m, 0.6))

    def test_alias(self):
        assert all_connected_probability(4, 0.8) == rel(4, 0.8)
