"""Unit tests for the exhaustive enumeration oracle itself."""

import numpy as np
import pytest

from repro.analytic.enumeration import enumerate_density, enumerate_density_matrix
from repro.errors import DensityError, TopologyError
from repro.topology.generators import ring
from repro.topology.model import Topology


class TestEnumerationBasics:
    def test_rows_are_densities(self):
        matrix = enumerate_density_matrix(ring(4), 0.8, 0.7)
        assert matrix.shape == (4, 5)
        np.testing.assert_allclose(matrix.sum(axis=1), 1.0, atol=1e-12)
        assert (matrix >= 0).all()

    def test_two_site_line_by_hand(self):
        # Sites a-b joined by one link; site rel p, link rel r.
        p, r = 0.9, 0.5
        topo = Topology(2, [(0, 1)])
        f = enumerate_density(topo, 0, p, r)
        assert f[0] == pytest.approx(1 - p)
        assert f[2] == pytest.approx(p * p * r)          # both up, link up
        assert f[1] == pytest.approx(p * (1 - p) + p * p * (1 - r))

    def test_weighted_votes(self):
        topo = Topology(2, [(0, 1)], votes=[2, 3])
        f0 = enumerate_density(topo, 0, 1.0, 0.5)
        # Site 0 alone: 2 votes; joined: 5 votes.
        assert f0[2] == pytest.approx(0.5)
        assert f0[5] == pytest.approx(0.5)

    def test_pinned_components_skip_enumeration(self):
        # Perfect links: density of a 3-ring reduces to site states only.
        topo = ring(3)
        f = enumerate_density(topo, 0, 0.8, 1.0)
        # Site 0 in component of v votes = number of up sites (if 0 up).
        assert f[0] == pytest.approx(0.2)
        assert f[3] == pytest.approx(0.8 * 0.8 * 0.8)

    def test_zero_reliability_site(self):
        topo = Topology(2, [(0, 1)])
        f = enumerate_density(topo, 0, np.array([0.0, 1.0]), 1.0)
        assert f[0] == pytest.approx(1.0)

    def test_per_component_reliabilities(self):
        topo = Topology(3, [(0, 1), (1, 2)])
        matrix = enumerate_density_matrix(
            topo, np.array([1.0, 0.5, 1.0]), np.array([1.0, 1.0])
        )
        # Site 1 down half the time: site 0 component is {0} or {0,1,2}.
        assert matrix[0][1] == pytest.approx(0.5)
        assert matrix[0][3] == pytest.approx(0.5)

    def test_safety_cap(self):
        topo = ring(20)  # 40 fallible components > cap
        with pytest.raises(DensityError):
            enumerate_density_matrix(topo, 0.9, 0.9)

    def test_unknown_site(self):
        with pytest.raises(TopologyError):
            enumerate_density(ring(3), 7, 0.9, 0.9)

    def test_bad_reliability_shape(self):
        with pytest.raises(DensityError):
            enumerate_density_matrix(ring(3), np.array([0.9, 0.9]), 0.9)
