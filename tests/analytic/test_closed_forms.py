"""Closed-form densities validated against the exact enumeration oracle.

These are the library's strongest correctness tests: three independent
derivations of f_i (closed form, exhaustive enumeration, and — in
test_montecarlo — sampling) must agree.
"""

import numpy as np
import pytest

from repro.analytic.bus import bus_density
from repro.analytic.complete import complete_density, complete_density_matrix
from repro.analytic.enumeration import enumerate_density
from repro.analytic.ring import ring_density, ring_density_matrix
from repro.errors import DensityError, TopologyError
from repro.topology.generators import bus, fully_connected, ring


class TestRingDensity:
    @pytest.mark.parametrize("p,r", [(0.9, 0.8), (0.96, 0.96), (0.5, 0.7), (1.0, 0.6), (0.7, 1.0)])
    def test_matches_enumeration(self, p, r):
        n = 5
        expected = enumerate_density(ring(n), 0, p, r)
        got = ring_density(n, p, r)
        np.testing.assert_allclose(got, expected, atol=1e-12)

    def test_symmetry_across_sites(self):
        topo = ring(5)
        matrix = np.stack([enumerate_density(topo, s, 0.8, 0.9) for s in range(5)])
        assert np.allclose(matrix, matrix[0])

    def test_mass_sums_to_one(self):
        assert ring_density(51, 0.96, 0.96).sum() == pytest.approx(1.0)

    def test_down_probability(self):
        assert ring_density(7, 0.9, 0.5)[0] == pytest.approx(0.1)

    def test_perfect_components_all_mass_at_n(self):
        f = ring_density(9, 1.0, 1.0)
        assert f[9] == pytest.approx(1.0)

    def test_minimum_ring_size(self):
        with pytest.raises(TopologyError):
            ring_density(2, 0.9, 0.9)

    def test_bad_reliability(self):
        with pytest.raises(DensityError):
            ring_density(5, 1.1, 0.9)

    def test_matrix_requires_ring(self):
        with pytest.raises(TopologyError):
            ring_density_matrix(fully_connected(5), 0.9, 0.9)

    def test_matrix_shape(self):
        m = ring_density_matrix(ring(6), 0.9, 0.9)
        assert m.shape == (6, 7)
        assert np.allclose(m, m[0])


class TestCompleteDensity:
    @pytest.mark.parametrize("p,r", [(0.9, 0.8), (0.96, 0.96), (0.6, 0.4), (1.0, 0.5), (0.8, 1.0)])
    @pytest.mark.parametrize("n", [2, 3, 4])
    def test_matches_enumeration(self, n, p, r):
        expected = enumerate_density(fully_connected(n), 0, p, r)
        got = complete_density(n, p, r)
        np.testing.assert_allclose(got, expected, atol=1e-9)

    def test_single_site(self):
        f = complete_density(1, 0.9, 0.5)
        assert f[0] == pytest.approx(0.1)
        assert f[1] == pytest.approx(0.9)

    def test_mass_sums_to_one_large(self):
        assert complete_density(101, 0.96, 0.96).sum() == pytest.approx(1.0)

    def test_reliable_network_concentrates_high(self):
        f = complete_density(50, 0.96, 0.96)
        # Nearly all conditional-up mass at large components.
        assert f[45:].sum() > 0.9

    def test_unreliable_links_fragment(self):
        f = complete_density(10, 0.95, 0.05)
        assert f[1] > f[9]

    def test_matrix_requires_complete(self):
        with pytest.raises(TopologyError):
            complete_density_matrix(ring(5), 0.9, 0.9)


class TestBusDensity:
    def _bus_oracle(self, n, p, r, sites_need_bus):
        """Enumerate the star-with-perfect-spokes encoding of the bus."""
        topo = bus(n)  # hub = site n, zero votes
        site_rel = np.full(n + 1, p)
        site_rel[n] = r  # the hub plays the bus
        link_rel = np.ones(topo.n_links)  # perfect spokes
        from repro.analytic.enumeration import enumerate_density_matrix

        matrix = enumerate_density_matrix(topo, site_rel, link_rel)
        f = matrix[0].copy()
        if sites_need_bus:
            # Architecture: a site with the bus down counts as size 0.
            # In the star encoding an up site with the hub down shows as a
            # singleton of 1 vote; move that conditional mass to v=0? No —
            # with sites_need_bus the *site itself* stops functioning, so
            # the singleton mass belongs at v=0.
            # Singleton mass from "site up, bus down" = p*(1-r).
            f[0] += p * (1.0 - r)
            f[1] -= p * (1.0 - r)
        return f

    @pytest.mark.parametrize("p,r", [(0.9, 0.8), (0.96, 0.96), (0.5, 0.5)])
    @pytest.mark.parametrize("n", [1, 3, 5])
    def test_variant_independent_sites_matches_star_encoding(self, n, p, r):
        expected = self._bus_oracle(n, p, r, sites_need_bus=False)
        got = bus_density(n, p, r, sites_need_bus=False)
        np.testing.assert_allclose(got, expected, atol=1e-12)

    @pytest.mark.parametrize("p,r", [(0.9, 0.8), (0.96, 0.96)])
    def test_variant_dependent_sites_matches_star_encoding(self, p, r):
        n = 4
        expected = self._bus_oracle(n, p, r, sites_need_bus=True)
        got = bus_density(n, p, r, sites_need_bus=True)
        np.testing.assert_allclose(got, expected, atol=1e-12)

    def test_dependent_variant_paper_formula(self):
        # f_i(v) = C(n-1, v-1) r p^v (1-p)^{n-v}
        n, p, r = 5, 0.9, 0.7
        f = bus_density(n, p, r, sites_need_bus=True)
        from scipy.special import comb

        for v in range(1, n + 1):
            assert f[v] == pytest.approx(comb(n - 1, v - 1) * r * p**v * (1 - p) ** (n - v))

    def test_independent_variant_extra_singleton_mass(self):
        n, p, r = 4, 0.9, 0.7
        dependent = bus_density(n, p, r, sites_need_bus=True)
        independent = bus_density(n, p, r, sites_need_bus=False)
        assert independent[1] == pytest.approx(dependent[1] + p * (1 - r))

    def test_mass_sums_to_one(self):
        for flag in (True, False):
            assert bus_density(9, 0.9, 0.8, sites_need_bus=flag).sum() == pytest.approx(1.0)

    def test_bad_args(self):
        with pytest.raises(TopologyError):
            bus_density(0, 0.9, 0.9)
        with pytest.raises(DensityError):
            bus_density(3, 0.9, -0.1)
