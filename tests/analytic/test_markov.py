"""Tests for the joint-CTMC exact analysis of (dynamic) protocols."""

import numpy as np
import pytest

from repro.analytic.enumeration import enumerate_density_matrix
from repro.analytic.markov import (
    JointMarkovChain,
    dynamic_voting_key,
    static_protocol_key,
    stationary_availability,
)
from repro.errors import DensityError, SimulationError
from repro.protocols.dynamic_voting import DynamicVotingProtocol
from repro.protocols.majority import MajorityConsensusProtocol
from repro.protocols.quorum_consensus import QuorumConsensusProtocol
from repro.quorum.assignment import QuorumAssignment
from repro.quorum.availability import AvailabilityModel
from repro.topology.generators import fully_connected, ring
from repro.topology.model import Topology

MTTF, MTTR = 10.0, 1.0
RELIABILITY = MTTF / (MTTF + MTTR)


class TestStaticOracleAgreement:
    """For static protocols the CTMC must reproduce the enumeration oracle
    exactly — two wholly different computations of the same number."""

    @pytest.mark.parametrize("q_r", [1, 2])
    @pytest.mark.parametrize("alpha", [0.0, 0.5, 1.0])
    def test_matches_enumeration_on_ring(self, q_r, alpha):
        topo = ring(4)
        chain = JointMarkovChain(
            topo,
            lambda: QuorumConsensusProtocol(QuorumAssignment.from_read_quorum(4, q_r)),
            MTTF, MTTR, static_protocol_key,
        )
        matrix = enumerate_density_matrix(topo, RELIABILITY, RELIABILITY)
        model = AvailabilityModel.from_density_matrix(matrix)
        expected = float(model.availability(alpha, q_r))
        assert chain.availability(alpha) == pytest.approx(expected, abs=1e-10)

    def test_state_count_is_network_only_for_static(self):
        topo = ring(3)
        chain = JointMarkovChain(
            topo, lambda: MajorityConsensusProtocol(3),
            MTTF, MTTR, static_protocol_key,
        )
        assert chain.n_states == 2 ** (3 + 3)

    def test_network_marginal_is_product_measure(self):
        """The network marginal must factor into independent Bernoulli
        components with the stationary reliability."""
        topo = Topology(2, [(0, 1)])
        chain = JointMarkovChain(
            topo, lambda: MajorityConsensusProtocol(2),
            MTTF, MTTR, static_protocol_key,
        )
        marginal = chain.network_marginal()
        p = RELIABILITY
        for (site_up, link_up), prob in marginal.items():
            expected = 1.0
            for up in list(site_up) + list(link_up):
                expected *= p if up else (1 - p)
            assert prob == pytest.approx(expected, abs=1e-12)

    def test_infallible_components_reduce_space(self):
        topo = ring(3)
        chain = JointMarkovChain(
            topo, lambda: MajorityConsensusProtocol(3),
            MTTF, MTTR, static_protocol_key,
            fallible_links=np.zeros(3, dtype=bool),
        )
        assert chain.n_states == 2 ** 3


class TestDynamicVotingExact:
    @pytest.fixture(scope="class")
    def chain(self):
        topo = fully_connected(3)
        return JointMarkovChain(
            topo,
            lambda: DynamicVotingProtocol(3),
            MTTF, MTTR, dynamic_voting_key,
            fallible_links=np.zeros(3, dtype=bool),  # site failures only
        )

    def test_finite_joint_space(self, chain):
        # 8 network states x a handful of protocol states.
        assert 8 <= chain.n_states < 200

    def test_beats_static_majority_exactly(self, chain):
        """Dynamic voting weakly dominates majority consensus on ACC in
        this site-failure-only setting, with strict gain at some alpha."""
        topo = fully_connected(3)
        static = stationary_availability(
            topo, lambda: MajorityConsensusProtocol(3), 0.5, MTTF, MTTR,
            fallible_links=np.zeros(3, dtype=bool),
        )
        dynamic = chain.availability(0.5)
        assert dynamic >= static - 1e-12

    def test_survivability_ordering(self, chain):
        surv_r, surv_w = chain.survivability()
        assert surv_r == pytest.approx(surv_w)  # reads = writes here
        assert 0.5 < surv_w <= 1.0

    @pytest.mark.slow
    def test_exact_matches_simulation(self, chain):
        """The headline cross-check: the simulator's dynamic-voting ACC
        must converge to the CTMC's exact value."""
        from repro.simulation.config import SimulationConfig
        from repro.simulation.runner import run_simulation
        from repro.simulation.workload import AccessWorkload

        topo = fully_connected(3)
        cfg = SimulationConfig(
            topology=topo,
            workload=AccessWorkload.uniform(3, 0.5),
            mean_time_to_failure=MTTF,
            mean_time_to_repair=MTTR,
            warmup_accesses=200.0,
            accesses_per_batch=60_000.0,
            n_batches=2,
            initial_state="stationary",
            fallible_links=np.zeros(3, dtype=bool),
            seed=6,
        )
        result = run_simulation(cfg, DynamicVotingProtocol(3))
        exact = chain.availability(0.5)
        assert result.availability.mean == pytest.approx(exact, abs=0.02)


class TestValidation:
    def test_rejects_large_systems(self):
        with pytest.raises(DensityError):
            JointMarkovChain(
                ring(13), lambda: MajorityConsensusProtocol(13),
                MTTF, MTTR, static_protocol_key,
            )

    def test_rejects_bad_rates(self):
        with pytest.raises(SimulationError):
            JointMarkovChain(
                ring(3), lambda: MajorityConsensusProtocol(3),
                0.0, 1.0, static_protocol_key,
            )

    def test_alpha_validated(self):
        chain = JointMarkovChain(
            ring(3), lambda: MajorityConsensusProtocol(3),
            MTTF, MTTR, static_protocol_key,
            fallible_links=np.zeros(3, dtype=bool),
        )
        with pytest.raises(SimulationError):
            chain.availability(1.5)
