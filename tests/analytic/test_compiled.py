"""The compiled enumeration backend layer (DESIGN.md §15).

Three equality tiers, all green without numba installed:

- the pure-Python twin of the numba union-find chunk kernel is
  **bitwise** identical to the reference loop (it preserves the
  reference floating-point operation order; the JIT build compiles the
  same function body, so these tests pin the contract the JIT inherits);
- the vectorized collapse-DFS agrees with the reference to well inside
  the ≤1e-12 differential tier and is deterministic;
- the ``backend=`` kwarg / ``REPRO_ENUM_BACKEND`` knob routes to the
  right kernel, and the cap errors name the component count, the active
  backend, and the knob that raises the limit.

JIT-specific tests skip cleanly when numba is absent and run on the CI
leg that installs the ``[compiled]`` extra.
"""

import numpy as np
import pytest

from repro.analytic import cache as density_cache
from repro.analytic import compiled
from repro.analytic.enumeration import (
    ENV_BACKEND,
    MAX_COMPONENTS,
    MAX_COMPONENTS_COMPILED,
    _as_reliability_vector,
    _free_components,
    enumerate_density,
    enumerate_density_matrix,
    enumerate_density_matrix_reference,
    resolve_backend,
)
from repro.errors import DensityError
from repro.topology.generators import bus, fully_connected, ring, star

needs_numba = pytest.mark.skipif(
    not compiled.HAVE_NUMBA, reason="numba not installed ([compiled] extra)"
)


@pytest.fixture(autouse=True)
def _no_cache():
    with density_cache.disabled():
        yield


def _case_arrays(topo, p, r):
    site_rel = _as_reliability_vector(p, topo.n_sites, "site reliability")
    link_rel = _as_reliability_vector(r, topo.n_links, "link reliability")
    free_sites, free_links, n_free = _free_components(topo, site_rel, link_rel)
    return site_rel, link_rel, free_sites, free_links, n_free


def _bus_case(n_sites, p, r):
    topo = bus(n_sites)
    site_rel = np.concatenate([np.full(n_sites, p), [r]])
    link_rel = np.ones(topo.n_links)
    return topo, site_rel, link_rel


CASES = [
    pytest.param(ring(4), 0.8, 0.7, id="ring4"),
    pytest.param(ring(5), 0.96, 0.96, id="ring5"),
    pytest.param(fully_connected(4), 0.9, 0.6, id="complete4"),
    pytest.param(ring(4, votes=[2, 1, 1, 3]), 0.85, 0.75, id="ring4-weighted"),
]


class TestUnionFindTwin:
    """The chunk kernel's pure-Python build, bitwise vs the reference."""

    @pytest.mark.parametrize("topo,p,r", CASES)
    def test_bitwise_vs_reference(self, topo, p, r):
        ref = enumerate_density_matrix_reference(topo, p, r)
        site_rel, link_rel, fs, fl, nf = _case_arrays(topo, p, r)
        out = compiled.enumerate_compiled(
            topo, site_rel, link_rel, fs, fl, nf,
            chunk_size=97, site=None, use_jit=False,
        )
        assert np.array_equal(ref, out)

    def test_pinned_components_bitwise(self):
        topo = star(6, hub=0)
        p = np.array([1.0, 0.9, 0.0, 0.8, 1.0, 0.7])
        ref = enumerate_density_matrix_reference(topo, p, 0.85)
        site_rel, link_rel, fs, fl, nf = _case_arrays(topo, p, 0.85)
        out = compiled.enumerate_compiled(
            topo, site_rel, link_rel, fs, fl, nf,
            chunk_size=64, site=None, use_jit=False,
        )
        assert np.array_equal(ref, out)

    def test_bus_star_pinned_bitwise(self):
        topo, site_rel, link_rel = _bus_case(6, 0.9, 0.8)
        ref = enumerate_density_matrix_reference(topo, site_rel, link_rel)
        sr, lr, fs, fl, nf = _case_arrays(topo, site_rel, link_rel)
        out = compiled.enumerate_compiled(
            topo, sr, lr, fs, fl, nf, chunk_size=1000, site=None,
            use_jit=False,
        )
        assert np.array_equal(ref, out)

    @pytest.mark.parametrize("chunk_size", [1, 3, 64, 100_000])
    def test_chunk_size_never_changes_bits(self, chunk_size):
        topo = ring(5)
        ref = enumerate_density_matrix_reference(topo, 0.9, 0.8)
        site_rel, link_rel, fs, fl, nf = _case_arrays(topo, 0.9, 0.8)
        out = compiled.enumerate_compiled(
            topo, site_rel, link_rel, fs, fl, nf,
            chunk_size=chunk_size, site=None, use_jit=False,
        )
        assert np.array_equal(ref, out)

    def test_single_row_bitwise(self):
        topo = ring(5)
        ref = enumerate_density_matrix_reference(topo, 0.9, 0.8)
        site_rel, link_rel, fs, fl, nf = _case_arrays(topo, 0.9, 0.8)
        for site in range(topo.n_sites):
            row = compiled.enumerate_compiled(
                topo, site_rel, link_rel, fs, fl, nf,
                chunk_size=128, site=site, use_jit=False,
            )
            assert np.array_equal(ref[site], row)


class TestVectorizedCollapseDFS:
    """Regrouped accumulation: ≤1e-12 tier, deterministic, exact caps."""

    @pytest.mark.parametrize("topo,p,r", CASES)
    def test_matches_reference_within_tier(self, topo, p, r):
        ref = enumerate_density_matrix_reference(topo, p, r)
        vec = enumerate_density_matrix(topo, p, r, backend="vectorized")
        assert np.abs(vec - ref).max() <= 1e-13
        np.testing.assert_allclose(vec.sum(axis=1), 1.0, atol=1e-12)

    def test_pinned_sites_and_links(self):
        topo = star(6, hub=0)
        p = np.array([1.0, 0.9, 0.0, 0.8, 1.0, 0.7])
        ref = enumerate_density_matrix_reference(topo, p, 0.85)
        vec = enumerate_density_matrix(topo, p, 0.85, backend="vectorized")
        assert np.abs(vec - ref).max() <= 1e-13

    def test_bus_star_pinned(self):
        topo, site_rel, link_rel = _bus_case(6, 0.9, 0.8)
        ref = enumerate_density_matrix_reference(topo, site_rel, link_rel)
        vec = enumerate_density_matrix(topo, site_rel, link_rel,
                                       backend="vectorized")
        assert np.abs(vec - ref).max() <= 1e-13

    def test_deterministic_for_fixed_row_cap(self):
        topo = ring(7)
        one = enumerate_density_matrix(topo, 0.9, 0.8, backend="vectorized")
        two = enumerate_density_matrix(topo, 0.9, 0.8, backend="vectorized")
        assert np.array_equal(one, two)

    @pytest.mark.parametrize("chunk_size", [1, 64, 500, 100_000])
    def test_row_cap_invariance(self, chunk_size):
        # The DFS split points move with the cap, which may regroup the
        # accumulation differently — results agree within the tier (and
        # tiny caps exercise the stack-splitting path).
        topo = ring(6)
        ref = enumerate_density_matrix_reference(topo, 0.9, 0.8)
        vec = enumerate_density_matrix(topo, 0.9, 0.8,
                                       chunk_size=chunk_size,
                                       backend="vectorized")
        assert np.abs(vec - ref).max() <= 1e-13

    def test_single_row_matches_full_matrix(self):
        topo = ring(5)
        full = enumerate_density_matrix(topo, 0.9, 0.8, backend="vectorized")
        for site in range(topo.n_sites):
            row = enumerate_density(topo, site, 0.9, 0.8,
                                    backend="vectorized")
            assert np.array_equal(full[site], row)

    def test_beyond_the_reference_cap(self):
        # 26 free components: refused by the reference backend, exact
        # through the vectorized one (ring(13) has a closed form to
        # check against at the golden 1e-9 tier).
        from repro.analytic.ring import ring_density_matrix

        topo = ring(13)
        vec = enumerate_density_matrix(topo, 0.95, 0.9, backend="vectorized")
        closed = ring_density_matrix(topo, 0.95, 0.9)
        np.testing.assert_allclose(vec, closed, atol=1e-9)


class TestBackendSelection:
    def test_auto_resolves_by_numba_availability(self):
        expected = "compiled" if compiled.jit_available() else "vectorized"
        assert resolve_backend(None) in (expected,)
        assert resolve_backend("auto") == expected

    def test_explicit_names_resolve_to_themselves(self):
        assert resolve_backend("reference") == "reference"
        assert resolve_backend("vectorized") == "vectorized"

    def test_unknown_backend_is_an_error(self):
        with pytest.raises(DensityError, match="unknown enumeration backend"):
            enumerate_density_matrix(ring(4), 0.9, 0.9, backend="fortran")

    def test_env_knob_selects_backend(self, monkeypatch):
        monkeypatch.setenv(ENV_BACKEND, "reference")
        ref = enumerate_density_matrix_reference(ring(5), 0.9, 0.8)
        out = enumerate_density_matrix(ring(5), 0.9, 0.8)
        assert np.array_equal(ref, out)

    def test_env_knob_invalid_value_is_an_error(self, monkeypatch):
        monkeypatch.setenv(ENV_BACKEND, "gpu")
        with pytest.raises(DensityError, match="unknown enumeration backend"):
            enumerate_density_matrix(ring(4), 0.9, 0.9)

    def test_kwarg_overrides_env(self, monkeypatch):
        monkeypatch.setenv(ENV_BACKEND, "gpu")  # bad env must not matter
        ref = enumerate_density_matrix_reference(ring(4), 0.8, 0.7)
        out = enumerate_density_matrix(ring(4), 0.8, 0.7, backend="reference")
        assert np.array_equal(ref, out)

    @pytest.mark.skipif(compiled.HAVE_NUMBA,
                        reason="numba installed; request cannot fail")
    def test_compiled_without_numba_names_the_remedy(self):
        with pytest.raises(DensityError, match="numba"):
            enumerate_density_matrix(ring(4), 0.9, 0.9, backend="compiled")

    def test_cap_error_names_count_backend_and_knob(self):
        with pytest.raises(DensityError) as err:
            enumerate_density_matrix(ring(13), 0.9, 0.9, backend="reference")
        message = str(err.value)
        assert "26 fallible components" in message
        assert f"{MAX_COMPONENTS}-component" in message
        assert "'reference' backend" in message
        assert ENV_BACKEND in message
        assert str(MAX_COMPONENTS_COMPILED) in message

    def test_cap_error_past_the_compiled_cap(self):
        with pytest.raises(DensityError) as err:
            enumerate_density_matrix(ring(20), 0.9, 0.9, backend="vectorized")
        message = str(err.value)
        assert "40 fallible components" in message
        assert f"{MAX_COMPONENTS_COMPILED}-component" in message
        assert "montecarlo_density" in message

    def test_regrouped_results_cached_under_separate_key(self):
        from repro.analytic.cache import enumeration_key

        topo = ring(4)
        rel = np.full(4, 0.9)
        exact = enumeration_key(topo, rel, rel, None)
        regrouped = enumeration_key(topo, rel, rel, None, numerics="regrouped")
        assert exact != regrouped


@needs_numba
class TestJitKernel:
    """Exercised on the CI leg that installs the [compiled] extra."""

    @pytest.mark.parametrize("topo,p,r", CASES)
    def test_jit_bitwise_vs_reference(self, topo, p, r):
        ref = enumerate_density_matrix_reference(topo, p, r)
        out = enumerate_density_matrix(topo, p, r, backend="compiled")
        assert np.array_equal(ref, out)

    def test_jit_matches_python_twin_bitwise(self):
        topo = ring(6)
        site_rel, link_rel, fs, fl, nf = _case_arrays(topo, 0.9, 0.8)
        jit = compiled.enumerate_compiled(
            topo, site_rel, link_rel, fs, fl, nf,
            chunk_size=256, site=None, use_jit=True,
        )
        twin = compiled.enumerate_compiled(
            topo, site_rel, link_rel, fs, fl, nf,
            chunk_size=256, site=None, use_jit=False,
        )
        assert np.array_equal(jit, twin)

    def test_auto_prefers_jit(self):
        assert resolve_backend("auto") == "compiled"
