"""Kernel equivalence tests: vectorized enumeration vs the reference loop.

DESIGN.md §10 promises the chunked vectorized kernel is **bitwise
identical** to the retained per-state reference — every probability
product and every accumulation happens in the same floating-point order.
These tests pin that promise with ``np.array_equal`` (no tolerances) on
each topology family the verification corpus exercises, across chunk
sizes, and for the single-row fast path. The density cache is disabled
throughout so every comparison runs the real kernel. Every call pins
``backend="reference"``: the default backend is now ``auto`` (the
compiled/vectorized layer of DESIGN.md §15, covered by
``tests/analytic/test_compiled.py``), and only the reference kernel
carries the bitwise contract for every chunk size.
"""

import numpy as np
import pytest

from repro.analytic import cache as density_cache
from repro.analytic.enumeration import (
    enumerate_density,
    enumerate_density_matrix,
    enumerate_density_matrix_reference,
)
from repro.errors import DensityError
from repro.topology.generators import bus, fully_connected, ring, star


@pytest.fixture(autouse=True)
def _no_cache():
    with density_cache.disabled():
        yield


def _bus_case(n_sites: int, p: float, r: float):
    """The star-through-a-zero-vote-hub encoding with per-component rels:
    real sites at ``p``, the hub (playing the bus) at ``r``, spokes
    perfect — the encoding the verification corpus enumerates exactly."""
    topo = bus(n_sites)
    site_rel = np.concatenate([np.full(n_sites, p), [r]])
    link_rel = np.ones(topo.n_links)
    return topo, site_rel, link_rel


CASES = [
    pytest.param(ring(4), 0.8, 0.7, id="ring4"),
    pytest.param(ring(5), 0.96, 0.96, id="ring5"),
    pytest.param(fully_connected(4), 0.9, 0.6, id="complete4"),
    pytest.param(ring(4, votes=[2, 1, 1, 3]), 0.85, 0.75, id="ring4-weighted"),
]


class TestBitwiseEquivalence:
    @pytest.mark.parametrize("topo,p,r", CASES)
    def test_matrix_matches_reference(self, topo, p, r):
        ref = enumerate_density_matrix_reference(topo, p, r)
        vec = enumerate_density_matrix(topo, p, r, backend="reference")
        assert np.array_equal(ref, vec)

    def test_bus_star_pinned_matches_reference(self):
        topo, site_rel, link_rel = _bus_case(6, 0.9, 0.8)
        ref = enumerate_density_matrix_reference(topo, site_rel, link_rel)
        vec = enumerate_density_matrix(topo, site_rel, link_rel,
                                       backend="reference")
        assert np.array_equal(ref, vec)

    def test_star_with_pinned_sites(self):
        # Sites pinned fully up (rel 1.0) and fully down (rel 0.0) are
        # excluded from enumeration; the kernel must still place them
        # correctly in every state's masks.
        topo = star(6, hub=0)
        p = np.array([1.0, 0.9, 0.0, 0.8, 1.0, 0.7])
        ref = enumerate_density_matrix_reference(topo, p, 0.85)
        vec = enumerate_density_matrix(topo, p, 0.85, backend="reference")
        assert np.array_equal(ref, vec)

    @pytest.mark.parametrize("chunk_size", [1, 3, 64, 100_000])
    def test_chunk_size_never_changes_bits(self, chunk_size):
        topo = ring(5)
        ref = enumerate_density_matrix_reference(topo, 0.9, 0.8)
        vec = enumerate_density_matrix(topo, 0.9, 0.8, chunk_size=chunk_size,
                                       backend="reference")
        assert np.array_equal(ref, vec)

    @pytest.mark.parametrize("topo,p,r", CASES)
    def test_single_row_path(self, topo, p, r):
        full = enumerate_density_matrix(topo, p, r, backend="reference")
        for site in range(topo.n_sites):
            row = enumerate_density(topo, site, p, r, backend="reference")
            assert np.array_equal(full[site], row)


class TestKernelValidation:
    def test_chunk_size_must_be_positive(self):
        with pytest.raises(DensityError, match="chunk_size"):
            enumerate_density_matrix(ring(4), 0.9, 0.9, chunk_size=0)

    def test_reference_is_a_density(self):
        matrix = enumerate_density_matrix_reference(ring(4), 0.8, 0.7)
        np.testing.assert_allclose(matrix.sum(axis=1), 1.0, atol=1e-12)
