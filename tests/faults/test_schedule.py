"""Fault injectors and schedules: event generation, ownership, priming."""

import numpy as np
import pytest

from repro.errors import FaultInjectionError
from repro.faults.schedule import (
    CascadingFailure,
    CorrelatedFailure,
    FaultSchedule,
    FlappingSite,
    LinkCut,
    ScriptedPartition,
    SiteCrash,
)
from repro.rng import as_generator
from repro.simulation.events import SOURCE_CHAOS, EventKind, EventQueue
from repro.topology.generators import ring


@pytest.fixture
def topo():
    return ring(8)


class TestSiteCrash:
    def test_events(self, topo):
        crash = SiteCrash(5.0, [1, 3], heal_at=9.0)
        events = crash.events(topo, as_generator(0))
        assert (5.0, EventKind.SITE_FAIL, 1) in events
        assert (5.0, EventKind.SITE_FAIL, 3) in events
        assert (9.0, EventKind.SITE_REPAIR, 1) in events
        assert len(events) == 4

    def test_no_heal_means_down_forever(self, topo):
        events = SiteCrash(2.0, [0]).events(topo, as_generator(0))
        assert events == [(2.0, EventKind.SITE_FAIL, 0)]

    def test_owned_sites(self, topo):
        assert SiteCrash(1.0, [2, 6]).owned_sites(topo) == {2, 6}
        assert SiteCrash(1.0, [2, 6]).owned_links(topo) == set()

    def test_validation(self, topo):
        with pytest.raises(FaultInjectionError):
            SiteCrash(-1.0, [0])
        with pytest.raises(FaultInjectionError):
            SiteCrash(1.0, [])
        with pytest.raises(FaultInjectionError):
            SiteCrash(5.0, [0], heal_at=5.0)
        with pytest.raises(FaultInjectionError):
            SiteCrash(1.0, [99]).events(topo, as_generator(0))


class TestLinkCut:
    def test_events(self, topo):
        cut = LinkCut(1.0, [(0, 1)], heal_at=2.0)
        link = topo.link_id(0, 1)
        assert cut.events(topo, as_generator(0)) == [
            (1.0, EventKind.LINK_FAIL, link),
            (2.0, EventKind.LINK_REPAIR, link),
        ]

    def test_missing_link_rejected(self, topo):
        with pytest.raises(FaultInjectionError):
            LinkCut(1.0, [(0, 4)]).events(topo, as_generator(0))


class TestScriptedPartition:
    def test_cuts_exactly_the_cross_group_links(self, topo):
        part = ScriptedPartition(3.0, [[0, 1, 2, 3]])
        cut = set(part.cut_link_ids(topo))
        # Ring 0-1-...-7-0: the only cross links are (3,4) and (7,0).
        assert cut == {topo.link_id(3, 4), topo.link_id(7, 0)}

    def test_explicit_two_groups(self, topo):
        part = ScriptedPartition(3.0, [[0, 1], [2, 3]])
        cut = set(part.cut_link_ids(topo))
        # Links leaving {0,1} and {2,3} and between them: (1,2),(3,4),(7,0).
        assert cut == {topo.link_id(1, 2), topo.link_id(3, 4), topo.link_id(7, 0)}

    def test_heal_restores_every_cut_link(self, topo):
        part = ScriptedPartition(3.0, [[0, 1, 2, 3]], heal_at=8.0)
        events = part.events(topo, as_generator(0))
        fails = [e for e in events if e[1] is EventKind.LINK_FAIL]
        repairs = [e for e in events if e[1] is EventKind.LINK_REPAIR]
        assert {e[2] for e in fails} == {e[2] for e in repairs}
        assert all(e[0] == 8.0 for e in repairs)

    def test_overlapping_groups_rejected(self):
        with pytest.raises(FaultInjectionError):
            ScriptedPartition(1.0, [[0, 1], [1, 2]])


class TestFlappingSite:
    def test_cycles(self, topo):
        flap = FlappingSite(2, period=4.0, until=10.0, down_fraction=0.25)
        events = flap.events(topo, as_generator(0))
        # Cycles start at 0, 4, 8 — each one fail + one repair 1.0 later.
        fails = [e for e in events if e[1] is EventKind.SITE_FAIL]
        assert [t for t, _, _ in fails] == [0.0, 4.0, 8.0]
        repairs = [e for e in events if e[1] is EventKind.SITE_REPAIR]
        assert [t for t, _, _ in repairs] == [1.0, 5.0, 9.0]
        assert all(target == 2 for _, _, target in events)

    def test_validation(self):
        with pytest.raises(FaultInjectionError):
            FlappingSite(0, period=0.0, until=5.0)
        with pytest.raises(FaultInjectionError):
            FlappingSite(0, period=1.0, until=5.0, down_fraction=1.0)
        with pytest.raises(FaultInjectionError):
            FlappingSite(0, period=1.0, until=2.0, start=3.0)


class TestCascadingFailure:
    def test_staggered_failures(self, topo):
        cascade = CascadingFailure(10.0, [4, 5, 6], delay=2.0, heal_at=20.0)
        events = cascade.events(topo, as_generator(0))
        fails = [e for e in events if e[1] is EventKind.SITE_FAIL]
        assert fails == [
            (10.0, EventKind.SITE_FAIL, 4),
            (12.0, EventKind.SITE_FAIL, 5),
            (14.0, EventKind.SITE_FAIL, 6),
        ]

    def test_heal_must_follow_last_failure(self):
        with pytest.raises(FaultInjectionError):
            CascadingFailure(10.0, [0, 1, 2], delay=2.0, heal_at=13.0)


class TestCorrelatedFailure:
    def test_scripted_occurrences_fail_together(self, topo):
        group = CorrelatedFailure(sites=[0, 1], link_pairs=[(3, 4)],
                                  at_times=[5.0], down_time=2.0)
        events = group.events(topo, as_generator(0))
        fail_times = sorted(t for t, k, _ in events if k.is_failure)
        assert fail_times == [5.0, 5.0, 5.0]
        repair_times = sorted(t for t, k, _ in events if k.is_repair)
        assert repair_times == [7.0, 7.0, 7.0]

    def test_poisson_occurrences_are_seed_deterministic(self, topo):
        group = CorrelatedFailure(sites=[0], mean_interval=3.0, until=30.0)
        a = group.events(topo, as_generator(42))
        b = group.events(topo, as_generator(42))
        c = group.events(topo, as_generator(7))
        assert a == b
        assert a != c

    def test_jitter_never_outlives_down_time(self):
        with pytest.raises(FaultInjectionError):
            CorrelatedFailure(sites=[0], at_times=[1.0], down_time=1.0, jitter=1.0)

    def test_needs_exactly_one_occurrence_mode(self):
        with pytest.raises(FaultInjectionError):
            CorrelatedFailure(sites=[0])
        with pytest.raises(FaultInjectionError):
            CorrelatedFailure(sites=[0], at_times=[1.0], mean_interval=2.0)


class TestFaultSchedule:
    def test_owned_components_union(self, topo):
        schedule = FaultSchedule([
            SiteCrash(1.0, [0, 2]),
            LinkCut(2.0, [(4, 5)]),
        ])
        sites, links = schedule.owned_components(topo)
        assert sites == [0, 2]
        assert links == [topo.link_id(4, 5)]

    def test_prime_tags_events_as_chaos(self, topo):
        schedule = FaultSchedule([SiteCrash(1.0, [0], heal_at=2.0)])
        queue = EventQueue()
        n = schedule.prime(queue, topo, as_generator(0))
        assert n == 2 and len(queue) == 2
        while queue:
            event = queue.pop()
            assert event.source == SOURCE_CHAOS and event.is_chaos

    def test_all_events_are_time_ordered(self, topo):
        schedule = FaultSchedule([
            SiteCrash(5.0, [0]),
            FlappingSite(1, period=2.0, until=8.0),
        ])
        times = [t for t, _, _ in schedule.all_events(topo, as_generator(0))]
        assert times == sorted(times)

    def test_schedule_seed_overrides_engine_stream(self, topo):
        group = CorrelatedFailure(sites=[0], mean_interval=3.0, until=30.0)
        seeded = FaultSchedule([group], seed=11)
        # Same schedule, different engine rng: identical events.
        a = seeded.all_events(topo, as_generator(0))
        b = seeded.all_events(topo, as_generator(999))
        assert a == b

    def test_rejects_non_injectors(self):
        with pytest.raises(FaultInjectionError):
            FaultSchedule(["not an injector"])

    def test_describe_mentions_every_injector(self, topo):
        schedule = FaultSchedule([SiteCrash(1.0, [0]), LinkCut(2.0, [(4, 5)])])
        text = schedule.describe()
        assert "site-crash" in text and "link-cut" in text
