"""Chaos campaigns end to end: detection, quarantine, replay, clean sweeps.

The two acceptance scenarios for the chaos subsystem live here:

1. a campaign over a protocol with a deliberately broken assignment
   (``q_r + q_w <= T``) must detect and report the violation with a
   replayable seed and fault trace;
2. a correct protocol must pass a 50-batch chaos sweep with zero
   violations and zero aborted batches (the long sweep is marked
   ``chaos``; a 5-batch smoke version runs in the default suite).
"""

import pytest

from repro.errors import BatchExecutionError, FaultInjectionError
from repro.faults.chaos import ChaosReport, replay_batch, run_chaos_campaign, unchecked_assignment
from repro.faults.schedule import FaultSchedule, FlappingSite, ScriptedPartition
from repro.protocols.majority import MajorityConsensusProtocol
from repro.protocols.quorum_consensus import QuorumConsensusProtocol
from repro.protocols.reassignment import QuorumReassignmentProtocol
from repro.quorum.assignment import QuorumAssignment
from repro.simulation.config import SimulationConfig
from repro.simulation.runner import run_simulation
from repro.simulation.workload import AccessWorkload
from repro.topology.generators import ring


def chaos_config(n_sites=7, accesses=300.0, n_batches=2, seed=5, schedule=None):
    topo = ring(n_sites)
    return SimulationConfig(
        topology=topo,
        workload=AccessWorkload.uniform(n_sites, 0.5, 1.0),
        warmup_accesses=0.0,
        accesses_per_batch=accesses,
        n_batches=n_batches,
        initial_state="stationary",
        seed=seed,
        fault_schedule=schedule,
    )


def partition_schedule(horizon):
    return FaultSchedule([
        ScriptedPartition(0.2 * horizon, [[0, 1, 2]], heal_at=0.5 * horizon),
        FlappingSite(6, period=horizon / 8.0, until=0.9 * horizon),
    ])


class TestUncheckedAssignment:
    def test_builds_invalid_assignment(self):
        broken = unchecked_assignment(7, 1, 3)
        assert broken.read_quorum + broken.write_quorum <= broken.total_votes

    def test_refuses_valid_assignment(self):
        with pytest.raises(FaultInjectionError):
            unchecked_assignment(7, 4, 4)


class TestAcceptanceBrokenAssignment:
    """Acceptance 1: an injected invariant violation is caught + replayable."""

    def test_broken_assignment_is_detected_with_replay_context(self):
        config = chaos_config(schedule=partition_schedule(42.0))
        protocol = QuorumConsensusProtocol(unchecked_assignment(7, 1, 3))
        report = run_chaos_campaign(config, protocol, n_batches=2)

        assert not report.passed
        assert report.violations, "broken assignment must be detected"
        rules = {v.rule for v in report.violations}
        assert "quorum-intersection" in rules
        assert "write-write-intersection" in rules
        # Every record carries what a replay needs.
        for violation in report.violations:
            assert violation.seed == config.seed
            assert violation.batch_index in (0, 1)
            assert violation.snapshot["site_up"] is not None
        assert "FAIL" in report.summary()

    def test_clean_protocol_same_schedule_passes(self):
        config = chaos_config(schedule=partition_schedule(42.0))
        protocol = MajorityConsensusProtocol(7)
        report = run_chaos_campaign(config, protocol, n_batches=2)
        assert report.passed
        assert report.n_completed == 2
        assert not report.quarantined
        assert "PASS" in report.summary()


class TestAcceptanceCleanSweep:
    """Acceptance 2: correct protocols survive long chaos sweeps clean."""

    def _sweep(self, protocol, n_batches):
        config = chaos_config(accesses=150.0, n_batches=n_batches,
                              schedule=partition_schedule(21.0))
        report = run_chaos_campaign(config, protocol, n_batches=n_batches)
        assert report.passed, report.summary()
        assert report.monitor.checks_run > 0
        assert not report.violations
        assert not report.quarantined
        assert report.n_completed == n_batches

    def test_smoke_sweep_majority(self):
        self._sweep(MajorityConsensusProtocol(7), n_batches=5)

    def test_smoke_sweep_reassignment(self):
        self._sweep(
            QuorumReassignmentProtocol(7, QuorumAssignment.majority(7)),
            n_batches=5,
        )

    @pytest.mark.chaos
    def test_50_batch_sweep_majority(self):
        self._sweep(MajorityConsensusProtocol(7), n_batches=50)

    @pytest.mark.chaos
    def test_50_batch_sweep_reassignment(self):
        self._sweep(
            QuorumReassignmentProtocol(7, QuorumAssignment.majority(7)),
            n_batches=50,
        )


class _DyingProtocol(MajorityConsensusProtocol):
    """Dies mid-measurement in selected batches (chaos for the harness).

    Dies in ``on_network_change`` because the engine calls it exactly once
    per topology event — a deterministic count, unaffected by whether a
    monitor (which calls ``grant_masks`` on its own) is attached. That
    keeps the abort point identical between a campaign run and a replay.
    """

    def __init__(self, total_votes, die_in_batches, after_events=5):
        super().__init__(total_votes)
        self.die_in_batches = set(die_in_batches)
        self.after_events = after_events
        self._batch = -1
        self._events = 0

    def reset(self):
        super().reset()
        self._batch += 1
        self._events = 0

    def on_network_change(self, tracker):
        self._events += 1
        if self._batch in self.die_in_batches and self._events > self.after_events:
            raise RuntimeError("injected protocol crash")
        return super().on_network_change(tracker)


class TestQuarantine:
    def test_dying_batch_is_quarantined_with_trace(self):
        schedule = partition_schedule(42.0)
        config = chaos_config(schedule=schedule)
        protocol = _DyingProtocol(7, die_in_batches=[0])
        report = run_chaos_campaign(config, protocol, n_batches=2)

        assert not report.passed
        assert report.n_completed == 1  # batch 1 still ran
        (quarantine,) = report.quarantined
        assert quarantine.batch_index == 0
        assert quarantine.seed == config.seed
        assert quarantine.error_type == "RuntimeError"
        assert "injected protocol crash" in quarantine.message
        assert quarantine.trace is not None
        assert len(quarantine.trace.chaos_events()) > 0  # fault trace kept
        assert quarantine.snapshot["site_up"]
        assert "batch 0" in quarantine.describe()

    def test_fail_fast_raises_instead(self):
        config = chaos_config(schedule=partition_schedule(42.0))
        protocol = _DyingProtocol(7, die_in_batches=[0])
        with pytest.raises(BatchExecutionError) as excinfo:
            run_chaos_campaign(config, protocol, n_batches=2, fail_fast=True)
        assert excinfo.value.batch_index == 0

    def test_replay_reproduces_the_failure(self):
        config = chaos_config(schedule=partition_schedule(42.0))
        report = run_chaos_campaign(
            config, _DyingProtocol(7, die_in_batches=[0]), n_batches=1
        )
        (quarantine,) = report.quarantined
        # A fresh protocol instance + the quarantined batch index replays
        # the exact same abort (batch streams derive from (seed, index)).
        with pytest.raises(BatchExecutionError) as excinfo:
            replay_batch(
                config,
                _DyingProtocol(7, die_in_batches=[0]),
                quarantine.batch_index,
            )
        replayed = excinfo.value
        assert replayed.batch_index == quarantine.batch_index
        assert replayed.sim_time == pytest.approx(quarantine.sim_time)

    def test_replay_of_clean_batch_matches_campaign(self):
        config = chaos_config(schedule=partition_schedule(42.0))
        report = run_chaos_campaign(config, MajorityConsensusProtocol(7),
                                    n_batches=1)
        replayed = replay_batch(config, MajorityConsensusProtocol(7), 0)
        original = report.batches[0]
        assert replayed.accesses_granted == original.accesses_granted
        assert replayed.accesses_submitted == original.accesses_submitted

    def test_runner_keep_going_quarantines_and_continues(self):
        config = chaos_config(n_batches=3, schedule=partition_schedule(42.0))
        protocol = _DyingProtocol(7, die_in_batches=[1])
        result = run_simulation(config, protocol, fail_fast=False)
        assert len(result.batches) == 2
        assert len(result.quarantined) == 1
        assert result.quarantined[0].batch_index == 1
        assert "quarantined" in result.summary()

    def test_runner_fail_fast_is_default(self):
        config = chaos_config(n_batches=3, schedule=partition_schedule(42.0))
        protocol = _DyingProtocol(7, die_in_batches=[1])
        with pytest.raises(BatchExecutionError):
            run_simulation(config, protocol)


class TestReportShape:
    def test_availability_pools_completed_batches(self):
        config = chaos_config()
        report = run_chaos_campaign(config, MajorityConsensusProtocol(7),
                                    n_batches=2)
        assert 0.0 < report.availability() <= 1.0

    def test_empty_report_has_zero_availability(self):
        report = ChaosReport("p", "s", 1)
        assert report.availability() == 0.0
        assert not report.passed

    def test_rejects_nonpositive_batches(self):
        config = chaos_config()
        with pytest.raises(FaultInjectionError):
            run_chaos_campaign(config, MajorityConsensusProtocol(7), n_batches=0)
