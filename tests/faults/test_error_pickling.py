"""Contextual errors must survive pickling (the process-pool boundary).

``BatchOutcome.quarantine_error`` carries a :class:`BatchExecutionError`
back from a worker process. The default ``BaseException.__reduce__``
replays only positional ``args`` — it drops keyword-only fields (the
unpickle then dies with ``TypeError: missing batch_index``, killing the
whole pool) and silently discards ``__cause__``, which quarantine
reporting reads for the original error type and message. The custom
``__reduce__`` on :class:`ContextualError` must preserve both.
"""

import pickle

import pytest

from repro.errors import (
    BatchExecutionError,
    ContextualError,
    DensityError,
    FaultInjectionError,
    InvariantViolation,
)
from repro.simulation.runner import QuarantinedBatch


def _roundtrip(exc):
    return pickle.loads(pickle.dumps(exc))


class TestContextualErrorPickling:
    def test_batch_execution_error_roundtrips(self):
        exc = BatchExecutionError(
            "batch 3 aborted",
            batch_index=3,
            sim_time=183.9,
            seed=17,
            snapshot={"labels": [0, 0, -1]},
        )
        back = _roundtrip(exc)
        assert isinstance(back, BatchExecutionError)
        assert back.batch_index == 3
        assert back.sim_time == 183.9
        assert back.seed == 17
        assert back.snapshot == {"labels": [0, 0, -1]}
        assert back.message == "batch 3 aborted"
        assert str(back) == str(exc)

    def test_cause_survives_the_roundtrip(self):
        exc = BatchExecutionError("batch 1 aborted", batch_index=1, seed=0)
        exc.__cause__ = DensityError("vote totals must be in 0..21")
        back = _roundtrip(exc)
        assert isinstance(back.__cause__, DensityError)
        assert str(back.__cause__) == "vote totals must be in 0..21"

    def test_quarantine_report_reads_the_unpickled_cause(self):
        exc = BatchExecutionError(
            "batch 1 aborted", batch_index=1, seed=0, sim_time=42.0
        )
        exc.__cause__ = DensityError("vote totals must be in 0..21")
        quarantine = QuarantinedBatch.from_error(_roundtrip(exc))
        assert quarantine.error_type == "DensityError"
        assert quarantine.message == "vote totals must be in 0..21"
        assert quarantine.batch_index == 1

    def test_invariant_violation_keeps_rule(self):
        exc = InvariantViolation(
            "read quorum disjoint from write quorum",
            rule="quorum-intersection",
            sim_time=2.8,
        )
        back = _roundtrip(exc)
        assert back.rule == "quorum-intersection"
        assert back.sim_time == 2.8

    @pytest.mark.parametrize("cls", [ContextualError, FaultInjectionError])
    def test_plain_contextual_subclasses_roundtrip(self, cls):
        back = _roundtrip(cls("boom", sim_time=1.0, seed=9))
        assert type(back) is cls
        assert back.message == "boom"
        assert back.seed == 9
