"""RetryPolicy mechanics and the database's resilient access paths."""

import pytest

from repro.errors import FaultInjectionError, SerializabilityError
from repro.faults.chaos import unchecked_assignment
from repro.faults.monitor import InvariantMonitor
from repro.faults.retry import RetryPolicy
from repro.protocols.quorum_consensus import QuorumConsensusProtocol
from repro.quorum.assignment import QuorumAssignment
from repro.replication.database import ReplicatedDatabase
from repro.rng import as_generator
from repro.topology.generators import ring


class TestPolicy:
    def test_backoff_grows_then_caps(self):
        policy = RetryPolicy(max_attempts=6, base_delay=1.0, multiplier=2.0,
                             max_delay=5.0)
        delays = [policy.backoff(k) for k in range(1, 6)]
        assert delays == [1.0, 2.0, 4.0, 5.0, 5.0]

    def test_jitter_stays_in_band(self):
        policy = RetryPolicy(base_delay=2.0, multiplier=1.0, max_delay=2.0,
                             jitter=0.5)
        rng = as_generator(0)
        for _ in range(50):
            assert 1.0 <= policy.backoff(1, rng) <= 3.0

    def test_jittered_backoff_is_seed_deterministic(self):
        policy = RetryPolicy(jitter=0.3)
        a = [policy.backoff(k, as_generator(5)) for k in range(1, 4)]
        b = [policy.backoff(k, as_generator(5)) for k in range(1, 4)]
        assert a == b

    def test_deadline(self):
        policy = RetryPolicy(deadline=10.0)
        assert policy.within_deadline(9.99)
        assert not policy.within_deadline(10.0)
        assert RetryPolicy(deadline=None).within_deadline(1e9)

    def test_none_policy_single_attempt(self):
        assert RetryPolicy.none().max_attempts == 1

    def test_validation(self):
        with pytest.raises(FaultInjectionError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(FaultInjectionError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(FaultInjectionError):
            RetryPolicy(base_delay=4.0, max_delay=2.0)
        with pytest.raises(FaultInjectionError):
            RetryPolicy(jitter=1.5)
        with pytest.raises(FaultInjectionError):
            RetryPolicy(deadline=0.0)
        with pytest.raises(FaultInjectionError):
            RetryPolicy().backoff(0)

    def test_describe(self):
        assert "attempts=4" in RetryPolicy().describe()


def majority_db(**kwargs):
    topo = ring(5)
    protocol = QuorumConsensusProtocol(QuorumAssignment.majority(5))
    return ReplicatedDatabase(topo, protocol, initial_value="v0", **kwargs)


class TestDatabaseRetry:
    def test_no_policy_means_single_attempt(self):
        db = majority_db()
        for site in (1, 2, 3):
            db.fail_site(site)
        result = db.submit_write(0, "x")
        assert not result.granted
        assert result.attempts == 1
        assert len(db.history) == 1

    def test_retry_succeeds_after_heal_on_wait(self):
        healed = []

        def heal(now):
            if not healed:
                db.repair_site(1)
                db.repair_site(2)
                healed.append(now)

        db = majority_db(
            retry_policy=RetryPolicy(max_attempts=3, base_delay=2.0),
            on_wait=heal,
        )
        for site in (1, 2, 3):
            db.fail_site(site)
        # Component {0,4} holds 2 votes < q_w = 4: attempt 1 denied; the
        # heal during backoff brings {0,1,2,4} = 4 votes; attempt 2 grants.
        result = db.submit_write(0, "x")
        assert result.granted
        assert result.attempts == 2
        assert result.time == pytest.approx(2.0)  # backoff advanced the clock
        assert len(db.history) == 2  # every attempt is logged
        assert db.copy_at(0).value == "x"

    def test_retries_give_up_after_max_attempts(self):
        waits = []
        db = majority_db(
            retry_policy=RetryPolicy(max_attempts=3, base_delay=1.0,
                                     multiplier=2.0),
            on_wait=waits.append,
        )
        for site in (1, 2, 3):
            db.fail_site(site)
        result = db.submit_write(0, "x")
        assert not result.granted
        assert result.attempts == 3
        assert waits == [pytest.approx(1.0), pytest.approx(3.0)]

    def test_deadline_stops_retrying_early(self):
        db = majority_db(
            retry_policy=RetryPolicy(max_attempts=10, base_delay=4.0,
                                     multiplier=1.0, max_delay=4.0,
                                     deadline=6.0),
        )
        for site in (1, 2, 3):
            db.fail_site(site)
        result = db.submit_write(0, "x")
        # First backoff (4.0) fits the deadline, the second (-> 8.0) does not.
        assert result.attempts == 2

    def test_granted_first_try_never_waits(self):
        db = majority_db(retry_policy=RetryPolicy(max_attempts=5, base_delay=9.0,
                                                  max_delay=9.0))
        result = db.submit_read(0)
        assert result.granted and result.attempts == 1
        assert result.time == 0.0

    def test_read_retry_returns_committed_value(self):
        def heal(now):
            db.repair_site(1)

        db = majority_db(
            retry_policy=RetryPolicy(max_attempts=2, base_delay=1.0),
            on_wait=heal,
        )
        db.submit_write(0, "committed")
        for site in (1, 2, 3):
            db.fail_site(site)
        result = db.submit_read(0)
        assert result.granted
        assert result.value == "committed"


class TestMonitorRouting:
    def broken_partitioned_db(self, monitor=None):
        topo = ring(6)
        protocol = QuorumConsensusProtocol(unchecked_assignment(6, 1, 2))
        db = ReplicatedDatabase(topo, protocol, initial_value="v0",
                                monitor=monitor)
        db.fail_link(2, 3)
        db.fail_link(5, 0)  # {0,1,2} vs {3,4,5}
        return db

    def test_without_monitor_mismatch_raises(self):
        db = self.broken_partitioned_db()
        db.submit_write(0, "x")  # commits in {0,1,2} only
        with pytest.raises(SerializabilityError):
            db.submit_read(3)  # {3,4,5} still sees v0

    def test_with_monitor_mismatch_is_recorded(self):
        monitor = InvariantMonitor()
        db = self.broken_partitioned_db(monitor=monitor)
        db.submit_write(0, "x")
        result = db.submit_read(3)  # records instead of raising
        assert result.granted
        assert result.value == "v0"  # the stale value really was returned
        rules = [v.rule for v in monitor.violations]
        assert rules == ["one-copy-serializability"]
