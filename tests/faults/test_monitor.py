"""InvariantMonitor: each rule fires on a violating state and stays quiet
on a correct one."""

import numpy as np
import pytest

from repro.connectivity.dynamic import ComponentTracker, NetworkState
from repro.errors import InvariantViolation
from repro.faults.chaos import unchecked_assignment
from repro.faults.monitor import InvariantMonitor, ViolationRecord
from repro.protocols.quorum_consensus import QuorumConsensusProtocol
from repro.protocols.reassignment import QuorumReassignmentProtocol
from repro.quorum.assignment import QuorumAssignment
from repro.topology.generators import ring


@pytest.fixture
def network():
    topo = ring(6)
    state = NetworkState(topo)
    return topo, state, ComponentTracker(state)


def split_ring(topo, state, boundary_a=(2, 3), boundary_b=(5, 0)):
    """Partition a 6-ring into {0,1,2} and {3,4,5}."""
    state.fail_link(topo.link_id(*boundary_a))
    state.fail_link(topo.link_id(*boundary_b))


class _MaskProtocol:
    """Test double returning fixed grant masks (and optional versions)."""

    name = "mask-protocol"

    def __init__(self, read_mask, write_mask, site_version=None):
        self._read = np.asarray(read_mask, dtype=bool)
        self._write = np.asarray(write_mask, dtype=bool)
        if site_version is not None:
            self.site_version = np.asarray(site_version, dtype=np.int64)

    def grant_masks(self, tracker):
        return self._read, self._write


class TestStructuralChecks:
    def test_clean_assignment_passes(self, network):
        topo, state, tracker = network
        protocol = QuorumConsensusProtocol(QuorumAssignment.majority(6))
        monitor = InvariantMonitor()
        split_ring(topo, state)
        monitor.observe(0.0, tracker, protocol)
        assert monitor.ok
        assert monitor.checks_run == 1

    def test_broken_intersection_detected(self, network):
        topo, state, tracker = network
        protocol = QuorumConsensusProtocol(unchecked_assignment(6, 1, 2))
        monitor = InvariantMonitor()
        monitor.observe(1.0, tracker, protocol)
        rules = {v.rule for v in monitor.violations}
        assert "quorum-intersection" in rules      # 1 + 2 <= 6
        assert "write-write-intersection" in rules  # 2*2 <= 6

    def test_qr_component_views_are_inspected(self, network):
        topo, state, tracker = network
        protocol = QuorumReassignmentProtocol(6, QuorumAssignment.majority(6))
        protocol.on_network_change(tracker)
        # Corrupt one site's installed assignment directly (simulating a
        # buggy installation path): the monitor must notice.
        protocol.site_assignment[0] = unchecked_assignment(6, 1, 2)
        protocol.site_version[0] = 99
        monitor = InvariantMonitor()
        monitor.observe(2.0, tracker, protocol)
        assert any(v.rule == "quorum-intersection" for v in monitor.violations)


class TestBehavioralChecks:
    def test_concurrent_writes_in_disjoint_components(self, network):
        topo, state, tracker = network
        split_ring(topo, state)
        everywhere = np.ones(6, dtype=bool)
        monitor = InvariantMonitor()
        monitor.observe(3.0, tracker, _MaskProtocol(everywhere, everywhere))
        assert any(v.rule == "concurrent-writes" for v in monitor.violations)

    def test_stale_read_disjoint_from_writer(self, network):
        topo, state, tracker = network
        split_ring(topo, state)
        reads = np.ones(6, dtype=bool)
        writes = np.zeros(6, dtype=bool)
        writes[tracker.labels == tracker.labels[0]] = True
        monitor = InvariantMonitor()
        monitor.observe(4.0, tracker, _MaskProtocol(reads, writes))
        rules = {v.rule for v in monitor.violations}
        assert "stale-read" in rules
        assert "concurrent-writes" not in rules

    def test_single_component_writes_are_fine(self, network):
        topo, state, tracker = network
        split_ring(topo, state)
        masks = np.zeros(6, dtype=bool)
        masks[tracker.labels == tracker.labels[0]] = True
        monitor = InvariantMonitor()
        monitor.observe(5.0, tracker, _MaskProtocol(masks, masks))
        assert monitor.ok

    def test_grant_evaluation_failure_is_a_finding(self, network):
        topo, state, tracker = network

        class Dying:
            name = "dying"

            def grant_masks(self, tracker):
                raise RuntimeError("protocol exploded")

        monitor = InvariantMonitor()
        monitor.observe(6.0, tracker, Dying())
        assert [v.rule for v in monitor.violations] == ["grant-evaluation"]


class TestMetamorphicGrantChecks:
    """The declarative-grant replay added with the verification subsystem."""

    def uneven_split(self, topo, state):
        """Partition a 6-ring into {0,1,2,3} (4 votes) and {4,5} (2 votes)."""
        state.fail_link(topo.link_id(3, 4))
        state.fail_link(topo.link_id(5, 0))

    def test_healthy_declarative_protocols_stay_quiet(self, network):
        topo, state, tracker = network
        self.uneven_split(topo, state)
        monitor = InvariantMonitor()
        monitor.observe(0.0, tracker,
                        QuorumConsensusProtocol(QuorumAssignment.majority(6)))
        qr = QuorumReassignmentProtocol(6, QuorumAssignment.majority(6))
        qr.on_network_change(tracker)
        monitor.observe(1.0, tracker, qr)
        assert monitor.ok

    def test_mask_contradicting_assignment_detected(self, network):
        topo, state, tracker = network

        class Lying(QuorumConsensusProtocol):
            def grant_masks(self, tracker):
                read_mask, write_mask = super().grant_masks(tracker)
                return read_mask, ~write_mask  # deny what the assignment allows

        monitor = InvariantMonitor()
        monitor.observe(2.0, tracker, Lying(QuorumAssignment.majority(6)))
        assert any(v.rule == "grant-mask-consistency" for v in monitor.violations)

    def test_split_decision_within_component_detected(self, network):
        topo, state, tracker = network

        class HalfGranting(QuorumConsensusProtocol):
            def grant_masks(self, tracker):
                read_mask, write_mask = super().grant_masks(tracker)
                read_mask = read_mask.copy()
                read_mask[0] = not read_mask[0]  # one member disagrees
                return read_mask, write_mask

        monitor = InvariantMonitor()
        monitor.observe(3.0, tracker, HalfGranting(QuorumAssignment.majority(6)))
        consistency = [v for v in monitor.violations
                       if v.rule == "grant-mask-consistency"]
        assert consistency
        assert "split within component" in consistency[0].detail

    def test_grant_monotonicity_violation_detected(self, network):
        topo, state, tracker = network
        self.uneven_split(topo, state)

        class Inverted(QuorumConsensusProtocol):
            """Grants reads to the poorer component, denies the richer."""

            def grant_masks(self, tracker):
                totals = tracker.vote_totals
                read_mask = totals == 2  # only the 2-vote component
                write_mask = np.zeros(6, dtype=bool)
                return read_mask, write_mask

        monitor = InvariantMonitor()
        monitor.observe(4.0, tracker,
                        Inverted(QuorumAssignment.from_read_quorum(6, 3)))
        rules = {v.rule for v in monitor.violations}
        assert "grant-monotonicity" in rules

    def test_non_declarative_protocols_are_skipped(self, network):
        topo, state, tracker = network
        # _MaskProtocol makes no declarative_grants claim, so arbitrary
        # masks must not be replayed against any assignment.
        nothing = np.zeros(6, dtype=bool)
        monitor = InvariantMonitor()
        monitor.observe(5.0, tracker, _MaskProtocol(nothing, nothing))
        assert not any(v.rule.startswith("grant-mask") for v in monitor.violations)
        assert not any(v.rule == "grant-monotonicity" for v in monitor.violations)

    def test_qr_corrupted_mask_detected(self, network):
        topo, state, tracker = network
        self.uneven_split(topo, state)

        class LyingQR(QuorumReassignmentProtocol):
            def grant_masks(self, tracker):
                read_mask, write_mask = super().grant_masks(tracker)
                return read_mask, ~write_mask

        protocol = LyingQR(6, QuorumAssignment.majority(6))
        protocol.on_network_change(tracker)
        monitor = InvariantMonitor()
        monitor.observe(6.0, tracker, protocol)
        assert any(v.rule == "grant-mask-consistency" for v in monitor.violations)


class TestVersionChecks:
    def test_stale_assignment_grant_detected(self, network):
        topo, state, tracker = network
        split_ring(topo, state)
        versions = np.ones(6, dtype=np.int64)
        versions[3] = 5  # component {3,4,5} installed version 5
        granted = tracker.labels == tracker.labels[0]  # grants in {0,1,2}
        monitor = InvariantMonitor()
        monitor.observe(
            7.0, tracker, _MaskProtocol(granted, granted, site_version=versions)
        )
        assert any(v.rule == "stale-assignment-grant" for v in monitor.violations)

    def test_grant_under_newest_version_is_fine(self, network):
        topo, state, tracker = network
        split_ring(topo, state)
        versions = np.ones(6, dtype=np.int64)
        versions[0] = 5  # the granted component holds the newest version
        granted = tracker.labels == tracker.labels[0]
        monitor = InvariantMonitor()
        monitor.observe(
            8.0, tracker, _MaskProtocol(granted, granted, site_version=versions)
        )
        assert monitor.ok

    def test_version_regression_detected(self, network):
        topo, state, tracker = network
        nothing = np.zeros(6, dtype=bool)
        protocol = _MaskProtocol(nothing, nothing, site_version=[2] * 6)
        monitor = InvariantMonitor()
        monitor.observe(9.0, tracker, protocol)
        protocol.site_version = np.asarray([2, 2, 1, 2, 2, 2])
        monitor.observe(10.0, tracker, protocol)
        regressions = [v for v in monitor.violations if v.rule == "version-regression"]
        assert len(regressions) == 1
        assert "sites [2]" in regressions[0].detail

    def test_start_batch_resets_version_history(self, network):
        topo, state, tracker = network
        nothing = np.zeros(6, dtype=bool)
        protocol = _MaskProtocol(nothing, nothing, site_version=[5] * 6)
        monitor = InvariantMonitor()
        monitor.observe(0.0, tracker, protocol)
        monitor.start_batch(1, seed=0)
        protocol.site_version = np.ones(6, dtype=np.int64)  # protocol reset
        monitor.observe(0.0, tracker, protocol)
        assert monitor.ok


class TestRecording:
    def test_records_carry_batch_seed_and_snapshot(self, network):
        topo, state, tracker = network
        monitor = InvariantMonitor()
        monitor.start_batch(3, seed=77)
        monitor.record(1.5, "test-rule", "details", tracker=tracker)
        (violation,) = monitor.violations
        assert violation.batch_index == 3
        assert violation.seed == 77
        assert violation.snapshot["site_up"] == [1] * 6
        assert "batch 3" in str(violation)

    def test_raise_on_violation(self, network):
        topo, state, tracker = network
        monitor = InvariantMonitor(raise_on_violation=True)
        monitor.start_batch(0, seed=1)
        with pytest.raises(InvariantViolation) as excinfo:
            monitor.record(2.0, "test-rule", "boom")
        assert excinfo.value.rule == "test-rule"
        assert excinfo.value.seed == 1

    def test_record_cap_counts_overflow(self, network):
        topo, state, tracker = network
        monitor = InvariantMonitor(max_records=2)
        for k in range(5):
            monitor.record(float(k), "r", "d")
        assert len(monitor.violations) == 2
        assert monitor.overflowed == 3
        assert not monitor.ok

    def test_serializability_hook(self):
        monitor = InvariantMonitor()
        monitor.record_serializability(4.0, "read saw stale value")
        assert monitor.violations[0].rule == "one-copy-serializability"

    def test_violation_record_to_error_round_trip(self):
        record = ViolationRecord(time=1.0, rule="r", detail="d", seed=9)
        error = record.to_error()
        assert isinstance(error, InvariantViolation)
        assert error.rule == "r" and error.seed == 9

    def test_summary_groups_by_rule(self):
        monitor = InvariantMonitor()
        monitor.record(0.0, "a", "x")
        monitor.record(1.0, "a", "y")
        monitor.record(2.0, "b", "z")
        text = monitor.summary()
        assert "a" in text and "b" in text and "3" in text
