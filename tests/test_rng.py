"""Tests for the random-stream substrate."""

import numpy as np
import pytest

from repro.rng import as_generator, iter_streams, spawn, spawn_many, stream_for


class TestAsGenerator:
    def test_int_seed_deterministic(self):
        assert as_generator(7).random() == as_generator(7).random()

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert as_generator(gen) is gen

    def test_none_gives_generator(self):
        assert isinstance(as_generator(None), np.random.Generator)

    def test_seed_sequence_accepted(self):
        seq = np.random.SeedSequence(5)
        a = as_generator(seq).random()
        b = as_generator(np.random.SeedSequence(5)).random()
        assert a == b


class TestSpawn:
    def test_children_independent_and_deterministic(self):
        a1, b1 = spawn(3, 2)
        a2, b2 = spawn(3, 2)
        assert a1.random() == a2.random()
        assert b1.random() == b2.random()
        assert a1.random() != b1.random()

    def test_spawn_from_generator_reproducible_from_parent(self):
        children1 = spawn(np.random.default_rng(9), 3)
        children2 = spawn(np.random.default_rng(9), 3)
        for c1, c2 in zip(children1, children2):
            assert c1.random() == c2.random()

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn(0, -1)

    def test_spawn_many_labels(self):
        gens = spawn_many(1, ["failures", "accesses"])
        assert set(gens) == {"failures", "accesses"}
        assert gens["failures"].random() != gens["accesses"].random()


class TestStreamFor:
    def test_coordinate_determinism(self):
        assert stream_for(5, 2).random() == stream_for(5, 2).random()

    def test_coordinates_independent_of_order(self):
        """Batch k's stream must not depend on other batches existing."""
        direct = stream_for(5, 7).random()
        _ = stream_for(5, 0), stream_for(5, 3)
        assert stream_for(5, 7).random() == direct

    def test_distinct_coordinates_distinct_streams(self):
        values = {stream_for(1, k).random() for k in range(20)}
        assert len(values) == 20

    def test_multi_index(self):
        assert stream_for(2, 1, 4).random() == stream_for(2, 1, 4).random()
        assert stream_for(2, 1, 4).random() != stream_for(2, 4, 1).random()

    def test_rejects_generator_input(self):
        with pytest.raises(TypeError):
            stream_for(np.random.default_rng(0), 1)

    def test_iter_streams(self):
        it = iter_streams(11)
        first = next(it)
        second = next(it)
        assert first.random() != second.random()
        assert next(iter_streams(11)).random() == stream_for(11, 0).random()
