"""Edge-case tests for the simulation engine."""

import numpy as np
import pytest

from repro.protocols.majority import MajorityConsensusProtocol
from repro.simulation.config import SimulationConfig
from repro.simulation.engine import SimulationEngine, simulate_batch
from repro.simulation.workload import AccessWorkload
from repro.topology.generators import ring
from repro.topology.model import Topology


def cfg_for(topo, **kw):
    defaults = dict(
        warmup_accesses=0.0,
        accesses_per_batch=1_000.0,
        n_batches=1,
        seed=0,
    )
    defaults.update(kw)
    return SimulationConfig.paper_like(topo, alpha=0.5, **defaults)


class TestDegenerateNetworks:
    def test_single_link_network(self):
        topo = Topology(2, [(0, 1)])
        res = simulate_batch(cfg_for(topo), MajorityConsensusProtocol(2))
        assert 0.0 <= res.availability <= 1.0

    def test_linkless_network(self):
        """Isolated sites: T = 3, majority needs q_r = 1, q_w = 3 —
        writes never succeed, reads succeed iff the site is up."""
        topo = Topology(3, [])
        res = simulate_batch(
            cfg_for(topo, accesses_per_batch=20_000.0),
            MajorityConsensusProtocol(3),
        )
        assert res.read_availability == pytest.approx(0.96, abs=0.02)
        assert res.write_availability == 0.0

    def test_zero_vote_sites_never_grant_alone(self):
        """A zero-vote site's own component (when isolated) has 0 votes."""
        topo = Topology(3, [(0, 1), (1, 2)], votes=[1, 1, 0])
        res = simulate_batch(
            cfg_for(topo, accesses_per_batch=5_000.0),
            MajorityConsensusProtocol(2),
        )
        assert 0.0 <= res.availability <= 1.0


class TestExtremeParameters:
    def test_nearly_no_failures(self):
        topo = ring(7)
        cfg = SimulationConfig(
            topology=topo,
            workload=AccessWorkload.uniform(7, 0.5),
            mean_time_to_failure=1e9,
            mean_time_to_repair=1.0,
            warmup_accesses=0.0,
            accesses_per_batch=2_000.0,
            n_batches=1,
            seed=1,
        )
        res = simulate_batch(cfg, MajorityConsensusProtocol(7))
        assert res.availability == pytest.approx(1.0, abs=1e-6)
        assert res.n_events == 0

    def test_failure_storm(self):
        """mttr >> mttf: the network is almost always dark, availability
        near zero, and the engine still terminates cleanly."""
        topo = ring(5)
        cfg = SimulationConfig(
            topology=topo,
            workload=AccessWorkload.uniform(5, 0.5),
            mean_time_to_failure=0.5,
            mean_time_to_repair=50.0,
            warmup_accesses=0.0,
            accesses_per_batch=2_000.0,
            n_batches=1,
            initial_state="stationary",
            seed=2,
        )
        res = simulate_batch(cfg, MajorityConsensusProtocol(5))
        assert res.availability < 0.05

    def test_tiny_batch(self):
        topo = ring(5)
        res = simulate_batch(
            cfg_for(topo, accesses_per_batch=1.0),
            MajorityConsensusProtocol(5),
        )
        assert res.measured_time > 0
        # Possibly zero accesses sampled; availability must not crash.
        assert 0.0 <= res.availability <= 1.0

    def test_warmup_only_boundary(self):
        """Warm-up boundary inside a long epoch must split accounting
        exactly: measured time equals batch_time regardless."""
        topo = ring(5)
        cfg = cfg_for(topo, warmup_accesses=777.0, accesses_per_batch=333.0)
        res = simulate_batch(cfg, MajorityConsensusProtocol(5))
        assert res.measured_time == pytest.approx(cfg.batch_time)


class TestInfallibleComponents:
    def test_infallible_links_only_site_events(self):
        topo = ring(6)
        cfg = SimulationConfig(
            topology=topo,
            workload=AccessWorkload.uniform(6, 0.5),
            mean_time_to_failure=10.0,
            mean_time_to_repair=1.0,
            warmup_accesses=0.0,
            accesses_per_batch=3_000.0,
            n_batches=1,
            fallible_links=np.zeros(6, dtype=bool),
            seed=3,
        )
        engine = SimulationEngine(cfg, MajorityConsensusProtocol(6), record_trace=True)
        batch = engine.run_batch(0)
        kinds = set(batch.trace.counts_by_kind())
        assert kinds <= {"site_fail", "site_repair"}

    def test_everything_infallible(self):
        topo = ring(4)
        cfg = SimulationConfig(
            topology=topo,
            workload=AccessWorkload.uniform(4, 0.5),
            warmup_accesses=0.0,
            accesses_per_batch=500.0,
            n_batches=1,
            fallible_sites=np.zeros(4, dtype=bool),
            fallible_links=np.zeros(4, dtype=bool),
            seed=4,
        )
        res = simulate_batch(cfg, MajorityConsensusProtocol(4))
        assert res.availability == 1.0
        assert res.n_events == 0
        assert res.surv_read == 1.0
