"""Process-pool fan-out: bitwise determinism and telemetry reconciliation.

The contract (DESIGN.md §8): every batch derives its random streams from
``(config.seed, batch_index)`` alone and outcomes aggregate in batch
index order, so ``n_workers`` must be operationally invisible — ACC,
SURV, and the pooled densities are *bitwise* identical for any worker
count, and merged audit totals still reconcile exactly with ACC.
"""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.experiments.paper import TEST_SCALE
from repro.protocols.majority import MajorityConsensusProtocol
from repro.simulation.runner import run_simulation
from repro.telemetry.audit import GRANTED
from repro.telemetry.recorder import Telemetry

pytestmark = pytest.mark.slow


def _config(seed=0):
    return TEST_SCALE.config(2, alpha=0.5, seed=seed)


def _protocol(config):
    return MajorityConsensusProtocol(config.topology.total_votes)


@pytest.fixture(scope="module")
def serial_and_parallel():
    config = _config()
    serial = run_simulation(config, _protocol(config),
                            telemetry=Telemetry(), n_workers=1)
    parallel = run_simulation(config, _protocol(config),
                              telemetry=Telemetry(), n_workers=4)
    return serial, parallel


class TestBitwiseDeterminism:
    def test_acc_identical(self, serial_and_parallel):
        serial, parallel = serial_and_parallel
        assert serial.availability.values == parallel.availability.values
        assert serial.read_availability.values == parallel.read_availability.values
        assert serial.write_availability.values == parallel.write_availability.values

    def test_surv_identical(self, serial_and_parallel):
        serial, parallel = serial_and_parallel
        assert serial.surv_read.values == parallel.surv_read.values
        assert serial.surv_write.values == parallel.surv_write.values

    def test_pooled_densities_identical(self, serial_and_parallel):
        serial, parallel = serial_and_parallel
        np.testing.assert_array_equal(
            serial.density_matrix("time"), parallel.density_matrix("time"))
        np.testing.assert_array_equal(
            serial.density_matrix("access"), parallel.density_matrix("access"))
        np.testing.assert_array_equal(
            serial.max_component_density(), parallel.max_component_density())


class TestTelemetryReconciliation:
    def test_merged_audit_totals_reconcile_with_acc(self, serial_and_parallel):
        _, parallel = serial_and_parallel
        snapshot = parallel.telemetry
        assert snapshot is not None
        granted = sum(b.accesses_granted for b in parallel.batches)
        submitted = sum(b.accesses_submitted for b in parallel.batches)
        assert snapshot.audit_volume(reason=GRANTED) == pytest.approx(
            granted, abs=1e-9)
        assert snapshot.audit_volume() == pytest.approx(submitted, abs=1e-9)
        assert snapshot.audit_availability() == pytest.approx(
            granted / submitted, abs=1e-12)

    def test_merged_totals_equal_serial_totals(self, serial_and_parallel):
        serial, parallel = serial_and_parallel
        serial_totals = {(e["op"], e["reason"]): e["volume"]
                         for e in serial.telemetry.audit_totals}
        parallel_totals = {(e["op"], e["reason"]): e["volume"]
                           for e in parallel.telemetry.audit_totals}
        assert set(serial_totals) == set(parallel_totals)
        for key, volume in serial_totals.items():
            assert parallel_totals[key] == pytest.approx(volume, abs=1e-9)

    def test_merged_meta_records_worker_count(self, serial_and_parallel):
        _, parallel = serial_and_parallel
        assert parallel.telemetry.meta["n_workers"] == 4
        # One snapshot per batch plus the dispatcher's own (root span).
        assert parallel.telemetry.meta["merged_from"] == len(parallel.batches) + 1


class TestParallelPlumbing:
    def test_change_observer_rejected_in_parallel_mode(self):
        config = _config()
        with pytest.raises(SimulationError):
            run_simulation(config, _protocol(config), n_workers=2,
                           change_observer=lambda now, tracker, proto: None)

    def test_invalid_worker_count(self):
        config = _config()
        with pytest.raises(SimulationError):
            run_simulation(config, _protocol(config), n_workers=0)

    def test_parallel_without_telemetry(self):
        config = _config()
        result = run_simulation(config, _protocol(config), n_workers=2)
        assert result.telemetry is None
        assert result.n_batches == config.n_batches


class TestParallelChaos:
    def test_report_matches_serial(self):
        from repro.faults.chaos import run_chaos_campaign
        from repro.faults.monitor import InvariantMonitor

        config = _config()
        serial_monitor, parallel_monitor = InvariantMonitor(), InvariantMonitor()
        serial = run_chaos_campaign(config, _protocol(config), n_batches=3,
                                    monitor=serial_monitor)
        parallel = run_chaos_campaign(config, _protocol(config), n_batches=3,
                                      monitor=parallel_monitor, n_workers=3)
        assert serial.passed == parallel.passed
        assert serial.availability() == parallel.availability()
        assert serial_monitor.checks_run == parallel_monitor.checks_run
        assert len(serial.violations) == len(parallel.violations)

    def test_violations_merge_in_batch_order(self):
        from repro.faults.chaos import run_chaos_campaign, unchecked_assignment
        from repro.faults.monitor import InvariantMonitor
        from repro.protocols.quorum_consensus import QuorumConsensusProtocol

        config = _config()
        T = config.topology.total_votes
        monitor = InvariantMonitor()
        report = run_chaos_campaign(
            config, QuorumConsensusProtocol(unchecked_assignment(T, 1, T // 2)),
            n_batches=2, monitor=monitor, n_workers=2)
        assert not report.passed
        batch_ids = [v.batch_index for v in report.violations]
        assert batch_ids == sorted(batch_ids)
