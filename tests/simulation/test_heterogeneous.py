"""Tests for heterogeneous (per-component) failure parameters."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.protocols.majority import MajorityConsensusProtocol
from repro.simulation.config import SimulationConfig
from repro.simulation.engine import simulate_batch
from repro.simulation.processes import reliability_to_repair_time
from repro.simulation.workload import AccessWorkload
from repro.topology.generators import ring


class TestHeterogeneousConfig:
    def test_vector_parameters_accepted(self):
        topo = ring(5)
        n = topo.n_sites + topo.n_links
        cfg = SimulationConfig(
            topology=topo,
            workload=AccessWorkload.uniform(5, 0.5),
            mean_time_to_failure=np.full(n, 100.0),
            mean_time_to_repair=np.full(n, 5.0),
        )
        rel = cfg.component_reliability
        assert isinstance(rel, np.ndarray)
        np.testing.assert_allclose(rel, 100.0 / 105.0)

    def test_wrong_vector_length_rejected(self):
        topo = ring(5)
        with pytest.raises(SimulationError):
            SimulationConfig(
                topology=topo,
                workload=AccessWorkload.uniform(5, 0.5),
                mean_time_to_failure=np.full(3, 100.0),
            )

    def test_non_positive_rejected(self):
        topo = ring(5)
        n = topo.n_sites + topo.n_links
        bad = np.full(n, 100.0)
        bad[2] = 0.0
        with pytest.raises(SimulationError):
            SimulationConfig(
                topology=topo,
                workload=AccessWorkload.uniform(5, 0.5),
                mean_time_to_failure=bad,
            )

    def test_scalar_reliability_still_scalar(self):
        cfg = SimulationConfig.paper_like(ring(5), alpha=0.5)
        assert isinstance(cfg.component_reliability, float)


class TestHeterogeneousSimulation:
    def test_flaky_site_observed_down_more(self):
        """Site 0 gets mttf 5 vs 500 elsewhere: its empirical down mass
        (component votes = 0) must dwarf the others'."""
        topo = ring(6)
        n = topo.n_sites + topo.n_links
        mttf = np.full(n, 500.0)
        mttf[0] = 5.0
        cfg = SimulationConfig(
            topology=topo,
            workload=AccessWorkload.uniform(6, 0.5),
            mean_time_to_failure=mttf,
            mean_time_to_repair=reliability_to_repair_time(0.96, 500.0),
            warmup_accesses=0.0,
            accesses_per_batch=30_000.0,
            n_batches=1,
            initial_state="stationary",
            seed=4,
        )
        batch = simulate_batch(cfg, MajorityConsensusProtocol(6))
        matrix = batch.density_time.density_matrix()
        assert matrix[0, 0] > 3 * matrix[1:, 0].max()

    def test_stationary_start_respects_heterogeneity(self):
        """With mttf 5 / mttr 20 the flaky site is up only 20% of the
        time; the stationary-start density must reflect that."""
        topo = ring(6)
        n = topo.n_sites + topo.n_links
        mttf = np.full(n, 500.0)
        mttr = np.full(n, 500.0 / 24.0)
        mttf[0] = 5.0
        mttr[0] = 20.0
        cfg = SimulationConfig(
            topology=topo,
            workload=AccessWorkload.uniform(6, 0.5),
            mean_time_to_failure=mttf,
            mean_time_to_repair=mttr,
            warmup_accesses=0.0,
            accesses_per_batch=40_000.0,
            n_batches=1,
            initial_state="stationary",
            seed=5,
        )
        batch = simulate_batch(cfg, MajorityConsensusProtocol(6))
        down_mass = batch.density_time.density_matrix()[0, 0]
        assert down_mass == pytest.approx(0.8, abs=0.06)
