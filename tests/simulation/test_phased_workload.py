"""Tests for the phased (time-varying) workload."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.protocols.majority import MajorityConsensusProtocol
from repro.simulation.config import SimulationConfig
from repro.simulation.engine import simulate_batch
from repro.simulation.workload import AccessWorkload, PhasedWorkload
from repro.topology.generators import ring


def two_phase(n=7, alpha1=0.0, alpha2=1.0, switch=50.0):
    return PhasedWorkload([
        (0.0, AccessWorkload.uniform(n, alpha1)),
        (switch, AccessWorkload.uniform(n, alpha2)),
    ])


class TestPhasedWorkloadUnit:
    def test_phase_lookup(self):
        w = two_phase(switch=10.0)
        assert w.at(0.0).alpha == 0.0
        assert w.at(9.99).alpha == 0.0
        assert w.at(10.0).alpha == 1.0
        assert w.at(1e9).alpha == 1.0

    def test_negative_time_rejected(self):
        with pytest.raises(SimulationError):
            two_phase().at(-1.0)

    def test_validation(self):
        wl = AccessWorkload.uniform(5, 0.5)
        with pytest.raises(SimulationError):
            PhasedWorkload([])
        with pytest.raises(SimulationError):
            PhasedWorkload([(1.0, wl)])  # must start at 0
        with pytest.raises(SimulationError):
            PhasedWorkload([(0.0, wl), (0.0, wl)])  # not increasing
        with pytest.raises(SimulationError):
            PhasedWorkload([(0.0, wl), (1.0, AccessWorkload.uniform(4, 0.5))])
        with pytest.raises(SimulationError):
            PhasedWorkload(
                [(0.0, wl), (1.0, AccessWorkload.uniform(5, 0.5, rate_per_site=2.0))]
            )

    def test_properties_delegate_to_first_phase(self):
        w = two_phase(n=6)
        assert w.n_sites == 6
        assert w.aggregate_rate == 6.0
        assert w.alpha == 0.0
        assert w.n_phases == 2

    def test_with_alpha_rewrites_all_phases(self):
        w = two_phase().with_alpha(0.3)
        assert w.at(0.0).alpha == 0.3
        assert w.at(1e6).alpha == 0.3


class TestPhasedInEngine:
    def test_read_write_mix_switches_at_phase_boundary(self):
        n = 7
        # Phase 1 (first 50 time units = ~350 accesses): all writes.
        # Phase 2: all reads.
        workload = two_phase(n=n, alpha1=0.0, alpha2=1.0, switch=50.0)
        cfg = SimulationConfig(
            topology=ring(n),
            workload=workload,
            warmup_accesses=0.0,
            accesses_per_batch=700.0,  # 100 time units: 50 per phase
            n_batches=1,
            seed=5,
        )
        res = simulate_batch(cfg, MajorityConsensusProtocol(n))
        # Roughly half the accesses are writes (phase 1), half reads.
        frac_reads = res.reads_submitted / res.accesses_submitted
        assert frac_reads == pytest.approx(0.5, abs=0.1)

    def test_phase_clock_starts_after_warmup(self):
        n = 7
        workload = two_phase(n=n, alpha1=1.0, alpha2=0.0, switch=1e9)
        cfg = SimulationConfig(
            topology=ring(n),
            workload=workload,
            warmup_accesses=700.0,  # 100 time units of warm-up
            accesses_per_batch=700.0,
            n_batches=1,
            seed=6,
        )
        res = simulate_batch(cfg, MajorityConsensusProtocol(n))
        # If phases were measured from absolute time 0 the warm-up would
        # not matter; they are measured from the warm-up end, so the
        # entire measured window sits in phase 1 (all reads).
        assert res.writes_submitted == 0

    def test_constant_workload_unaffected(self):
        n = 7
        cfg = SimulationConfig(
            topology=ring(n),
            workload=AccessWorkload.uniform(n, 0.5),
            warmup_accesses=0.0,
            accesses_per_batch=2_000.0,
            n_batches=1,
            seed=7,
        )
        res = simulate_batch(cfg, MajorityConsensusProtocol(n))
        assert res.reads_submitted > 0 and res.writes_submitted > 0
