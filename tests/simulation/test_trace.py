"""Tests for trace recording and replay."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.protocols.majority import MajorityConsensusProtocol
from repro.protocols.quorum_consensus import QuorumConsensusProtocol
from repro.protocols.read_one_write_all import ReadOneWriteAllProtocol
from repro.quorum.assignment import QuorumAssignment
from repro.simulation.config import SimulationConfig
from repro.simulation.engine import SimulationEngine
from repro.simulation.events import Event, EventKind
from repro.simulation.trace import (
    TRACE_SCHEMA_VERSION,
    NetworkTrace,
    TraceReplayer,
)
from repro.topology.generators import ring


def recorded_batch(n=9, seed=8, accesses=5_000.0):
    cfg = SimulationConfig.paper_like(
        ring(n),
        alpha=0.5,
        warmup_accesses=0.0,
        accesses_per_batch=accesses,
        n_batches=1,
        seed=seed,
    )
    engine = SimulationEngine(cfg, MajorityConsensusProtocol(n), record_trace=True)
    return cfg, engine.run_batch(0)


class TestRecording:
    def test_engine_records_trace(self):
        cfg, batch = recorded_batch()
        assert batch.trace is not None
        assert len(batch.trace) == batch.n_events
        counts = batch.trace.counts_by_kind()
        assert counts.get("site_fail", 0) > 0 or counts.get("link_fail", 0) > 0

    def test_no_trace_by_default(self):
        cfg = SimulationConfig.paper_like(
            ring(5), alpha=0.5, warmup_accesses=0.0,
            accesses_per_batch=500.0, n_batches=1, seed=1,
        )
        batch = SimulationEngine(cfg, MajorityConsensusProtocol(5)).run_batch(0)
        assert batch.trace is None

    def test_record_rejects_out_of_order(self):
        trace = NetworkTrace.empty(ring(4))
        trace.record(Event(5.0, 0, EventKind.SITE_FAIL, 1))
        with pytest.raises(SimulationError):
            trace.record(Event(4.0, 1, EventKind.SITE_REPAIR, 1))

    def test_record_rejects_access_events(self):
        trace = NetworkTrace.empty(ring(4))
        with pytest.raises(SimulationError):
            trace.record(Event(1.0, 0, EventKind.ACCESS, 0))

    def test_dict_round_trip(self):
        cfg, batch = recorded_batch(accesses=1_000.0)
        again = NetworkTrace.from_dict(batch.trace.to_dict())
        assert again.events == batch.trace.events
        np.testing.assert_array_equal(again.initial_site_up, batch.trace.initial_site_up)

    def test_to_dict_declares_schema_version(self):
        trace = NetworkTrace.empty(ring(5))
        assert trace.to_dict()["schema"] == TRACE_SCHEMA_VERSION

    def test_empty_events_round_trip_preserves_sources(self):
        trace = NetworkTrace.empty(ring(5))
        again = NetworkTrace.from_dict(trace.to_dict())
        assert again.events == [] and again.sources == []
        # The round-tripped trace must stay recordable with correct
        # provenance alignment.
        again.record(Event(1.0, 0, EventKind.SITE_FAIL, 0, source="chaos"))
        assert again.counts_by_source() == {"chaos": 1}

    def test_v1_payload_without_sources_accepted_and_aligned(self):
        trace = NetworkTrace.empty(ring(5))
        trace.record(Event(1.0, 0, EventKind.SITE_FAIL, 0))
        payload = trace.to_dict()
        del payload["sources"]
        del payload["schema"]  # v1 payloads predate both keys
        again = NetworkTrace.from_dict(payload)
        assert again.sources == ["stochastic"]
        # A later record lands at the right position, not padded wrongly.
        again.record(Event(2.0, 1, EventKind.SITE_FAIL, 1, source="chaos"))
        assert again.sources == ["stochastic", "chaos"]
        assert [e[0] for e in again.chaos_events()] == [2.0]

    def test_unknown_schema_rejected(self):
        payload = NetworkTrace.empty(ring(5)).to_dict()
        payload["schema"] = 99
        with pytest.raises(SimulationError, match="schema version 99"):
            NetworkTrace.from_dict(payload)

    def test_excess_sources_rejected(self):
        payload = NetworkTrace.empty(ring(5)).to_dict()
        payload["sources"] = ["chaos"]
        with pytest.raises(SimulationError, match="sources"):
            NetworkTrace.from_dict(payload)

    def test_from_dict_missing_key(self):
        with pytest.raises(SimulationError):
            NetworkTrace.from_dict({"n_sites": 3})


class TestReplay:
    def test_epochs_partition_the_horizon(self):
        cfg, batch = recorded_batch(accesses=2_000.0)
        replayer = TraceReplayer(cfg.topology, batch.trace)
        horizon = batch.trace.duration()
        last_end = 0.0
        total = 0.0
        for start, end, tracker in replayer.epochs(horizon):
            assert start == pytest.approx(last_end)
            assert end >= start
            total += end - start
            last_end = end
        assert total == pytest.approx(horizon)

    def test_replay_availability_matches_engine(self):
        """Replaying the recorded history must reproduce the engine's
        time-weighted availability for the same protocol."""
        n = 9
        cfg = SimulationConfig.paper_like(
            ring(n), alpha=0.5, warmup_accesses=0.0,
            accesses_per_batch=20_000.0, n_batches=1,
            accounting="expected", seed=12,
        )
        engine = SimulationEngine(cfg, MajorityConsensusProtocol(n), record_trace=True)
        batch = engine.run_batch(0)
        replayer = TraceReplayer(cfg.topology, batch.trace)
        # Replay horizon = measurement window.
        replayed = _availability_over(replayer, MajorityConsensusProtocol(n), 0.5,
                                      horizon=batch.measured_time)
        assert replayed == pytest.approx(batch.availability, abs=1e-9)

    def test_paired_protocol_comparison(self):
        """Two protocols over ONE failure history: ROWA must beat majority
        at alpha = 1 epoch-for-epoch (reads need 1 vote, not a majority)."""
        cfg, batch = recorded_batch(accesses=10_000.0)
        replayer = TraceReplayer(cfg.topology, batch.trace)
        n = cfg.topology.n_sites
        rowa = replayer.availability_of(ReadOneWriteAllProtocol(n), alpha=1.0)
        majority = replayer.availability_of(MajorityConsensusProtocol(n), alpha=1.0)
        assert rowa >= majority

    def test_topology_mismatch_rejected(self):
        cfg, batch = recorded_batch()
        with pytest.raises(SimulationError):
            TraceReplayer(ring(11), batch.trace)

    def test_alpha_validated(self):
        cfg, batch = recorded_batch(accesses=500.0)
        replayer = TraceReplayer(cfg.topology, batch.trace)
        with pytest.raises(SimulationError):
            replayer.availability_of(MajorityConsensusProtocol(9), alpha=1.5)


def _availability_over(replayer, protocol, alpha, horizon):
    protocol.reset()
    total = weighted = 0.0
    n = replayer.topology.n_sites
    for start, end, tracker in replayer.epochs(horizon):
        protocol.on_network_change(tracker)
        read_mask, write_mask = protocol.grant_masks(tracker)
        duration = end - start
        weighted += duration * (
            alpha * read_mask.sum() / n + (1 - alpha) * write_mask.sum() / n
        )
        total += duration
    return weighted / total
