"""The shared-memory pool transport: slots, layout, fallback, stats."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.protocols.estimator import OnlineDensityEstimator
from repro.protocols.majority import MajorityConsensusProtocol
from repro.simulation.config import SimulationConfig
from repro.simulation.engine import BatchResult
from repro.simulation.parallel import (
    TRANSPORT_ENV,
    resolve_transport,
    run_batches_parallel,
)
from repro.simulation.shm import BatchSlotLayout, SlotPool, shm_supported
from repro.topology.generators import ring


def _batch_result(n_sites=5, total_votes=5, seed=3):
    rng = np.random.default_rng(seed)
    density_time = OnlineDensityEstimator(n_sites, total_votes)
    density_access = OnlineDensityEstimator(n_sites, total_votes)
    density_time._weights[:] = rng.random((n_sites, total_votes + 1))
    density_access._weights[:] = rng.random((n_sites, total_votes + 1))
    return BatchResult(
        reads_submitted=101.5, reads_granted=99.25,
        writes_submitted=50.0, writes_granted=48.75,
        surv_read=0.993, surv_write=0.981,
        measured_time=1234.5, n_epochs=42, n_events=137,
        density_time=density_time, density_access=density_access,
        max_votes_time=rng.random(total_votes + 1),
    )


class TestBatchSlotLayout:
    def test_slot_sizing(self):
        layout = BatchSlotLayout(n_sites=5, total_votes=5)
        assert layout.density_floats == 5 * 6
        assert layout.slot_floats == 9 + 2 * 30 + 6
        assert layout.slot_bytes == layout.slot_floats * 8

    def test_pack_unpack_is_bitwise(self):
        layout = BatchSlotLayout(n_sites=5, total_votes=5)
        batch = _batch_result()
        view = np.zeros(layout.slot_floats)
        layout.pack(view, batch)
        rebuilt = layout.unpack(view)
        assert rebuilt.reads_submitted == batch.reads_submitted
        assert rebuilt.writes_granted == batch.writes_granted
        assert rebuilt.surv_read == batch.surv_read
        assert rebuilt.measured_time == batch.measured_time
        assert rebuilt.n_epochs == batch.n_epochs
        assert rebuilt.n_events == batch.n_events
        np.testing.assert_array_equal(
            rebuilt.density_time._weights, batch.density_time._weights)
        np.testing.assert_array_equal(
            rebuilt.density_access._weights, batch.density_access._weights)
        np.testing.assert_array_equal(
            rebuilt.max_votes_time, batch.max_votes_time)
        assert rebuilt.trace is None

    def test_unpack_copies_out_of_the_slot(self):
        layout = BatchSlotLayout(n_sites=5, total_votes=5)
        view = np.zeros(layout.slot_floats)
        layout.pack(view, _batch_result())
        rebuilt = layout.unpack(view)
        before = rebuilt.density_time._weights.copy()
        view[:] = -1.0  # the pool is about to be unlinked
        np.testing.assert_array_equal(rebuilt.density_time._weights, before)


@pytest.mark.skipif(not shm_supported(), reason="no shared memory here")
class TestSlotPool:
    def test_create_attach_roundtrip(self):
        pool = SlotPool.create(slot_floats=16, n_slots=3)
        try:
            pool.slot(1)[:] = np.arange(16.0)
            peer = SlotPool.attach(pool.name, 16, 3)
            np.testing.assert_array_equal(peer.slot(1), np.arange(16.0))
            assert np.all(peer.slot(0) == 0.0)
            peer.close()
        finally:
            pool.close()

    def test_out_of_range_slot_rejected(self):
        pool = SlotPool.create(slot_floats=4, n_slots=2)
        try:
            with pytest.raises(SimulationError, match="slot index"):
                pool.slot(2)
            with pytest.raises(SimulationError, match="slot index"):
                pool.slot(-1)
        finally:
            pool.close()

    def test_nonpositive_dimensions_rejected(self):
        with pytest.raises(SimulationError, match="positive dimensions"):
            SlotPool.create(slot_floats=0, n_slots=2)


class TestResolveTransport:
    def test_default_is_shm_when_supported(self, monkeypatch):
        monkeypatch.delenv(TRANSPORT_ENV, raising=False)
        assert resolve_transport() in ("shm", "pickle")

    def test_env_forces_pickle(self, monkeypatch):
        monkeypatch.setenv(TRANSPORT_ENV, "pickle")
        assert resolve_transport() == "pickle"

    def test_argument_overrides_env(self, monkeypatch):
        monkeypatch.setenv(TRANSPORT_ENV, "pickle")
        if shm_supported():
            assert resolve_transport("shm") == "shm"

    def test_unknown_transport_rejected(self):
        with pytest.raises(SimulationError, match="unknown pool transport"):
            resolve_transport("carrier-pigeon")


class TestTransportEquivalence:
    """SHM and pickle transports produce bitwise-identical outcomes."""

    def _config(self):
        return SimulationConfig.paper_like(
            ring(9), alpha=0.5, warmup_accesses=50.0,
            accesses_per_batch=300.0, n_batches=3, seed=11,
        )

    def _run(self, transport, stats=None):
        config = self._config()
        protocol = MajorityConsensusProtocol(config.topology.total_votes)
        return run_batches_parallel(
            config, protocol, range(config.n_batches), n_workers=2,
            transport=transport, transport_stats=stats,
        )

    @pytest.mark.skipif(not shm_supported(), reason="no shared memory here")
    @pytest.mark.slow
    def test_shm_matches_pickle_bitwise(self):
        shm_stats, pickle_stats = {}, {}
        shm_outcomes = self._run("shm", shm_stats)
        pickle_outcomes = self._run("pickle", pickle_stats)
        assert shm_stats["transport"] == "shm"
        assert pickle_stats["transport"] == "pickle"
        for a, b in zip(shm_outcomes, pickle_outcomes):
            assert a.batch_index == b.batch_index
            assert a.batch.reads_granted == b.batch.reads_granted
            assert a.batch.surv_write == b.batch.surv_write
            np.testing.assert_array_equal(
                a.batch.density_time._weights, b.batch.density_time._weights)
            np.testing.assert_array_equal(
                a.batch.density_access._weights,
                b.batch.density_access._weights)
            np.testing.assert_array_equal(
                a.batch.max_votes_time, b.batch.max_votes_time)

    @pytest.mark.skipif(not shm_supported(), reason="no shared memory here")
    @pytest.mark.slow
    def test_shm_slashes_pickled_bytes(self):
        shm_stats, pickle_stats = {}, {}
        self._run("shm", shm_stats)
        self._run("pickle", pickle_stats)
        assert shm_stats["n_batches"] == pickle_stats["n_batches"] == 3
        assert shm_stats["pickled_bytes"] < 0.1 * pickle_stats["pickled_bytes"]

    @pytest.mark.slow
    def test_env_knob_reaches_the_pool(self, monkeypatch):
        monkeypatch.setenv(TRANSPORT_ENV, "pickle")
        stats = {}
        self._run(None, stats)
        assert stats["transport"] == "pickle"
