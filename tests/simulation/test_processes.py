"""Unit tests for the failure/repair processes."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.simulation.events import EventKind, EventQueue
from repro.simulation.processes import FailureProcesses, reliability_to_repair_time
from repro.topology.generators import ring


class TestReliabilityConversion:
    def test_paper_values(self):
        # reliability .96 at mu_f = 128 -> mu_r = 128/24.
        assert reliability_to_repair_time(0.96, 128.0) == pytest.approx(128.0 / 24.0)

    def test_round_trip(self):
        mu_f = 50.0
        for rel in (0.5, 0.9, 0.99):
            mu_r = reliability_to_repair_time(rel, mu_f)
            assert mu_f / (mu_f + mu_r) == pytest.approx(rel)

    def test_bounds(self):
        with pytest.raises(SimulationError):
            reliability_to_repair_time(1.0, 10.0)
        with pytest.raises(SimulationError):
            reliability_to_repair_time(0.0, 10.0)
        with pytest.raises(SimulationError):
            reliability_to_repair_time(0.9, 0.0)


class TestFailureProcesses:
    def test_component_indexing(self):
        topo = ring(5)
        procs = FailureProcesses(topo, 10.0, 1.0, seed=0)
        assert procs.n_components == 10
        assert procs.is_site_index(4)
        assert not procs.is_site_index(5)
        assert procs.link_id_of(5) == 0
        with pytest.raises(SimulationError):
            procs.link_id_of(2)

    def test_stationary_reliability(self):
        topo = ring(4)
        procs = FailureProcesses(topo, 96.0, 4.0, seed=0)
        np.testing.assert_allclose(procs.stationary_reliability(), 0.96)

    def test_per_component_parameters(self):
        topo = ring(3)
        mttf = np.arange(1.0, 7.0)
        procs = FailureProcesses(topo, mttf, 1.0, seed=0)
        np.testing.assert_allclose(procs.mttf, mttf)

    def test_bad_parameter_shapes(self):
        topo = ring(3)
        with pytest.raises(SimulationError):
            FailureProcesses(topo, np.ones(5), 1.0)
        with pytest.raises(SimulationError):
            FailureProcesses(topo, -1.0, 1.0)

    def test_infallible_masks(self):
        topo = ring(4)
        procs = FailureProcesses(
            topo, 10.0, 1.0, seed=0,
            fallible_sites=np.array([True, False, True, True]),
            fallible_links=np.zeros(4, dtype=bool),
        )
        rel = procs.stationary_reliability()
        assert rel[1] == 1.0                     # infallible site
        np.testing.assert_allclose(rel[4:], 1.0)  # infallible links
        queue = EventQueue()
        procs.prime(queue)
        assert len(queue) == 3  # only the three fallible sites

    def test_prime_schedules_failures_for_everything(self):
        topo = ring(4)
        procs = FailureProcesses(topo, 10.0, 1.0, seed=1)
        queue = EventQueue()
        procs.prime(queue)
        assert len(queue) == 8
        kinds = {queue.pop().kind for _ in range(8)}
        assert kinds == {EventKind.SITE_FAIL, EventKind.LINK_FAIL}

    def test_failure_repair_alternation(self):
        topo = ring(3)
        procs = FailureProcesses(topo, 10.0, 1.0, seed=2)
        queue = EventQueue()
        procs.schedule_repair(queue, 5.0, EventKind.SITE_FAIL, 1)
        repair = queue.pop()
        assert repair.kind == EventKind.SITE_REPAIR
        assert repair.target == 1
        assert repair.time > 5.0
        procs.schedule_failure(queue, repair.time, repair.kind, repair.target)
        fail = queue.pop()
        assert fail.kind == EventKind.SITE_FAIL
        assert fail.time > repair.time

    def test_link_alternation(self):
        topo = ring(3)
        procs = FailureProcesses(topo, 10.0, 1.0, seed=3)
        queue = EventQueue()
        procs.schedule_repair(queue, 1.0, EventKind.LINK_FAIL, 2)
        assert queue.pop().kind == EventKind.LINK_REPAIR

    def test_deterministic_with_seed(self):
        topo = ring(4)
        q1, q2 = EventQueue(), EventQueue()
        FailureProcesses(topo, 10.0, 1.0, seed=7).prime(q1)
        FailureProcesses(topo, 10.0, 1.0, seed=7).prime(q2)
        for _ in range(8):
            assert q1.pop().time == q2.pop().time

    def test_empirical_uptime_fraction(self):
        """Long-run fraction of time up must match mttf/(mttf+mttr)."""
        topo = ring(3)
        procs = FailureProcesses(topo, 4.0, 1.0, seed=11)
        rng = procs.rng
        up_time = down_time = 0.0
        for _ in range(4000):
            up_time += rng.exponential(4.0)
            down_time += rng.exponential(1.0)
        assert up_time / (up_time + down_time) == pytest.approx(0.8, abs=0.01)
