"""Unit and statistical tests for the simulation engine."""

import numpy as np
import pytest

from repro.analytic.ring import ring_density
from repro.protocols.majority import MajorityConsensusProtocol
from repro.protocols.quorum_consensus import QuorumConsensusProtocol
from repro.protocols.read_one_write_all import ReadOneWriteAllProtocol
from repro.quorum.assignment import QuorumAssignment
from repro.simulation.config import SimulationConfig
from repro.simulation.engine import SimulationEngine, simulate_batch
from repro.topology.generators import ring


def make_config(n=7, alpha=0.5, **kw):
    defaults = dict(
        warmup_accesses=200.0,
        accesses_per_batch=3_000.0,
        n_batches=2,
        seed=0,
    )
    defaults.update(kw)
    return SimulationConfig.paper_like(ring(n), alpha=alpha, **defaults)


class TestBatchMechanics:
    def test_batch_result_bookkeeping(self):
        cfg = make_config()
        res = simulate_batch(cfg, MajorityConsensusProtocol(7))
        assert res.measured_time == pytest.approx(cfg.batch_time)
        assert res.n_epochs > 0
        assert res.n_events > 0
        assert 0.0 <= res.availability <= 1.0
        assert res.accesses_submitted > 0

    def test_deterministic_by_seed_and_batch(self):
        cfg = make_config(seed=42)
        a = simulate_batch(cfg, MajorityConsensusProtocol(7), batch_index=0)
        b = simulate_batch(cfg, MajorityConsensusProtocol(7), batch_index=0)
        assert a.reads_granted == b.reads_granted
        assert a.writes_granted == b.writes_granted
        assert a.n_events == b.n_events

    def test_batches_are_independent_streams(self):
        cfg = make_config(seed=42)
        a = simulate_batch(cfg, MajorityConsensusProtocol(7), batch_index=0)
        b = simulate_batch(cfg, MajorityConsensusProtocol(7), batch_index=1)
        assert a.reads_granted != b.reads_granted or a.n_events != b.n_events

    def test_batch_index_insensitive_to_other_batches(self):
        """Batch k's stream must not depend on running batches before it."""
        cfg = make_config(seed=13)
        engine = SimulationEngine(cfg, MajorityConsensusProtocol(7))
        direct = engine.run_batch(2)
        engine2 = SimulationEngine(cfg, MajorityConsensusProtocol(7))
        engine2.run_batch(0)
        engine2.run_batch(1)
        replay = engine2.run_batch(2)
        assert direct.reads_granted == replay.reads_granted

    def test_expected_mode_fractional_volumes(self):
        cfg = make_config(accounting="expected")
        res = simulate_batch(cfg, MajorityConsensusProtocol(7))
        assert res.accesses_submitted == pytest.approx(3_000.0, rel=1e-9)

    def test_alpha_extremes(self):
        for alpha in (0.0, 1.0):
            cfg = make_config(alpha=alpha)
            res = simulate_batch(cfg, MajorityConsensusProtocol(7))
            if alpha == 0.0:
                assert res.reads_submitted == 0
            else:
                assert res.writes_submitted == 0

    def test_change_observer_called(self):
        calls = []
        cfg = make_config()
        simulate_batch(
            cfg,
            MajorityConsensusProtocol(7),
            change_observer=lambda t, tracker, proto: calls.append(t),
        )
        assert len(calls) > 0
        assert calls == sorted(calls)


class TestStatisticalAgreement:
    def test_rowa_read_availability_is_site_reliability(self):
        """At q_r = 1 a read succeeds iff the submitting site is up, so
        read availability must equal the component reliability (paper,
        section 5.3)."""
        cfg = make_config(alpha=1.0, accesses_per_batch=20_000.0)
        res = simulate_batch(cfg, ReadOneWriteAllProtocol(7))
        assert res.read_availability == pytest.approx(cfg.component_reliability, abs=0.01)

    def test_time_density_matches_ring_closed_form(self):
        """The simulator's stationary component-vote distribution must
        converge to the analytic ring density — three independent pieces
        of machinery (failure processes, connectivity, closed form) meeting
        in one number."""
        cfg = make_config(accesses_per_batch=60_000.0)
        res = simulate_batch(cfg, MajorityConsensusProtocol(7))
        expected = ring_density(7, cfg.component_reliability, cfg.component_reliability)
        got = res.density_time.density_matrix().mean(axis=0)
        assert np.abs(got - expected).max() < 0.02

    def test_access_density_matches_time_density(self):
        """PASTA: Poisson accesses observe time averages."""
        cfg = make_config(accesses_per_batch=60_000.0)
        res = simulate_batch(cfg, MajorityConsensusProtocol(7))
        t = res.density_time.density_matrix()
        a = res.density_access.density_matrix()
        assert np.abs(t - a).max() < 0.02

    def test_acc_matches_figure1_algebra(self):
        """Directly-measured ACC must agree with availability computed
        from the run's own empirical density via the Figure-1 formula."""
        cfg = make_config(alpha=0.5, accesses_per_batch=60_000.0)
        q = QuorumAssignment.from_read_quorum(7, 2)
        res = simulate_batch(cfg, QuorumConsensusProtocol(q))
        from repro.quorum.availability import AvailabilityModel

        model = AvailabilityModel.from_density_matrix(res.density_time.density_matrix())
        predicted = float(model.availability(0.5, 2))
        assert res.availability == pytest.approx(predicted, abs=0.02)

    def test_sampled_and_expected_agree(self):
        cfg_s = make_config(alpha=0.5, accesses_per_batch=40_000.0, accounting="sampled")
        cfg_e = cfg_s.with_accounting("expected")
        res_s = simulate_batch(cfg_s, MajorityConsensusProtocol(7))
        res_e = simulate_batch(cfg_e, MajorityConsensusProtocol(7))
        assert res_s.availability == pytest.approx(res_e.availability, abs=0.02)

    def test_stationary_start_needs_no_warmup(self):
        """With a stationary initial state and ZERO warm-up, the measured
        density must still match the analytic stationary law — the
        all-up reset would be badly biased under these settings."""
        cfg = make_config(
            accesses_per_batch=60_000.0, warmup_accesses=0.0,
            initial_state="stationary",
        )
        res = simulate_batch(cfg, MajorityConsensusProtocol(7))
        expected = ring_density(7, cfg.component_reliability, cfg.component_reliability)
        got = res.density_time.density_matrix().mean(axis=0)
        assert np.abs(got - expected).max() < 0.02

    def test_all_up_start_without_warmup_is_biased(self):
        """Documents WHY the paper needs its warm-up: the same zero-warmup
        run from the all-up reset overestimates full-component mass."""
        cfg = make_config(accesses_per_batch=2_000.0, warmup_accesses=0.0)
        res = simulate_batch(cfg, MajorityConsensusProtocol(7))
        expected = ring_density(7, cfg.component_reliability, cfg.component_reliability)
        got = res.density_time.density_matrix().mean(axis=0)
        # Mass at v = 7 (everything up) must exceed stationary noticeably.
        assert got[7] > expected[7] + 0.03

    def test_surv_upper_bounds_acc_per_kind(self):
        """SURV(write) >= write ACC: if a write was granted somewhere, some
        site could write during that epoch."""
        cfg = make_config(alpha=0.5, accesses_per_batch=20_000.0)
        res = simulate_batch(cfg, MajorityConsensusProtocol(7))
        assert res.surv_write >= res.write_availability - 0.02
        assert res.surv_read >= res.read_availability - 0.02
