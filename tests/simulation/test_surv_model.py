"""Tests for the SURV optimization path (paper, footnote 3)."""

import numpy as np
import pytest

from repro.protocols.majority import MajorityConsensusProtocol
from repro.protocols.quorum_consensus import QuorumConsensusProtocol
from repro.quorum.assignment import QuorumAssignment
from repro.quorum.optimizer import optimal_read_quorum
from repro.simulation.config import SimulationConfig
from repro.simulation.runner import run_simulation
from repro.topology.generators import ring, ring_with_chords


def make_config(topo, alpha=0.5, accesses=30_000.0, seed=2):
    return SimulationConfig.paper_like(
        topo,
        alpha=alpha,
        warmup_accesses=0.0,
        accesses_per_batch=accesses,
        n_batches=2,
        initial_state="stationary",
        seed=seed,
    )


class TestMaxComponentDensity:
    def test_is_distribution(self):
        topo = ring(9)
        res = run_simulation(make_config(topo), MajorityConsensusProtocol(9))
        d = res.max_component_density()
        assert d.shape == (10,)
        assert d.sum() == pytest.approx(1.0)

    def test_stochastically_dominates_per_site_density(self):
        """The max component is at least as large as any site's component:
        its upper cumulative must dominate the mixed per-site one."""
        topo = ring(9)
        res = run_simulation(make_config(topo), MajorityConsensusProtocol(9))
        site = res.density_matrix("time").mean(axis=0)
        mx = res.max_component_density()
        site_upper = np.cumsum(site[::-1])[::-1]
        max_upper = np.cumsum(mx[::-1])[::-1]
        assert (max_upper >= site_upper - 1e-9).all()

    def test_max_zero_only_when_all_down(self):
        """Mass at 0 in the max density = P(every site down) — tiny."""
        topo = ring(9)
        res = run_simulation(make_config(topo), MajorityConsensusProtocol(9))
        assert res.max_component_density()[0] < 0.01


class TestSurvModelPredictions:
    @pytest.mark.parametrize("q_r", [1, 3, 4])
    def test_predicts_measured_surv(self, q_r):
        """SURV measured by the engine for a protocol must match the
        upper-cumulative prediction from the pooled max-component density."""
        topo = ring_with_chords(9, 1)
        cfg = make_config(topo, accesses=40_000.0)
        proto = QuorumConsensusProtocol(QuorumAssignment.from_read_quorum(9, q_r))
        res = run_simulation(cfg, proto)
        model = res.surv_model()
        pred_read = float(model.read_availability(q_r))
        pred_write = float(model.write_availability_at(q_r))
        assert res.surv_read.mean == pytest.approx(pred_read, abs=0.02)
        assert res.surv_write.mean == pytest.approx(pred_write, abs=0.02)

    def test_surv_optimum_is_never_below_acc_optimum_value(self):
        """SURV >= ACC pointwise, so the SURV-optimal value dominates."""
        topo = ring(15)
        res = run_simulation(make_config(topo, accesses=30_000.0),
                             MajorityConsensusProtocol(15))
        acc = optimal_read_quorum(res.availability_model(), 0.5)
        surv = optimal_read_quorum(res.surv_model(), 0.5)
        assert surv.availability >= acc.availability - 1e-9

    def test_surv_favors_larger_write_quorums_than_acc_on_rings(self):
        """SURV only needs ONE component to clear the quorum, so majority
        hurts it much less than it hurts ACC — the paper's observation
        that SURV favors protocols producing small distinguished
        components. Check the majority-edge gap."""
        topo = ring(15)
        res = run_simulation(make_config(topo, accesses=30_000.0),
                             MajorityConsensusProtocol(15))
        acc_curve = res.availability_model().curve(0.0)
        surv_curve = res.surv_model().curve(0.0)
        assert surv_curve[-1] > acc_curve[-1] + 0.05
