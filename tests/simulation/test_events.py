"""Unit tests for the event queue primitives."""

import pytest

from repro.errors import SimulationError
from repro.simulation.events import Event, EventKind, EventQueue


class TestEventKind:
    def test_classification(self):
        assert EventKind.SITE_FAIL.is_failure
        assert EventKind.LINK_FAIL.is_failure
        assert EventKind.SITE_REPAIR.is_repair
        assert EventKind.LINK_REPAIR.is_repair
        assert not EventKind.ACCESS.is_failure
        assert EventKind.SITE_FAIL.is_topology_change
        assert not EventKind.ACCESS.is_topology_change


class TestEvent:
    def test_validation(self):
        with pytest.raises(SimulationError):
            Event(-1.0, 0, EventKind.SITE_FAIL, 0)
        with pytest.raises(SimulationError):
            Event(1.0, 0, EventKind.SITE_FAIL, -2)

    def test_ordering_by_time_then_sequence(self):
        early = Event(1.0, 5, EventKind.SITE_FAIL, 0)
        late = Event(2.0, 1, EventKind.SITE_FAIL, 0)
        tie_a = Event(3.0, 1, EventKind.SITE_FAIL, 0)
        tie_b = Event(3.0, 2, EventKind.LINK_FAIL, 0)
        assert early < late
        assert tie_a < tie_b


class TestEventQueue:
    def test_pop_order(self):
        q = EventQueue()
        q.schedule(3.0, EventKind.SITE_FAIL, 1)
        q.schedule(1.0, EventKind.LINK_FAIL, 2)
        q.schedule(2.0, EventKind.SITE_REPAIR, 3)
        times = [q.pop().time for _ in range(3)]
        assert times == [1.0, 2.0, 3.0]

    def test_simultaneous_events_fifo(self):
        q = EventQueue()
        first = q.schedule(5.0, EventKind.SITE_FAIL, 1)
        second = q.schedule(5.0, EventKind.SITE_FAIL, 2)
        assert q.pop() is first
        assert q.pop() is second

    def test_peek_does_not_remove(self):
        q = EventQueue()
        q.schedule(1.0, EventKind.SITE_FAIL, 0)
        assert q.peek_time() == 1.0
        assert len(q) == 1

    def test_empty_queue_errors(self):
        q = EventQueue()
        with pytest.raises(SimulationError):
            q.pop()
        with pytest.raises(SimulationError):
            q.peek()

    def test_bool_and_len(self):
        q = EventQueue()
        assert not q
        q.schedule(1.0, EventKind.SITE_FAIL, 0)
        assert q and len(q) == 1

    def test_drain_until(self):
        q = EventQueue()
        for t in (0.5, 1.5, 2.5):
            q.schedule(t, EventKind.SITE_FAIL, 0)
        drained = list(q.drain_until(2.0))
        assert [e.time for e in drained] == [0.5, 1.5]
        assert len(q) == 1
