"""Unit tests for the access workloads."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.simulation.workload import AccessWorkload


class TestConstructors:
    def test_uniform(self):
        w = AccessWorkload.uniform(10, alpha=0.5)
        np.testing.assert_allclose(w.read_weights, 0.1)
        np.testing.assert_allclose(w.write_weights, 0.1)
        assert w.aggregate_rate == 10.0

    def test_alpha_bounds(self):
        with pytest.raises(SimulationError):
            AccessWorkload.uniform(5, alpha=1.1)

    def test_zipf_weights_decreasing(self):
        w = AccessWorkload.zipf(6, alpha=0.5, exponent=1.2)
        assert (np.diff(w.read_weights) < 0).all()
        assert w.read_weights.sum() == pytest.approx(1.0)

    def test_zipf_exponent_zero_is_uniform(self):
        w = AccessWorkload.zipf(5, alpha=0.5, exponent=0.0)
        np.testing.assert_allclose(w.read_weights, 0.2)

    def test_hotspot(self):
        w = AccessWorkload.hotspot(10, 0.5, hot_sites=[0, 1], hot_fraction=0.8)
        assert w.read_weights[0] == pytest.approx(0.4)
        assert w.read_weights[5] == pytest.approx(0.2 / 8)

    def test_hotspot_validation(self):
        with pytest.raises(SimulationError):
            AccessWorkload.hotspot(5, 0.5, hot_sites=[])
        with pytest.raises(SimulationError):
            AccessWorkload.hotspot(5, 0.5, hot_sites=[7])
        with pytest.raises(SimulationError):
            AccessWorkload.hotspot(5, 0.5, hot_sites=list(range(5)))
        with pytest.raises(SimulationError):
            AccessWorkload.hotspot(5, 0.5, hot_sites=[0], hot_fraction=1.0)

    def test_distinct_read_write(self):
        w = AccessWorkload.with_distinct_read_write(
            0.6, read_weights=[1.0, 0.0], write_weights=[0.0, 1.0]
        )
        assert w.read_weights[0] == 1.0
        assert w.write_weights[1] == 1.0

    def test_weights_normalized(self):
        w = AccessWorkload(3, 0.5, np.array([2.0, 1.0, 1.0]), np.array([1.0, 1.0, 2.0]))
        assert w.read_weights.sum() == pytest.approx(1.0)
        assert w.read_weights[0] == pytest.approx(0.5)

    def test_negative_weights_rejected(self):
        with pytest.raises(SimulationError):
            AccessWorkload(2, 0.5, np.array([-1.0, 2.0]), np.array([0.5, 0.5]))

    def test_with_alpha(self):
        w = AccessWorkload.uniform(4, 0.25)
        w2 = w.with_alpha(0.75)
        assert w2.alpha == 0.75
        np.testing.assert_array_equal(w.read_weights, w2.read_weights)


class TestSampling:
    def test_sample_epoch_counts(self):
        w = AccessWorkload.uniform(5, alpha=0.5, rate_per_site=2.0)
        rng = np.random.default_rng(0)
        reads, writes = w.sample_epoch(100.0, rng)
        total = reads.sum() + writes.sum()
        # E[total] = 5 sites * 2.0 * 100 = 1000; allow 5 sigma.
        assert abs(total - 1000) < 5 * np.sqrt(1000)

    def test_sample_epoch_alpha_split(self):
        w = AccessWorkload.uniform(4, alpha=0.25)
        rng = np.random.default_rng(1)
        reads, writes = w.sample_epoch(500.0, rng)
        frac = reads.sum() / (reads.sum() + writes.sum())
        assert frac == pytest.approx(0.25, abs=0.03)

    def test_sample_epoch_zero_duration(self):
        w = AccessWorkload.uniform(3, alpha=0.5)
        rng = np.random.default_rng(2)
        reads, writes = w.sample_epoch(0.0, rng)
        assert reads.sum() == 0 and writes.sum() == 0

    def test_sample_negative_duration(self):
        w = AccessWorkload.uniform(3, alpha=0.5)
        with pytest.raises(SimulationError):
            w.sample_epoch(-1.0, np.random.default_rng(0))

    def test_skew_shows_up_in_samples(self):
        w = AccessWorkload.hotspot(5, 0.5, hot_sites=[0], hot_fraction=0.9)
        rng = np.random.default_rng(3)
        reads, writes = w.sample_epoch(400.0, rng)
        per_site = reads + writes
        assert per_site[0] > per_site[1:].sum()

    def test_expected_epoch(self):
        w = AccessWorkload.uniform(4, alpha=0.75, rate_per_site=1.0)
        reads, writes = w.expected_epoch(10.0)
        assert reads.sum() == pytest.approx(30.0)
        assert writes.sum() == pytest.approx(10.0)
        np.testing.assert_allclose(reads, 7.5)

    def test_expected_matches_sample_mean(self):
        w = AccessWorkload.zipf(6, alpha=0.4, exponent=1.0)
        rng = np.random.default_rng(4)
        acc_r = np.zeros(6)
        acc_w = np.zeros(6)
        n = 300
        for _ in range(n):
            r, wr = w.sample_epoch(5.0, rng)
            acc_r += r
            acc_w += wr
        exp_r, exp_w = w.expected_epoch(5.0)
        np.testing.assert_allclose(acc_r / n, exp_r, rtol=0.15)
        np.testing.assert_allclose(acc_w / n, exp_w, rtol=0.2)
