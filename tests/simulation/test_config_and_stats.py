"""Unit tests for SimulationConfig and the batch statistics."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.simulation.config import SimulationConfig
from repro.simulation.stats import (
    BatchStatistics,
    confidence_interval,
    student_t_half_width,
)
from repro.simulation.workload import AccessWorkload
from repro.topology.generators import ring


class TestSimulationConfig:
    def test_paper_like_derivation(self):
        cfg = SimulationConfig.paper_like(ring(10), alpha=0.5)
        assert cfg.mean_time_to_failure == pytest.approx(128.0)
        assert cfg.component_reliability == pytest.approx(0.96)
        assert cfg.workload.alpha == 0.5

    def test_paper_like_custom_rho(self):
        cfg = SimulationConfig.paper_like(ring(5), alpha=0.5, rho=1 / 64, reliability=0.9)
        assert cfg.mean_time_to_failure == pytest.approx(64.0)
        assert cfg.component_reliability == pytest.approx(0.9)

    def test_time_horizons(self):
        cfg = SimulationConfig.paper_like(
            ring(10), alpha=0.5, warmup_accesses=100, accesses_per_batch=1000
        )
        assert cfg.warmup_time == pytest.approx(10.0)   # 100 / (10 * 1.0)
        assert cfg.batch_time == pytest.approx(100.0)

    def test_workload_topology_mismatch(self):
        with pytest.raises(SimulationError):
            SimulationConfig(ring(5), AccessWorkload.uniform(4, 0.5))

    def test_validation(self):
        topo = ring(5)
        wl = AccessWorkload.uniform(5, 0.5)
        with pytest.raises(SimulationError):
            SimulationConfig(topo, wl, mean_time_to_failure=-1.0)
        with pytest.raises(SimulationError):
            SimulationConfig(topo, wl, warmup_accesses=-5)
        with pytest.raises(SimulationError):
            SimulationConfig(topo, wl, accesses_per_batch=0)
        with pytest.raises(SimulationError):
            SimulationConfig(topo, wl, n_batches=0)
        with pytest.raises(SimulationError):
            SimulationConfig(topo, wl, accounting="magic")

    def test_with_helpers(self):
        cfg = SimulationConfig.paper_like(ring(5), alpha=0.25)
        assert cfg.with_alpha(0.75).workload.alpha == 0.75
        assert cfg.with_accounting("expected").accounting == "expected"
        assert cfg.with_seed(9).seed == 9
        assert cfg.workload.alpha == 0.25  # original frozen


class TestStudentT:
    def test_single_value_zero_width(self):
        assert student_t_half_width([0.5]) == 0.0

    def test_identical_values_zero_width(self):
        assert student_t_half_width([0.5, 0.5, 0.5]) == 0.0

    def test_known_half_width(self):
        # n=4, sd=1, sem=0.5, t(.975, 3) = 3.1824.
        values = [0.0, 0.0, 2.0, 2.0]
        sd = np.std(values, ddof=1)
        expected = 3.182446 * sd / 2.0
        assert student_t_half_width(values) == pytest.approx(expected, rel=1e-4)

    def test_more_batches_tighter(self):
        rng = np.random.default_rng(0)
        few = rng.normal(0.5, 0.05, size=4)
        many = rng.normal(0.5, 0.05, size=16)
        assert student_t_half_width(many) < student_t_half_width(few)

    def test_confidence_interval_contains_mean(self):
        mean, lo, hi = confidence_interval([0.4, 0.5, 0.6])
        assert lo < mean < hi
        assert mean == pytest.approx(0.5)

    def test_validation(self):
        with pytest.raises(SimulationError):
            student_t_half_width([])
        with pytest.raises(SimulationError):
            student_t_half_width([0.5], confidence=1.0)


class TestBatchStatistics:
    def test_basic(self):
        stats = BatchStatistics("acc", (0.4, 0.5, 0.6))
        assert stats.mean == pytest.approx(0.5)
        assert stats.n_batches == 3
        lo, hi = stats.interval
        assert lo < 0.5 < hi

    def test_meets_precision(self):
        tight = BatchStatistics("acc", (0.5, 0.5001, 0.4999))
        loose = BatchStatistics("acc", (0.1, 0.9))
        assert tight.meets_precision(0.01)
        assert not loose.meets_precision(0.01)

    def test_single_batch_never_meets_precision(self):
        assert not BatchStatistics("acc", (0.5,)).meets_precision(1.0)

    def test_empty_rejected(self):
        with pytest.raises(SimulationError):
            BatchStatistics("acc", ())

    def test_str_rendering(self):
        s = str(BatchStatistics("acc", (0.4, 0.6)))
        assert "acc" in s and "95%" in s and "2 batches" in s
