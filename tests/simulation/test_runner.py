"""Unit tests for the multi-batch runner and result aggregation."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.protocols.majority import MajorityConsensusProtocol
from repro.simulation.config import SimulationConfig
from repro.simulation.runner import run_simulation
from repro.topology.generators import ring


def make_config(**kw):
    defaults = dict(
        warmup_accesses=100.0,
        accesses_per_batch=2_000.0,
        n_batches=3,
        seed=5,
    )
    defaults.update(kw)
    return SimulationConfig.paper_like(ring(7), alpha=0.5, **defaults)


class TestRunSimulation:
    def test_runs_configured_batches(self):
        res = run_simulation(make_config(), MajorityConsensusProtocol(7))
        assert res.n_batches == 3
        assert res.protocol_name.startswith("majority")

    def test_metrics_have_ci(self):
        res = run_simulation(make_config(), MajorityConsensusProtocol(7))
        stats = res.availability
        assert stats.n_batches == 3
        assert stats.half_width > 0.0
        lo, hi = stats.interval
        assert lo <= stats.mean <= hi

    def test_precision_extension(self):
        cfg = make_config(n_batches=2)
        res = run_simulation(
            cfg, MajorityConsensusProtocol(7), target_half_width=1e-6, max_batches=5
        )
        assert res.n_batches == 5  # impossible target: exhausts max_batches

    def test_precision_satisfied_early(self):
        cfg = make_config(n_batches=2)
        res = run_simulation(
            cfg, MajorityConsensusProtocol(7), target_half_width=0.9, max_batches=10
        )
        assert res.n_batches == 2

    def test_max_batches_validation(self):
        with pytest.raises(SimulationError):
            run_simulation(make_config(n_batches=4), MajorityConsensusProtocol(7),
                           max_batches=2)

    def test_density_matrix_pooling(self):
        res = run_simulation(make_config(), MajorityConsensusProtocol(7))
        for weighting in ("time", "access"):
            matrix = res.density_matrix(weighting)
            assert matrix.shape == (7, 8)
            np.testing.assert_allclose(matrix.sum(axis=1), 1.0)

    def test_density_matrix_bad_weighting(self):
        res = run_simulation(make_config(), MajorityConsensusProtocol(7))
        with pytest.raises(SimulationError):
            res.density_matrix("wishful")

    def test_availability_model_defaults_to_workload_weights(self):
        res = run_simulation(make_config(), MajorityConsensusProtocol(7))
        model = res.availability_model()
        assert model.total_votes == 7
        curve = model.curve(0.5)
        assert curve.shape == (3,)
        assert ((0 <= curve) & (curve <= 1)).all()

    def test_summary_renders(self):
        res = run_simulation(make_config(), MajorityConsensusProtocol(7))
        text = res.summary()
        assert "availability(ACC)" in text
        assert "ring-7" in text

    def test_reproducible_end_to_end(self):
        a = run_simulation(make_config(), MajorityConsensusProtocol(7))
        b = run_simulation(make_config(), MajorityConsensusProtocol(7))
        assert a.availability.values == b.availability.values
