"""Unit tests for the coterie machinery."""

import pytest

from repro.errors import QuorumConstraintError, VoteAssignmentError
from repro.quorum.coterie import Coterie, coterie_from_votes, read_groups_from_votes
from repro.quorum.votes import VoteAssignment


class TestCoterieValidation:
    def test_valid_majority_coterie(self):
        c = Coterie([{0, 1}, {1, 2}, {0, 2}])
        assert len(c) == 3

    def test_rejects_disjoint_groups(self):
        with pytest.raises(QuorumConstraintError):
            Coterie([{0, 1}, {2, 3}])

    def test_rejects_non_minimal(self):
        with pytest.raises(QuorumConstraintError):
            Coterie([{0}, {0, 1}])

    def test_rejects_empty_group(self):
        with pytest.raises(QuorumConstraintError):
            Coterie([set()])

    def test_rejects_empty_coterie(self):
        with pytest.raises(QuorumConstraintError):
            Coterie([])

    def test_singleton_coterie(self):
        c = Coterie([{0}])
        assert c.permits({0, 3})
        assert not c.permits({1, 2})

    def test_duplicate_groups_collapse(self):
        c = Coterie([{0, 1}, {1, 0}])
        assert len(c) == 1

    def test_universe_inference_and_bounds(self):
        c = Coterie([{0, 2}])
        assert c.universe == 3
        with pytest.raises(QuorumConstraintError):
            Coterie([{0, 5}], universe=3)


class TestCoterieSemantics:
    def test_permits(self):
        c = Coterie([{0, 1}, {1, 2}, {0, 2}])
        assert c.permits({0, 1, 3})
        assert not c.permits({0, 3})

    def test_contains_and_iter(self):
        c = Coterie([{0, 1}, {1, 2}, {0, 2}])
        assert {0, 1} in c
        assert {0, 3} not in c
        assert len(list(c)) == 3

    def test_equality(self):
        assert Coterie([{0, 1}, {1, 2}, {0, 2}]) == Coterie([{1, 2}, {0, 2}, {0, 1}])

    def test_domination(self):
        # {{0}} dominates {{0,1}}: every group of the latter contains {0}.
        primary = Coterie([{0}])
        pair = Coterie([{0, 1}])
        assert primary.dominates(pair)
        assert not pair.dominates(primary)
        assert not pair.dominates(pair)
        # Majority-of-3 contains {1,2}, which holds no group of {{0}} —
        # so the primary coterie does NOT dominate it.
        majority = Coterie([{0, 1}, {1, 2}, {0, 2}])
        assert not primary.dominates(majority)

    def test_majority_of_three_is_not_dominated(self):
        majority = Coterie([{0, 1}, {1, 2}, {0, 2}], universe=3)
        assert not majority.is_dominated()

    def test_pair_coterie_on_three_sites_is_dominated(self):
        # {0,1} alone is dominated (e.g. by the primary coterie {{0}}).
        c = Coterie([{0, 1}], universe=3)
        assert c.is_dominated()

    def test_domination_guard_on_large_universe(self):
        c = Coterie([{0, 1}], universe=25)
        with pytest.raises(QuorumConstraintError):
            c.is_dominated()


class TestCoterieFromVotes:
    def test_uniform_majority(self):
        votes = VoteAssignment.uniform(3)
        c = coterie_from_votes(votes, write_quorum=2)
        assert c == Coterie([{0, 1}, {1, 2}, {0, 2}])

    def test_rowa_write_coterie_is_all_sites(self):
        votes = VoteAssignment.uniform(4)
        c = coterie_from_votes(votes, write_quorum=4)
        assert c == Coterie([{0, 1, 2, 3}])

    def test_weighted_votes(self):
        # Votes (3,1,1,1): T=6, q_w=4. Without site 0 at most 3 votes are
        # reachable, so every group is {0, x} — site 0 is a veto player.
        votes = VoteAssignment([3, 1, 1, 1])
        c = coterie_from_votes(votes, write_quorum=4)
        expected = Coterie([{0, 1}, {0, 2}, {0, 3}], universe=4)
        assert c == expected

    def test_primary_copy_votes(self):
        votes = VoteAssignment([0, 1, 0])
        c = coterie_from_votes(votes, write_quorum=1)
        assert c == Coterie([{1}], universe=3)

    def test_sub_majority_quorum_rejected(self):
        votes = VoteAssignment.uniform(4)
        with pytest.raises(QuorumConstraintError):
            coterie_from_votes(votes, write_quorum=2)

    @pytest.mark.parametrize("n", [3, 4, 5, 6])
    def test_vote_coteries_always_validate(self, n):
        """Executable proof of the section 2.1 safety argument: any
        strict-majority write quorum over any vote vector yields a valid
        coterie (pairwise intersecting, minimal)."""
        import itertools

        for votes_tuple in itertools.product([0, 1, 2], repeat=n):
            if sum(votes_tuple) == 0:
                continue
            votes = VoteAssignment(list(votes_tuple))
            q_w = votes.total // 2 + 1
            coterie_from_votes(votes, q_w)  # constructor re-checks both laws

    def test_group_enumeration_guard(self):
        votes = VoteAssignment.uniform(21)
        with pytest.raises(VoteAssignmentError):
            coterie_from_votes(votes, write_quorum=11)


class TestReadGroups:
    def test_read_groups_need_not_intersect(self):
        votes = VoteAssignment.uniform(4)
        groups = read_groups_from_votes(votes, read_quorum=1)
        assert groups == tuple(frozenset({s}) for s in range(4))

    def test_read_groups_intersect_write_groups(self):
        """Condition 1 at the set level: q_r + q_w > T forces every read
        group to meet every write group."""
        votes = VoteAssignment([2, 1, 1, 1, 1])
        T = votes.total
        for q_r in range(1, T // 2 + 1):
            q_w = T - q_r + 1
            reads = read_groups_from_votes(votes, q_r)
            writes = coterie_from_votes(votes, q_w)
            for rg in reads:
                for wg in writes:
                    assert rg & wg, (sorted(rg), sorted(wg))

    def test_threshold_bounds(self):
        votes = VoteAssignment.uniform(3)
        with pytest.raises(QuorumConstraintError):
            read_groups_from_votes(votes, 0)
        with pytest.raises(QuorumConstraintError):
            read_groups_from_votes(votes, 4)
