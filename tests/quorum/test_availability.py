"""Unit tests for the Figure-1 availability algebra."""

import numpy as np
import pytest

from repro.analytic.complete import complete_density
from repro.errors import DensityError, QuorumConstraintError
from repro.quorum.availability import (
    AvailabilityModel,
    availability,
    availability_curve,
    read_availability,
    write_availability,
)


@pytest.fixture
def simple_density():
    # T = 4; hand-computable.
    return np.array([0.1, 0.2, 0.3, 0.2, 0.2])


class TestCumulativeAvailabilities:
    def test_read_availability_by_hand(self, simple_density):
        assert read_availability(simple_density, 1) == pytest.approx(0.9)
        assert read_availability(simple_density, 2) == pytest.approx(0.7)
        assert read_availability(simple_density, 4) == pytest.approx(0.2)

    def test_write_availability_by_hand(self, simple_density):
        assert write_availability(simple_density, 3) == pytest.approx(0.4)

    def test_vectorized_over_quorums(self, simple_density):
        out = read_availability(simple_density, np.array([1, 2, 3, 4]))
        np.testing.assert_allclose(out, [0.9, 0.7, 0.4, 0.2])

    def test_quorum_bounds(self, simple_density):
        with pytest.raises(QuorumConstraintError):
            read_availability(simple_density, 0)
        with pytest.raises(QuorumConstraintError):
            read_availability(simple_density, 5)

    def test_monotone_decreasing_in_quorum(self):
        f = complete_density(12, 0.9, 0.8)
        vals = read_availability(f, np.arange(1, 13))
        assert (np.diff(vals) <= 1e-12).all()


class TestAvailabilityFunction:
    def test_alpha_one_is_read_availability(self, simple_density):
        a = availability(1.0, simple_density, simple_density, 2)
        assert a == pytest.approx(read_availability(simple_density, 2))

    def test_alpha_zero_is_write_availability(self, simple_density):
        a = availability(0.0, simple_density, simple_density, 2)
        # q_w = T - q_r + 1 = 3
        assert a == pytest.approx(write_availability(simple_density, 3))

    def test_convex_combination(self, simple_density):
        a25 = availability(0.25, simple_density, simple_density, 2)
        r = read_availability(simple_density, 2)
        w = write_availability(simple_density, 3)
        assert a25 == pytest.approx(0.25 * r + 0.75 * w)

    def test_distinct_read_write_densities(self):
        r = np.array([0.0, 0.0, 1.0])
        w = np.array([0.5, 0.5, 0.0])
        # T=2, q_r=1, q_w=2: R(1)=1, W(2)=0.
        assert availability(0.5, r, w, 1) == pytest.approx(0.5)

    def test_alpha_out_of_range(self, simple_density):
        with pytest.raises(QuorumConstraintError):
            availability(1.5, simple_density, simple_density, 1)

    def test_mismatched_density_lengths(self):
        with pytest.raises(DensityError):
            availability(0.5, np.array([0.5, 0.5]), np.array([0.2, 0.3, 0.5]), 1)

    def test_curve_shape(self, simple_density):
        curve = availability_curve(0.5, simple_density, simple_density)
        assert curve.shape == (2,)  # q_r in {1, 2} for T = 4

    def test_curve_values_match_pointwise(self, simple_density):
        curve = availability_curve(0.75, simple_density, simple_density)
        for i, q in enumerate(range(1, 3)):
            assert curve[i] == pytest.approx(
                availability(0.75, simple_density, simple_density, q)
            )


class TestAvailabilityModel:
    def test_from_density_matrix_uniform(self):
        matrix = np.array([[0.2, 0.8, 0.0], [0.0, 0.4, 0.6]])
        model = AvailabilityModel.from_density_matrix(matrix)
        np.testing.assert_allclose(model.read_density, [0.1, 0.6, 0.3])
        assert model.read_density is model.write_density or np.allclose(
            model.read_density, model.write_density
        )

    def test_from_density_matrix_weighted(self):
        matrix = np.array([[1.0, 0.0], [0.0, 1.0]])
        model = AvailabilityModel.from_density_matrix(
            matrix,
            read_weights=np.array([1.0, 0.0]),
            write_weights=np.array([0.0, 1.0]),
        )
        np.testing.assert_allclose(model.read_density, [1.0, 0.0])
        np.testing.assert_allclose(model.write_density, [0.0, 1.0])

    def test_total_votes_and_max_quorum(self, simple_density):
        model = AvailabilityModel(simple_density, simple_density)
        assert model.total_votes == 4
        assert model.max_read_quorum == 2
        np.testing.assert_array_equal(model.feasible_read_quorums(), [1, 2])

    def test_write_availability_at_is_alpha_zero_curve(self, simple_density):
        model = AvailabilityModel(simple_density, simple_density)
        quorums = model.feasible_read_quorums()
        np.testing.assert_allclose(
            np.asarray(model.write_availability_at(quorums)),
            model.curve(0.0),
        )

    def test_write_availability_nondecreasing_in_read_quorum(self):
        f = complete_density(20, 0.9, 0.7)
        model = AvailabilityModel(f, f)
        w = np.asarray(model.write_availability_at(model.feasible_read_quorums()))
        assert (np.diff(w) >= -1e-12).all()

    def test_assignment_materialization(self, simple_density):
        model = AvailabilityModel(simple_density, simple_density)
        qa = model.assignment(2)
        assert (qa.read_quorum, qa.write_quorum) == (2, 3)

    def test_densities_frozen(self, simple_density):
        model = AvailabilityModel(simple_density, simple_density)
        with pytest.raises(ValueError):
            model.read_density[0] = 0.5

    def test_invalid_density_rejected(self):
        with pytest.raises(DensityError):
            AvailabilityModel(np.array([0.5, 0.4]), np.array([0.5, 0.5]))


class TestPaperEdgeIdentities:
    """Section 5.3's two structural observations, checked analytically."""

    def test_availability_at_qr1_is_p_alpha_plus_write_tail(self):
        # R(1) = P(site up) = p, so alpha's read part contributes p*alpha.
        p = 0.96
        f = complete_density(15, p, 0.9)
        model = AvailabilityModel(f, f)
        for alpha in (0.0, 0.25, 0.5, 0.75, 1.0):
            a1 = float(model.availability(alpha, 1))
            w_all = float(model.write_availability_at(1))
            assert a1 == pytest.approx(alpha * p + (1 - alpha) * w_all)

    def test_curves_converge_at_majority(self):
        f = complete_density(14, 0.9, 0.85)
        model = AvailabilityModel(f, f)
        edge = [model.curve(a)[-1] for a in (0.0, 0.5, 1.0)]
        # r(v) = w(v): the spread at the right edge is only the one-vote
        # difference between q_r = 7 and q_w = 8.
        assert max(edge) - min(edge) < 0.05
