"""Unit tests for the section 5.4 write-constraint machinery."""

import numpy as np
import pytest

from repro.analytic.complete import complete_density
from repro.analytic.ring import ring_density
from repro.errors import OptimizationError
from repro.quorum.availability import AvailabilityModel
from repro.quorum.constraints import (
    feasible_read_quorums,
    optimize_with_write_floor,
    weighted_availability,
    weighted_availability_curve,
)
from repro.quorum.optimizer import optimal_read_quorum


def model_from(density):
    return AvailabilityModel(density, density)


class TestWeightedAvailability:
    def test_omega_one_recovers_plain(self):
        model = model_from(complete_density(10, 0.9, 0.8))
        for q in (1, 3, 5):
            assert float(weighted_availability(model, 1.0, 0.5, q)) == pytest.approx(
                float(model.availability(0.5, q))
            )

    def test_omega_zero_is_reads_only(self):
        model = model_from(complete_density(10, 0.9, 0.8))
        assert float(weighted_availability(model, 0.0, 0.5, 2)) == pytest.approx(
            0.5 * float(model.read_availability(2))
        )

    def test_large_omega_shifts_optimum_toward_majority(self):
        f = ring_density(31, 0.96, 0.96)
        model = model_from(f)
        plain = weighted_availability_curve(model, 1.0, 0.9)
        boosted = weighted_availability_curve(model, 10.0, 0.9)
        assert int(np.argmax(boosted)) >= int(np.argmax(plain))

    def test_negative_omega_rejected(self):
        model = model_from(complete_density(6, 0.9, 0.9))
        with pytest.raises(OptimizationError):
            weighted_availability(model, -1.0, 0.5, 1)

    def test_curve_shape(self):
        model = model_from(complete_density(12, 0.9, 0.9))
        assert weighted_availability_curve(model, 2.0, 0.5).shape == (6,)


class TestFeasibleQuorums:
    def test_zero_floor_everything_feasible(self):
        model = model_from(ring_density(21, 0.96, 0.96))
        np.testing.assert_array_equal(
            feasible_read_quorums(model, 0.0), model.feasible_read_quorums()
        )

    def test_feasible_set_is_a_suffix(self):
        model = model_from(ring_density(31, 0.96, 0.96))
        feasible = feasible_read_quorums(model, 0.2)
        if feasible.size:
            expected = np.arange(feasible[0], model.max_read_quorum + 1)
            np.testing.assert_array_equal(feasible, expected)

    def test_impossible_floor_empty(self):
        model = model_from(ring_density(21, 0.5, 0.5))
        assert feasible_read_quorums(model, 0.999).size == 0

    def test_floor_bounds(self):
        model = model_from(complete_density(6, 0.9, 0.9))
        with pytest.raises(OptimizationError):
            feasible_read_quorums(model, 1.5)


class TestOptimizeWithWriteFloor:
    def test_zero_floor_matches_unconstrained(self):
        model = model_from(ring_density(31, 0.96, 0.96))
        constrained = optimize_with_write_floor(model, 0.75, 0.0)
        unconstrained = optimal_read_quorum(model, 0.75)
        assert constrained.read_quorum == unconstrained.read_quorum
        assert constrained.availability == pytest.approx(unconstrained.availability)

    def test_floor_is_respected(self):
        model = model_from(ring_density(51, 0.96, 0.96))
        res = optimize_with_write_floor(model, 0.75, 0.2)
        write = float(np.asarray(model.write_availability_at(res.read_quorum)))
        assert write >= 0.2

    def test_constraint_costs_availability(self):
        model = model_from(ring_density(51, 0.96, 0.96))
        free = optimal_read_quorum(model, 0.9).availability
        constrained = optimize_with_write_floor(model, 0.9, 0.3).availability
        assert constrained <= free + 1e-12

    def test_binding_constraint_picks_first_feasible_when_monotone(self):
        # On a ring at high alpha the availability curve decreases in q_r,
        # so the constrained optimum is the smallest feasible quorum —
        # exactly the paper's q_r = 28 argument.
        model = model_from(ring_density(51, 0.96, 0.96))
        res = optimize_with_write_floor(model, 0.9, 0.25)
        feasible = feasible_read_quorums(model, 0.25)
        assert res.read_quorum == int(feasible[0])

    def test_infeasible_floor_raises_with_guidance(self):
        model = model_from(ring_density(21, 0.5, 0.5))
        with pytest.raises(OptimizationError, match="best achievable"):
            optimize_with_write_floor(model, 0.5, 0.999)

    def test_method_label(self):
        model = model_from(complete_density(10, 0.9, 0.9))
        res = optimize_with_write_floor(model, 0.5, 0.1)
        assert "write-floor" in res.method

    def test_alpha_validated(self):
        model = model_from(complete_density(10, 0.9, 0.9))
        with pytest.raises(OptimizationError):
            optimize_with_write_floor(model, 1.2, 0.1)
