"""Tests for the vote assignment optimizer."""

import numpy as np
import pytest

from repro.errors import OptimizationError, VoteAssignmentError
from repro.quorum.vote_optimizer import _compositions, optimize_votes
from repro.topology.generators import ring, star
from repro.topology.model import Topology


class TestCompositions:
    def test_counts(self):
        from math import comb

        comps = list(_compositions(4, 3))
        assert len(comps) == comb(4 + 2, 2)
        assert all(sum(c) == 4 for c in comps)
        assert all(min(c) >= 0 for c in comps)

    def test_unique(self):
        comps = [tuple(c) for c in _compositions(3, 4)]
        assert len(set(comps)) == len(comps)


class TestHillclimb:
    def test_unreliable_site_loses_votes(self):
        """A 4-site ring where site 3 is nearly always down: the optimizer
        must strip its vote (a vote parked on a dead site is wasted)."""
        topo = ring(4)
        p = np.array([0.95, 0.95, 0.95, 0.05])
        res = optimize_votes(topo, alpha=0.5, p=p, r=0.95,
                             n_samples=1_500, seed=1)
        assert res.votes[3] == 0
        assert res.total_votes == 4

    def test_hub_of_star_attracts_votes(self):
        """On a star, every component contains the hub or is a leaf
        singleton — votes on the hub are maximally useful."""
        topo = star(5, hub=0)
        res = optimize_votes(topo, alpha=0.25, p=0.9, r=0.8,
                             n_samples=1_500, seed=2)
        assert res.votes[0] == max(res.votes)

    def test_beats_or_matches_uniform(self):
        topo = ring(5)
        p = np.array([0.95, 0.95, 0.95, 0.5, 0.5])
        res = optimize_votes(topo, alpha=0.5, p=p, r=0.9,
                             n_samples=1_500, seed=3)
        from repro.quorum.vote_optimizer import _StateSample, availability_of_votes

        sample = _StateSample(topo, p, 0.9, n_samples=1_500, seed=3)
        uniform_value, _ = availability_of_votes(sample, np.ones(5, dtype=np.int64), 0.5)
        assert res.availability >= uniform_value - 1e-9

    def test_result_metadata(self):
        topo = ring(4)
        res = optimize_votes(topo, alpha=0.5, p=0.9, r=0.9,
                             n_samples=500, seed=0)
        assert res.method == "hillclimb"
        assert res.candidates_evaluated >= 1
        assert res.quorum.assignment.total_votes == res.total_votes


class TestExhaustive:
    def test_matches_hillclimb_value_on_tiny_system(self):
        topo = Topology(3, [(0, 1), (1, 2)])
        p = np.array([0.9, 0.6, 0.9])
        ex = optimize_votes(topo, alpha=0.5, p=p, r=0.9, total_votes=3,
                            method="exhaustive", n_samples=1_000, seed=4)
        hc = optimize_votes(topo, alpha=0.5, p=p, r=0.9, total_votes=3,
                            method="hillclimb", n_samples=1_000, seed=4)
        # Same shared sample: hill climbing cannot beat the exhaustive
        # optimum, and on 3 sites it should reach it.
        assert hc.availability == pytest.approx(ex.availability, abs=1e-9)

    def test_exhaustive_guard(self):
        topo = ring(12)
        with pytest.raises(OptimizationError):
            optimize_votes(topo, alpha=0.5, p=0.9, r=0.9, total_votes=24,
                           method="exhaustive", n_samples=10)


class TestValidation:
    def test_alpha_bounds(self):
        with pytest.raises(OptimizationError):
            optimize_votes(ring(3), alpha=2.0, p=0.9, r=0.9, n_samples=10)

    def test_vote_budget_positive(self):
        with pytest.raises(VoteAssignmentError):
            optimize_votes(ring(3), alpha=0.5, p=0.9, r=0.9, total_votes=0,
                           n_samples=10)

    def test_unknown_method(self):
        with pytest.raises(OptimizationError):
            optimize_votes(ring(3), alpha=0.5, p=0.9, r=0.9,
                           method="quantum", n_samples=10)

    def test_reliability_shape_check(self):
        with pytest.raises(OptimizationError):
            optimize_votes(ring(3), alpha=0.5, p=np.array([0.9, 0.9]), r=0.9,
                           n_samples=10)


class TestVectorizedScoring:
    """The batched scatter-add scorer and the delta scorer must reproduce
    the retained per-state reference loop bit for bit (DESIGN.md §10) —
    every intermediate is an exact small integer, so there is no
    tolerance to hide behind."""

    def _sample(self, n_samples=200, seed=11):
        from repro.quorum.vote_optimizer import _StateSample

        topo = ring(6)
        p = np.array([0.9, 0.55, 0.9, 0.7, 0.9, 0.55])
        return _StateSample(topo, p, 0.85, n_samples=n_samples, seed=seed)

    def test_batched_matches_reference_loop(self):
        sample = self._sample()
        rng = np.random.default_rng(0)
        for _ in range(10):
            votes = rng.integers(0, 4, size=6)
            votes[0] = max(votes[0], 1)
            assert np.array_equal(
                sample.density_matrix(votes),
                sample.density_matrix_reference(votes),
            )

    def test_delta_matches_full_rescoring(self):
        sample = self._sample()
        votes = np.array([2, 1, 0, 1, 1, 1])
        counts, totals = sample.vote_counts(votes)
        for a in range(6):
            if votes[a] == 0:
                continue
            for b in range(6):
                if a == b:
                    continue
                moved = votes.copy()
                moved[a] -= 1
                moved[b] += 1
                assert np.array_equal(
                    sample.moved_counts(counts, totals, votes, a, b),
                    sample.vote_counts(moved)[0],
                )

    def test_moving_from_empty_site_rejected(self):
        sample = self._sample()
        votes = np.array([2, 1, 0, 1, 1, 1])
        counts, totals = sample.vote_counts(votes)
        with pytest.raises(OptimizationError):
            sample.moved_counts(counts, totals, votes, 2, 0)

    def test_scoring_modes_agree_exactly(self):
        topo = ring(5)
        p = np.array([0.95, 0.95, 0.95, 0.5, 0.5])
        results = [
            optimize_votes(topo, alpha=0.5, p=p, r=0.9, n_samples=400,
                           seed=3, scoring=mode)
            for mode in ("delta", "batched", "reference")
        ]
        assert results[0].votes == results[1].votes == results[2].votes
        assert (results[0].availability == results[1].availability
                == results[2].availability)
        assert (results[0].candidates_evaluated
                == results[1].candidates_evaluated
                == results[2].candidates_evaluated)

    def test_unknown_scoring_rejected(self):
        with pytest.raises(OptimizationError):
            optimize_votes(ring(3), alpha=0.5, p=0.9, r=0.9,
                           n_samples=10, scoring="psychic")

    def test_delta_evaluations_are_counted(self):
        res = optimize_votes(ring(4), alpha=0.5, p=0.9, r=0.9,
                             n_samples=300, seed=0, scoring="delta")
        # Initial score plus at least one full sweep of n*(n-1) moves.
        assert res.candidates_evaluated >= 1 + 4 * 3


class TestScoringProperties:
    """Hypothesis: for arbitrary reliability vectors, seeds, and vote
    vectors, batched scoring and delta-scoring reproduce the reference
    loop exactly."""

    from hypothesis import given, settings
    from hypothesis import strategies as st

    @given(
        votes=st.lists(st.integers(min_value=0, max_value=3), min_size=5,
                       max_size=5),
        seed=st.integers(min_value=0, max_value=2**16),
        p=st.lists(st.floats(min_value=0.05, max_value=0.95), min_size=5,
                   max_size=5),
    )
    @settings(max_examples=40, deadline=None)
    def test_batched_and_delta_match_reference(self, votes, seed, p):
        from hypothesis import assume

        from repro.quorum.vote_optimizer import _StateSample

        votes = np.asarray(votes, dtype=np.int64)
        assume(votes.sum() > 0)
        sample = _StateSample(ring(5), np.asarray(p), 0.8, n_samples=64,
                              seed=seed)
        assert np.array_equal(
            sample.density_matrix(votes),
            sample.density_matrix_reference(votes),
        )
        counts, totals = sample.vote_counts(votes)
        movable = [a for a in range(5) if votes[a] > 0]
        a = movable[0]
        b = (a + 1) % 5
        moved = votes.copy()
        moved[a] -= 1
        moved[b] += 1
        assert np.array_equal(
            sample.moved_counts(counts, totals, votes, a, b),
            sample.vote_counts(moved)[0],
        )
