"""Tests for the vote assignment optimizer."""

import numpy as np
import pytest

from repro.errors import OptimizationError, VoteAssignmentError
from repro.quorum.vote_optimizer import _compositions, optimize_votes
from repro.topology.generators import ring, star
from repro.topology.model import Topology


class TestCompositions:
    def test_counts(self):
        from math import comb

        comps = list(_compositions(4, 3))
        assert len(comps) == comb(4 + 2, 2)
        assert all(sum(c) == 4 for c in comps)
        assert all(min(c) >= 0 for c in comps)

    def test_unique(self):
        comps = [tuple(c) for c in _compositions(3, 4)]
        assert len(set(comps)) == len(comps)


class TestHillclimb:
    def test_unreliable_site_loses_votes(self):
        """A 4-site ring where site 3 is nearly always down: the optimizer
        must strip its vote (a vote parked on a dead site is wasted)."""
        topo = ring(4)
        p = np.array([0.95, 0.95, 0.95, 0.05])
        res = optimize_votes(topo, alpha=0.5, p=p, r=0.95,
                             n_samples=1_500, seed=1)
        assert res.votes[3] == 0
        assert res.total_votes == 4

    def test_hub_of_star_attracts_votes(self):
        """On a star, every component contains the hub or is a leaf
        singleton — votes on the hub are maximally useful."""
        topo = star(5, hub=0)
        res = optimize_votes(topo, alpha=0.25, p=0.9, r=0.8,
                             n_samples=1_500, seed=2)
        assert res.votes[0] == max(res.votes)

    def test_beats_or_matches_uniform(self):
        topo = ring(5)
        p = np.array([0.95, 0.95, 0.95, 0.5, 0.5])
        res = optimize_votes(topo, alpha=0.5, p=p, r=0.9,
                             n_samples=1_500, seed=3)
        from repro.quorum.vote_optimizer import _StateSample, availability_of_votes

        sample = _StateSample(topo, p, 0.9, n_samples=1_500, seed=3)
        uniform_value, _ = availability_of_votes(sample, np.ones(5, dtype=np.int64), 0.5)
        assert res.availability >= uniform_value - 1e-9

    def test_result_metadata(self):
        topo = ring(4)
        res = optimize_votes(topo, alpha=0.5, p=0.9, r=0.9,
                             n_samples=500, seed=0)
        assert res.method == "hillclimb"
        assert res.candidates_evaluated >= 1
        assert res.quorum.assignment.total_votes == res.total_votes


class TestExhaustive:
    def test_matches_hillclimb_value_on_tiny_system(self):
        topo = Topology(3, [(0, 1), (1, 2)])
        p = np.array([0.9, 0.6, 0.9])
        ex = optimize_votes(topo, alpha=0.5, p=p, r=0.9, total_votes=3,
                            method="exhaustive", n_samples=1_000, seed=4)
        hc = optimize_votes(topo, alpha=0.5, p=p, r=0.9, total_votes=3,
                            method="hillclimb", n_samples=1_000, seed=4)
        # Same shared sample: hill climbing cannot beat the exhaustive
        # optimum, and on 3 sites it should reach it.
        assert hc.availability == pytest.approx(ex.availability, abs=1e-9)

    def test_exhaustive_guard(self):
        topo = ring(12)
        with pytest.raises(OptimizationError):
            optimize_votes(topo, alpha=0.5, p=0.9, r=0.9, total_votes=24,
                           method="exhaustive", n_samples=10)


class TestValidation:
    def test_alpha_bounds(self):
        with pytest.raises(OptimizationError):
            optimize_votes(ring(3), alpha=2.0, p=0.9, r=0.9, n_samples=10)

    def test_vote_budget_positive(self):
        with pytest.raises(VoteAssignmentError):
            optimize_votes(ring(3), alpha=0.5, p=0.9, r=0.9, total_votes=0,
                           n_samples=10)

    def test_unknown_method(self):
        with pytest.raises(OptimizationError):
            optimize_votes(ring(3), alpha=0.5, p=0.9, r=0.9,
                           method="quantum", n_samples=10)

    def test_reliability_shape_check(self):
        with pytest.raises(OptimizationError):
            optimize_votes(ring(3), alpha=0.5, p=np.array([0.9, 0.9]), r=0.9,
                           n_samples=10)
