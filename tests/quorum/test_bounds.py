"""Tests for the availability bounds."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analytic.complete import complete_density
from repro.analytic.ring import ring_density
from repro.errors import OptimizationError
from repro.quorum.availability import AvailabilityModel
from repro.quorum.bounds import (
    quorum_consensus_upper_bound,
    replication_headroom,
    single_copy_surv_bound,
    site_reliability_acc_bound,
)
from repro.quorum.optimizer import optimal_read_quorum


class TestScalarBounds:
    def test_values_and_validation(self):
        assert site_reliability_acc_bound(0.96) == 0.96
        assert single_copy_surv_bound(0.5) == 0.5
        with pytest.raises(OptimizationError):
            site_reliability_acc_bound(1.5)
        with pytest.raises(OptimizationError):
            single_copy_surv_bound(-0.1)

    def test_simulated_acc_respects_site_bound(self):
        """Measured ACC of a real simulation never exceeds p."""
        from repro.experiments.paper import TEST_SCALE
        from repro.protocols.majority import MajorityConsensusProtocol
        from repro.simulation.runner import run_simulation

        cfg = TEST_SCALE.config(chords=4, alpha=0.5, seed=2)
        res = run_simulation(cfg, MajorityConsensusProtocol(cfg.topology.total_votes))
        bound = site_reliability_acc_bound(0.96)
        assert res.availability.mean <= bound + 0.02


class TestQuorumEnvelope:
    @pytest.mark.parametrize("alpha", [0.0, 0.3, 0.7, 1.0])
    @pytest.mark.parametrize(
        "density",
        [ring_density(31, 0.96, 0.96), complete_density(31, 0.9, 0.7)],
        ids=["ring", "complete"],
    )
    def test_optimizer_never_beats_envelope(self, alpha, density):
        model = AvailabilityModel(density, density)
        best = optimal_read_quorum(model, alpha).availability
        assert best <= quorum_consensus_upper_bound(model, alpha) + 1e-12

    def test_envelope_tight_at_pure_workloads_even_T(self):
        """At alpha = 1 the envelope is achieved by q_r = 1; at alpha = 0
        by the majority assignment. The alpha = 0 end is tight only for
        even T: for odd T the paper's convention q_w = T - q_r + 1 cannot
        reach q_w = floor(T/2) + 1 (see QuorumAssignment.majority)."""
        f = ring_density(20, 0.96, 0.96)
        model = AvailabilityModel(f, f)
        for alpha in (0.0, 1.0):
            best = optimal_read_quorum(model, alpha).availability
            env = quorum_consensus_upper_bound(model, alpha)
            assert best == pytest.approx(env, abs=1e-12)

    def test_envelope_strict_at_alpha_zero_odd_T(self):
        f = ring_density(21, 0.96, 0.96)
        model = AvailabilityModel(f, f)
        best = optimal_read_quorum(model, 0.0).availability
        env = quorum_consensus_upper_bound(model, 0.0)
        assert best < env  # q_w = 12 achievable vs q_w = 11 in the envelope

    @given(st.floats(0.0, 1.0))
    @settings(max_examples=30)
    def test_envelope_random_alpha(self, alpha):
        f = complete_density(17, 0.9, 0.8)
        model = AvailabilityModel(f, f)
        best = optimal_read_quorum(model, alpha).availability
        assert best <= quorum_consensus_upper_bound(model, alpha) + 1e-12

    def test_alpha_validation(self):
        f = ring_density(9, 0.9, 0.9)
        with pytest.raises(OptimizationError):
            quorum_consensus_upper_bound(AvailabilityModel(f, f), 1.2)


class TestHeadroom:
    def test_dense_network_has_no_headroom(self):
        """Complete graph at p = r = .96: the optimum hits the p ceiling
        (the paper's fig-7 plateau at .9627 ~ .96)."""
        f = complete_density(51, 0.96, 0.96)
        model = AvailabilityModel(f, f)
        assert replication_headroom(model, 0.5, 0.96) < 0.01

    def test_sparse_network_pays_partition_penalty(self):
        f = ring_density(101, 0.96, 0.96)
        model = AvailabilityModel(f, f)
        assert replication_headroom(model, 0.5, 0.96) > 0.3

    def test_headroom_nonnegative_for_matching_reliability(self):
        for density in (ring_density(15, 0.9, 0.9), complete_density(15, 0.9, 0.9)):
            model = AvailabilityModel(density, density)
            for alpha in (0.0, 0.5, 1.0):
                assert replication_headroom(model, alpha, 0.9) >= -1e-9
