"""Unit tests for VoteAssignment."""

import numpy as np
import pytest

from repro.errors import VoteAssignmentError
from repro.quorum.votes import VoteAssignment


class TestConstruction:
    def test_basic(self):
        va = VoteAssignment([1, 2, 3])
        assert va.n_sites == 3
        assert va.total == 6

    def test_rejects_empty(self):
        with pytest.raises(VoteAssignmentError):
            VoteAssignment([])

    def test_rejects_negative(self):
        with pytest.raises(VoteAssignmentError):
            VoteAssignment([1, -1])

    def test_rejects_all_zero(self):
        with pytest.raises(VoteAssignmentError):
            VoteAssignment([0, 0])

    def test_read_only(self):
        va = VoteAssignment([1, 1])
        with pytest.raises(ValueError):
            va.votes[0] = 9

    def test_input_not_aliased(self):
        src = np.array([1, 2, 3])
        va = VoteAssignment(src)
        src[0] = 99
        assert va.votes[0] == 1


class TestConstructors:
    def test_uniform(self):
        va = VoteAssignment.uniform(5)
        assert va.total == 5
        assert va.is_uniform()

    def test_uniform_multi_vote(self):
        assert VoteAssignment.uniform(4, votes_per_site=3).total == 12

    def test_uniform_rejects_bad_args(self):
        with pytest.raises(VoteAssignmentError):
            VoteAssignment.uniform(0)
        with pytest.raises(VoteAssignmentError):
            VoteAssignment.uniform(3, votes_per_site=0)

    def test_single_site(self):
        va = VoteAssignment.single_site(4, 2)
        assert va.total == 1
        assert va.votes[2] == 1
        assert not va.is_uniform()

    def test_single_site_bad_index(self):
        with pytest.raises(VoteAssignmentError):
            VoteAssignment.single_site(4, 4)


class TestQueries:
    def test_votes_of_component(self):
        va = VoteAssignment([1, 2, 3, 4])
        assert va.votes_of([0, 2]) == 4
        assert va.votes_of([]) == 0

    def test_votes_of_rejects_duplicates(self):
        with pytest.raises(VoteAssignmentError):
            VoteAssignment([1, 1]).votes_of([0, 0])

    def test_votes_of_rejects_out_of_range(self):
        with pytest.raises(VoteAssignmentError):
            VoteAssignment([1, 1]).votes_of([5])

    def test_equality_hash(self):
        assert VoteAssignment([1, 2]) == VoteAssignment([1, 2])
        assert hash(VoteAssignment([1, 2])) == hash(VoteAssignment([1, 2]))
        assert VoteAssignment([1, 2]) != VoteAssignment([2, 1])

    def test_zero_vote_site_not_uniform(self):
        assert not VoteAssignment([0, 1]).is_uniform()
