"""Unit tests for the Figure-1 step-4 optimizers."""

import numpy as np
import pytest

from repro.analytic.complete import complete_density
from repro.analytic.ring import ring_density
from repro.errors import OptimizationError
from repro.quorum.availability import AvailabilityModel
from repro.quorum.optimizer import optimal_read_quorum, optimize_availability

METHODS = ("exhaustive", "endpoints", "golden", "brent")


def model_from(density):
    return AvailabilityModel(density, density)


class TestExhaustive:
    def test_dense_network_low_alpha_prefers_majority(self):
        model = model_from(complete_density(20, 0.96, 0.96))
        res = optimal_read_quorum(model, alpha=0.25)
        assert res.read_quorum == model.max_read_quorum

    def test_sparse_network_high_alpha_prefers_rowa(self):
        model = model_from(ring_density(51, 0.96, 0.96))
        res = optimal_read_quorum(model, alpha=0.9)
        assert res.read_quorum == 1

    def test_availability_value_is_consistent(self):
        model = model_from(complete_density(12, 0.9, 0.8))
        res = optimal_read_quorum(model, alpha=0.5)
        assert res.availability == pytest.approx(
            float(model.availability(0.5, res.read_quorum))
        )

    def test_result_metadata(self):
        model = model_from(complete_density(12, 0.9, 0.8))
        res = optimal_read_quorum(model, alpha=0.5)
        assert res.method == "exhaustive"
        assert res.evaluations == model.max_read_quorum
        assert res.alpha == 0.5
        assert res.write_quorum == model.total_votes - res.read_quorum + 1

    def test_tie_breaks_toward_smaller_quorum(self):
        # Flat curve: uniform density over 1..T with alpha = 0.5 and
        # r = w makes small plateaus; force an exact tie with a point mass.
        f = np.zeros(7)
        f[6] = 1.0  # always a full component: every q_r gives A = 1.
        model = model_from(f)
        res = optimal_read_quorum(model, alpha=0.3)
        assert res.read_quorum == 1

    def test_alpha_validation(self):
        model = model_from(complete_density(8, 0.9, 0.9))
        with pytest.raises(OptimizationError):
            optimal_read_quorum(model, alpha=-0.1)

    def test_unknown_method(self):
        model = model_from(complete_density(8, 0.9, 0.9))
        with pytest.raises(OptimizationError):
            optimal_read_quorum(model, 0.5, method="simulated-annealing")


class TestMethodAgreement:
    @pytest.mark.parametrize("alpha", [0.0, 0.25, 0.5, 0.75, 1.0])
    @pytest.mark.parametrize(
        "density",
        [
            complete_density(25, 0.96, 0.96),
            complete_density(25, 0.9, 0.5),
            ring_density(25, 0.96, 0.96),
            ring_density(25, 0.8, 0.9),
        ],
        ids=["dense-reliable", "dense-flaky-links", "ring-reliable", "ring-flaky-sites"],
    )
    def test_all_methods_agree_on_availability(self, alpha, density):
        """Every method must find an availability equal to the exhaustive
        optimum on these (empirically unimodal) paper-like densities."""
        model = model_from(density)
        reference = optimal_read_quorum(model, alpha, method="exhaustive")
        for method in ("golden", "brent"):
            res = optimal_read_quorum(model, alpha, method=method)
            assert res.availability == pytest.approx(reference.availability, abs=1e-12), method

    def test_endpoints_method_exact_when_optimum_at_endpoint(self):
        model = model_from(ring_density(31, 0.96, 0.96))
        for alpha in (0.0, 1.0):
            exhaustive = optimal_read_quorum(model, alpha)
            endpoints = optimal_read_quorum(model, alpha, method="endpoints")
            assert endpoints.read_quorum == exhaustive.read_quorum

    def test_endpoints_cheaper_than_exhaustive(self):
        model = model_from(complete_density(40, 0.96, 0.96))
        endpoint = optimal_read_quorum(model, 0.5, method="endpoints")
        assert endpoint.evaluations == 2

    def test_golden_handles_tiny_ranges(self):
        for T in (1, 2, 3, 4, 5, 6):
            f = complete_density(T, 0.9, 0.9)
            model = model_from(f)
            a = optimal_read_quorum(model, 0.5, method="golden")
            b = optimal_read_quorum(model, 0.5, method="exhaustive")
            assert a.availability == pytest.approx(b.availability)

    def test_interior_maximum_found_by_exhaustive(self):
        # Construct a density with an interior optimum: bimodal component
        # sizes (3 and 8 votes, T = 10) make q_r = 3 strictly best — reads
        # still succeed in the small components while q_w = 8 lets writes
        # succeed in the large ones.
        f = np.zeros(11)
        f[0] = 0.05
        f[3] = 0.50
        f[8] = 0.45
        model = model_from(f)
        curve = model.curve(0.55)
        res = optimal_read_quorum(model, 0.55)
        assert curve[res.read_quorum - 1] == pytest.approx(curve.max())
        assert 1 < res.read_quorum < model.max_read_quorum

    def test_brent_never_worse_than_endpoints(self):
        rng = np.random.default_rng(7)
        for _ in range(20):
            raw = rng.random(16)
            f = raw / raw.sum()
            model = model_from(f)
            alpha = float(rng.random())
            b = optimal_read_quorum(model, alpha, method="brent")
            e = optimal_read_quorum(model, alpha, method="endpoints")
            assert b.availability >= e.availability - 1e-12

    def test_alias(self):
        model = model_from(complete_density(8, 0.9, 0.9))
        assert (
            optimize_availability(model, 0.5).read_quorum
            == optimal_read_quorum(model, 0.5).read_quorum
        )
