"""Unit tests for QuorumAssignment and the section 2.1 constraints."""

import pytest

from repro.errors import QuorumConstraintError
from repro.quorum.assignment import QuorumAssignment


class TestConstraints:
    def test_valid_assignment(self):
        qa = QuorumAssignment(10, 3, 8)
        assert qa.read_quorum == 3
        assert qa.write_quorum == 8

    def test_condition_one_read_write_intersection(self):
        # q_r + q_w = 10 = T violates condition 1.
        with pytest.raises(QuorumConstraintError):
            QuorumAssignment(10, 3, 7)

    def test_condition_two_write_write_intersection(self):
        # q_w = 5 = T/2 violates condition 2 even though q_r + q_w > T.
        with pytest.raises(QuorumConstraintError):
            QuorumAssignment(10, 6, 5)

    def test_quorum_bounds(self):
        with pytest.raises(QuorumConstraintError):
            QuorumAssignment(10, 0, 10)
        with pytest.raises(QuorumConstraintError):
            QuorumAssignment(10, 11, 10)
        with pytest.raises(QuorumConstraintError):
            QuorumAssignment(10, 1, 11)

    def test_positive_total(self):
        with pytest.raises(QuorumConstraintError):
            QuorumAssignment(0, 1, 1)

    def test_immutable(self):
        qa = QuorumAssignment(10, 3, 8)
        with pytest.raises(AttributeError):
            qa.read_quorum = 5


class TestFromReadQuorum:
    @pytest.mark.parametrize("T", [2, 5, 10, 101])
    def test_paper_convention(self, T):
        for q_r in range(1, T // 2 + 1):
            qa = QuorumAssignment.from_read_quorum(T, q_r)
            assert qa.write_quorum == T - q_r + 1

    def test_rejects_dominated_quorums(self):
        with pytest.raises(QuorumConstraintError):
            QuorumAssignment.from_read_quorum(10, 6)

    def test_rejects_zero(self):
        with pytest.raises(QuorumConstraintError):
            QuorumAssignment.from_read_quorum(10, 0)

    def test_single_vote_system(self):
        qa = QuorumAssignment.from_read_quorum(1, 1)
        assert (qa.read_quorum, qa.write_quorum) == (1, 1)
        with pytest.raises(QuorumConstraintError):
            QuorumAssignment.from_read_quorum(1, 2)


class TestNamedInstances:
    def test_majority_even(self):
        qa = QuorumAssignment.majority(10)
        assert (qa.read_quorum, qa.write_quorum) == (5, 6)
        assert qa.is_majority

    def test_majority_odd_uses_paper_convention(self):
        # The literal (floor(T/2), floor(T/2)+1) pair violates condition 1
        # for odd T; majority() must stay valid (see assignment.py).
        qa = QuorumAssignment.majority(101)
        assert qa.read_quorum == 50
        assert qa.write_quorum == 52
        assert qa.is_majority

    def test_majority_degenerate(self):
        assert QuorumAssignment.majority(1).read_quorum == 1

    def test_rowa(self):
        qa = QuorumAssignment.read_one_write_all(7)
        assert (qa.read_quorum, qa.write_quorum) == (1, 7)
        assert qa.is_read_one_write_all
        assert not qa.is_majority

    def test_majority_not_rowa(self):
        assert not QuorumAssignment.majority(10).is_read_one_write_all


class TestDecisions:
    def test_allows_read_write(self):
        qa = QuorumAssignment(10, 3, 8)
        assert qa.allows_read(3)
        assert not qa.allows_read(2)
        assert qa.allows_write(8)
        assert not qa.allows_write(7)

    def test_allows_dispatch(self):
        qa = QuorumAssignment(10, 3, 8)
        assert qa.allows(5, is_read=True)
        assert not qa.allows(5, is_read=False)

    def test_down_site_zero_votes_denied(self):
        qa = QuorumAssignment.read_one_write_all(10)
        assert not qa.allows_read(0)
        assert not qa.allows_write(0)

    def test_distinguishes_reads(self):
        assert QuorumAssignment.read_one_write_all(10).distinguishes_reads()
        assert not QuorumAssignment.majority(10).distinguishes_reads()

    def test_str(self):
        assert str(QuorumAssignment(10, 3, 8)) == "(q_r=3, q_w=8, T=10)"
