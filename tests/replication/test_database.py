"""Integration tests for the replicated database data path."""

import pytest

from repro.errors import ProtocolError, SerializabilityError
from repro.protocols.base import ReplicaControlProtocol
from repro.protocols.quorum_consensus import QuorumConsensusProtocol
from repro.protocols.reassignment import QuorumReassignmentProtocol
from repro.quorum.assignment import QuorumAssignment
from repro.replication.database import ReplicatedDatabase
from repro.replication.transaction import AccessOutcome
from repro.topology.generators import ring


def make_db(n=5, q_r=2, initial="v0"):
    topo = ring(n)
    proto = QuorumConsensusProtocol(QuorumAssignment.from_read_quorum(n, q_r))
    return ReplicatedDatabase(topo, proto, initial_value=initial)


class TestHappyPath:
    def test_initial_read(self):
        db = make_db()
        res = db.submit_read(0)
        assert res.granted
        assert res.value == "v0"
        assert res.timestamp == 0

    def test_write_then_read_any_site(self):
        db = make_db()
        w = db.submit_write(2, "v1")
        assert w.granted
        assert len(w.updated_sites) == 5
        for site in range(5):
            assert db.submit_read(site).value == "v1"

    def test_timestamps_monotone(self):
        db = make_db()
        t1 = db.submit_write(0, "a").timestamp
        t2 = db.submit_write(1, "b").timestamp
        assert t2 > t1

    def test_history_and_counts(self):
        db = make_db()
        db.submit_read(0)
        db.submit_write(1, "x")
        db.fail_site(3)
        db.submit_read(3)
        counts = db.grant_counts()
        assert counts["read:granted"] == 1
        assert counts["write:granted"] == 1
        assert counts["read:site_down"] == 1


class TestDenials:
    def test_down_site_denied(self):
        db = make_db()
        db.fail_site(2)
        res = db.submit_read(2)
        assert res.outcome is AccessOutcome.SITE_DOWN

    def test_no_quorum_denied(self):
        db = make_db(n=5, q_r=2)  # q_w = 4
        # Isolate site 0: component of 1 vote < q_r = 2.
        db.fail_link(0, 1)
        db.fail_link(4, 0)
        res = db.submit_read(0)
        assert res.outcome is AccessOutcome.NO_QUORUM
        assert res.component_votes == 1

    def test_partition_blocks_minority_writes(self):
        db = make_db(n=5, q_r=2)  # q_w = 4
        db.fail_link(0, 1)
        db.fail_link(2, 3)
        # Component {1, 2} has 2 votes: reads ok, writes denied.
        assert db.submit_read(1).granted
        assert db.submit_write(1, "nope").outcome is AccessOutcome.NO_QUORUM


class TestConsistencyAcrossPartitions:
    def test_reads_after_heal_see_partition_write(self):
        db = make_db(n=5, q_r=2)  # q_w = 4
        db.fail_site(4)
        # Component {0,1,2,3} has 4 votes: write allowed.
        assert db.submit_write(0, "during-partition").granted
        db.repair_site(4)
        # Site 4's copy is stale, but a read anywhere must return the new
        # value because the read path takes the newest copy in the component.
        assert db.submit_read(4).value == "during-partition"

    def test_stale_copy_visible_in_raw_store(self):
        db = make_db(n=5, q_r=2)
        db.fail_site(4)
        db.submit_write(0, "new")
        assert db.copy_at(4).timestamp == 0   # missed the write
        assert db.copy_at(0).timestamp == 1

    def test_serializability_checker_catches_broken_protocol(self):
        """A deliberately unsafe protocol (grants everything) must trip the
        one-copy-serializability check after a partitioned write."""

        class YesProtocol(ReplicaControlProtocol):
            name = "always-yes"

            def grant_masks(self, tracker):
                import numpy as np

                up = tracker.labels >= 0
                return up, up.copy()

        topo = ring(4)
        db = ReplicatedDatabase(topo, YesProtocol(), initial_value="v0")
        # Partition into {0,1} and {2,3}.
        db.fail_link(1, 2)
        db.fail_link(3, 0)
        db.submit_write(0, "left")     # updates copies at 0, 1 only
        with pytest.raises(SerializabilityError):
            db.submit_read(2)          # sees stale v0: checker fires

    def test_checker_can_be_disabled(self):
        class YesProtocol(ReplicaControlProtocol):
            name = "always-yes"

            def grant_masks(self, tracker):
                up = tracker.labels >= 0
                return up, up.copy()

        topo = ring(4)
        db = ReplicatedDatabase(topo, YesProtocol(), initial_value="v0",
                                check_serializability=False)
        db.fail_link(1, 2)
        db.fail_link(3, 0)
        db.submit_write(0, "left")
        stale = db.submit_read(2)
        assert stale.value == "v0"  # observably stale without the checker


class TestWithDynamicProtocol:
    def test_qr_protocol_drives_database(self):
        topo = ring(5)
        proto = QuorumReassignmentProtocol(5, QuorumAssignment.majority(5))
        db = ReplicatedDatabase(topo, proto, initial_value=0)
        assert db.submit_write(0, 1).granted
        # Reassign to ROWA from the full network, then partition.
        assert proto.try_reassign(db.tracker, 0, QuorumAssignment.read_one_write_all(5))
        db.fail_site(4)
        # ROWA: writes need all 5 votes -> denied; reads need 1 -> granted.
        assert db.submit_write(0, 2).outcome is AccessOutcome.NO_QUORUM
        assert db.submit_read(0).value == 1


class TestValidation:
    def test_vote_mismatch_rejected(self):
        from repro.replication.item import ReplicatedItem

        topo = ring(5)
        item = ReplicatedItem.at_sites("x", [0, 1])
        proto = QuorumConsensusProtocol(QuorumAssignment.majority(2))
        with pytest.raises(ProtocolError):
            ReplicatedDatabase(topo, proto, item=item)

    def test_partial_replication_with_matching_votes(self):
        from repro.replication.item import ReplicatedItem

        base = ring(5)
        item = ReplicatedItem.at_sites("x", [0, 2, 4])
        topo = base.with_votes(item.votes_vector(5))
        proto = QuorumConsensusProtocol(QuorumAssignment.majority(3))
        db = ReplicatedDatabase(topo, proto, item=item, initial_value="v")
        # Site 1 holds no copy but may still submit accesses.
        res = db.submit_read(1)
        assert res.granted
        assert res.value == "v"

    def test_unknown_site(self):
        db = make_db()
        with pytest.raises(Exception):
            db.submit_read(99)

    def test_time_advances(self):
        db = make_db()
        db.advance_time(2.5)
        assert db.submit_read(0).time == 2.5
        with pytest.raises(Exception):
            db.advance_time(-1.0)
