"""Unit tests for SiteStore, CopyState, and ReplicatedItem."""

import numpy as np
import pytest

from repro.errors import ReproError, VoteAssignmentError
from repro.replication.item import ReplicatedItem
from repro.replication.store import CopyState, SiteStore
from repro.topology.generators import ring


class TestSiteStore:
    def test_initialize_and_read(self):
        store = SiteStore(3)
        store.initialize("x", "v0")
        copy = store.read("x")
        assert copy.value == "v0"
        assert copy.timestamp == 0

    def test_missing_copy(self):
        store = SiteStore(0)
        with pytest.raises(ReproError):
            store.read("nope")

    def test_write_monotone(self):
        store = SiteStore(0)
        store.initialize("x", None)
        store.write("x", "a", 1)
        store.write("x", "b", 3)
        assert store.read("x").value == "b"

    def test_stale_write_rejected(self):
        store = SiteStore(0)
        store.initialize("x", None)
        store.write("x", "a", 5)
        with pytest.raises(ReproError):
            store.write("x", "old", 5)
        with pytest.raises(ReproError):
            store.write("x", "older", 3)

    def test_multiple_items(self):
        store = SiteStore(0)
        store.initialize("x", 1)
        store.initialize("y", 2)
        store.write("x", 10, 1)
        assert store.read("y").value == 2
        assert set(store.items()) == {"x", "y"}

    def test_negative_site_rejected(self):
        with pytest.raises(ReproError):
            SiteStore(-1)

    def test_copystate_comparison(self):
        assert CopyState("b", 2).newer_than(CopyState("a", 1))
        assert not CopyState("a", 1).newer_than(CopyState("b", 2))


class TestReplicatedItem:
    def test_fully_replicated(self):
        topo = ring(5)
        item = ReplicatedItem.fully_replicated("x", topo)
        assert item.replica_sites == (0, 1, 2, 3, 4)
        assert item.total_votes == 5
        assert item.holds_copy(3)

    def test_partial_replication(self):
        item = ReplicatedItem.at_sites("x", [1, 3], votes=[2, 1])
        assert item.total_votes == 3
        assert not item.holds_copy(0)

    def test_votes_vector(self):
        item = ReplicatedItem.at_sites("x", [1, 3])
        np.testing.assert_array_equal(item.votes_vector(5), [0, 1, 0, 1, 0])

    def test_votes_vector_range_check(self):
        item = ReplicatedItem.at_sites("x", [4])
        with pytest.raises(ReproError):
            item.votes_vector(3)

    def test_validation(self):
        with pytest.raises(ReproError):
            ReplicatedItem("", (0,), (1,))
        with pytest.raises(ReproError):
            ReplicatedItem("x", (), ())
        with pytest.raises(ReproError):
            ReplicatedItem("x", (0, 0), (1, 1))
        with pytest.raises(VoteAssignmentError):
            ReplicatedItem("x", (0, 1), (1,))
        with pytest.raises(VoteAssignmentError):
            ReplicatedItem("x", (0,), (-1,))
        with pytest.raises(VoteAssignmentError):
            ReplicatedItem("x", (0, 1), (0, 0))
