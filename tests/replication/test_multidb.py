"""Tests for the multi-item database."""

import pytest

from repro.errors import ProtocolError, ReproError
from repro.protocols.quorum_consensus import QuorumConsensusProtocol
from repro.quorum.assignment import QuorumAssignment
from repro.replication.item import ReplicatedItem
from repro.replication.multidb import ItemBinding, MultiItemDatabase
from repro.replication.transaction import AccessOutcome
from repro.topology.generators import ring


def qc(T, q_r):
    return QuorumConsensusProtocol(QuorumAssignment.from_read_quorum(T, q_r))


@pytest.fixture
def db():
    """A 6-site ring with a read-tuned catalog and a write-tuned ledger.

    catalog: fully replicated, ROWA-ish (q_r=1, q_w=6).
    ledger: fully replicated, majority (q_r=3, q_w=4).
    config: partially replicated at sites {0, 2, 4}, majority of 3.
    """
    topo = ring(6)
    catalog = ItemBinding(
        ReplicatedItem.fully_replicated("catalog", topo), qc(6, 1), "cat0"
    )
    ledger = ItemBinding(
        ReplicatedItem.fully_replicated("ledger", topo), qc(6, 3), 0
    )
    config = ItemBinding(
        ReplicatedItem.at_sites("config", [0, 2, 4]), qc(3, 1), "cfg0"
    )
    return MultiItemDatabase(topo, [catalog, ledger, config])


class TestConstruction:
    def test_item_ids(self, db):
        assert set(db.item_ids) == {"catalog", "ledger", "config"}

    def test_duplicate_ids_rejected(self):
        topo = ring(4)
        binding = ItemBinding(ReplicatedItem.fully_replicated("x", topo), qc(4, 2))
        with pytest.raises(ReproError):
            MultiItemDatabase(topo, [binding, binding])

    def test_empty_rejected(self):
        with pytest.raises(ReproError):
            MultiItemDatabase(ring(4), [])


class TestSingleItemOps:
    def test_read_write_round_trip(self, db):
        assert db.read("catalog", 3).value == "cat0"
        w = db.write("ledger", 2, 42)
        assert w.granted
        assert db.read("ledger", 5).value == 42

    def test_per_item_quorums_differ(self, db):
        # Partition the ring into {1,2} and {3,4,5,0}.
        db.fail_link(0, 1)
        db.fail_link(2, 3)
        # catalog (q_r=1): readable in both fragments.
        assert db.read("catalog", 1).granted
        assert db.read("catalog", 4).granted
        # ledger (q_r=3): only the 4-site fragment reads; neither writes
        # fails... q_w=4 -> the big fragment CAN write.
        assert db.read("ledger", 1).outcome is AccessOutcome.NO_QUORUM
        assert db.read("ledger", 4).granted
        assert db.write("ledger", 4, 7).granted
        assert db.write("ledger", 1, 8).outcome is AccessOutcome.NO_QUORUM

    def test_partially_replicated_item(self, db):
        # config lives at {0,2,4} with T=3, q_r=1, q_w=3.
        w = db.write("config", 1, "cfg1")   # site 1 holds no copy but may submit
        assert w.granted
        assert set(w.updated_sites) == {0, 2, 4}
        assert db.read("config", 5).value == "cfg1"

    def test_down_site_denied(self, db):
        db.fail_site(2)
        assert db.read("catalog", 2).outcome is AccessOutcome.SITE_DOWN

    def test_unknown_item_or_site(self, db):
        with pytest.raises(ReproError):
            db.read("nope", 0)
        with pytest.raises(ReproError):
            db.read("catalog", 99)


class TestTransactions:
    def test_multi_item_commit(self, db):
        result = db.transaction(0, reads=["catalog"], writes={"ledger": 1, "config": "c"})
        assert result.committed
        assert result.reads["catalog"].value == "cat0"
        assert result.writes["ledger"].timestamp == 1
        assert db.read("config", 4).value == "c"

    def test_all_or_nothing_on_quorum_denial(self, db):
        # Partition so ledger writes fail in the small fragment but the
        # catalog read there would succeed: nothing must be applied.
        db.fail_link(0, 1)
        db.fail_link(2, 3)
        before = db.copy_at("catalog", 1).timestamp
        result = db.transaction(1, reads=["catalog"], writes={"ledger": 99})
        assert not result.committed
        assert result.blocking_item == "ledger"
        assert db.copy_at("catalog", 1).timestamp == before
        # Ledger copies everywhere untouched.
        assert db.copy_at("ledger", 4).value == 0

    def test_validation(self, db):
        with pytest.raises(ReproError):
            db.transaction(0)  # empty
        with pytest.raises(ReproError):
            db.transaction(0, reads=["ledger"], writes={"ledger": 1})  # overlap

    def test_serializability_checked_per_item(self, db):
        """Stale reads impossible: write ledger during a partition, heal,
        read from the formerly-isolated side."""
        db.fail_site(1)
        db.write("ledger", 3, 123)   # 5-site component: q_w=4 satisfied
        db.repair_site(1)
        assert db.read("ledger", 1).value == 123


class TestIndependentTuning:
    def test_items_share_one_failure_process(self, db):
        """One partition event affects all items' trackers consistently."""
        db.fail_link(0, 1)
        db.fail_link(2, 3)
        t_cat = db.tracker_for("catalog")
        t_cfg = db.tracker_for("config")
        # Same component structure...
        assert (t_cat.labels == t_cfg.labels).all()
        # ...different vote totals (config has votes only at 0, 2, 4).
        assert t_cat.votes_at(4) == 4
        assert t_cfg.votes_at(4) == 2
