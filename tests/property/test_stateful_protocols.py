"""Hypothesis stateful machines driving the dynamic protocols.

These are the strongest safety tests in the suite: hypothesis explores
arbitrary interleavings of failures, repairs, reassignment attempts, and
data accesses, checking protocol invariants after every step and
shrinking any violation to a minimal event sequence.
"""

import numpy as np
from hypothesis import settings
from hypothesis.stateful import RuleBasedStateMachine, initialize, invariant, rule
from hypothesis import strategies as st

from repro.connectivity.dynamic import ComponentTracker, NetworkState
from repro.protocols.dynamic_voting import DynamicVotingProtocol
from repro.protocols.quorum_consensus import QuorumConsensusProtocol
from repro.protocols.reassignment import QuorumReassignmentProtocol
from repro.quorum.assignment import QuorumAssignment
from repro.replication.database import ReplicatedDatabase
from repro.topology.generators import ring_with_chords

N_SITES = 6
TOPOLOGY = ring_with_chords(N_SITES, 1)
N_LINKS = TOPOLOGY.n_links

sites = st.integers(0, N_SITES - 1)
links = st.integers(0, N_LINKS - 1)
read_quorums = st.integers(1, N_SITES // 2)


class QRSafetyMachine(RuleBasedStateMachine):
    """QR protocol: no access under a stale assignment, single writer."""

    @initialize()
    def setup(self):
        self.state = NetworkState(TOPOLOGY)
        self.tracker = ComponentTracker(self.state)
        self.protocol = QuorumReassignmentProtocol(
            N_SITES, QuorumAssignment.majority(N_SITES)
        )
        self.protocol.on_network_change(self.tracker)

    @rule(site=sites)
    def flip_site(self, site):
        self.state.set_site(site, not self.state.site_up[site])
        self.protocol.on_network_change(self.tracker)

    @rule(link=links)
    def flip_link(self, link):
        self.state.set_link(link, not self.state.link_up[link])
        self.protocol.on_network_change(self.tracker)

    @rule(site=sites, q_r=read_quorums)
    def attempt_reassign(self, site, q_r):
        self.protocol.try_reassign(
            self.tracker, site, QuorumAssignment.from_read_quorum(N_SITES, q_r)
        )

    @invariant()
    def granted_components_know_newest_assignment(self):
        read_mask, write_mask = self.protocol.grant_masks(self.tracker)
        newest = self.protocol.max_version()
        for site in np.nonzero(read_mask | write_mask)[0]:
            members = self.tracker.component_of(int(site))
            assert int(self.protocol.site_version[members].max()) == newest

    @invariant()
    def at_most_one_writing_component(self):
        _, write_mask = self.protocol.grant_masks(self.tracker)
        writers = np.nonzero(write_mask)[0]
        assert len({int(self.tracker.labels[w]) for w in writers}) <= 1

    @invariant()
    def down_sites_never_granted(self):
        read_mask, write_mask = self.protocol.grant_masks(self.tracker)
        down = ~self.state.site_up
        assert not read_mask[down].any()
        assert not write_mask[down].any()


class DynamicVotingMachine(RuleBasedStateMachine):
    """Dynamic voting: at most one distinguished component, aligned with
    the partition, and never containing a down site."""

    @initialize()
    def setup(self):
        self.state = NetworkState(TOPOLOGY)
        self.tracker = ComponentTracker(self.state)
        self.protocol = DynamicVotingProtocol(N_SITES)
        self.protocol.on_network_change(self.tracker)

    @rule(site=sites)
    def flip_site(self, site):
        self.state.set_site(site, not self.state.site_up[site])
        self.protocol.on_network_change(self.tracker)

    @rule(link=links)
    def flip_link(self, link):
        self.state.set_link(link, not self.state.link_up[link])
        self.protocol.on_network_change(self.tracker)

    @rule()
    def extra_write(self):
        self.protocol.perform_write(self.tracker)

    @invariant()
    def one_whole_distinguished_component(self):
        members = self.protocol.distinguished_component(self.tracker)
        if members is None:
            return
        labels = self.tracker.labels
        label_set = {int(labels[m]) for m in members}
        assert len(label_set) == 1
        label = label_set.pop()
        assert label >= 0
        assert np.array_equal(members, np.nonzero(labels == label)[0])

    @invariant()
    def participant_counts_consistent(self):
        # Every copy's recorded cardinality is at least 1 and at most n.
        assert (self.protocol.cardinality >= 1).all()
        assert (self.protocol.cardinality <= N_SITES).all()


class DatabaseMachine(RuleBasedStateMachine):
    """Replicated database under quorum consensus: the built-in
    serializability checker must never fire, and granted reads must
    return the globally newest committed value."""

    @initialize(q_r=read_quorums)
    def setup(self, q_r):
        protocol = QuorumConsensusProtocol(
            QuorumAssignment.from_read_quorum(N_SITES, q_r)
        )
        self.db = ReplicatedDatabase(TOPOLOGY, protocol, initial_value=0)
        self.next_value = 1
        self.committed = 0

    @rule(site=sites)
    def flip_site(self, site):
        if self.db.state.site_up[site]:
            self.db.fail_site(site)
        else:
            self.db.repair_site(site)

    @rule(link=links)
    def flip_link(self, link):
        pair = TOPOLOGY.links[link].endpoints()
        if self.db.state.link_up[link]:
            self.db.fail_link(*pair)
        else:
            self.db.repair_link(*pair)

    @rule(site=sites)
    def read(self, site):
        result = self.db.submit_read(site)  # checker raises on violation
        if result.granted:
            assert result.value == self.committed

    @rule(site=sites)
    def write(self, site):
        result = self.db.submit_write(site, self.next_value)
        if result.granted:
            self.committed = self.next_value
        self.next_value += 1


TestQRSafetyMachine = QRSafetyMachine.TestCase
TestQRSafetyMachine.settings = settings(max_examples=25, stateful_step_count=30,
                                        deadline=None)

TestDynamicVotingMachine = DynamicVotingMachine.TestCase
TestDynamicVotingMachine.settings = settings(max_examples=25, stateful_step_count=30,
                                             deadline=None)

TestDatabaseMachine = DatabaseMachine.TestCase
TestDatabaseMachine.settings = settings(max_examples=25, stateful_step_count=30,
                                        deadline=None)
