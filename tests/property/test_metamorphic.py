"""Hypothesis property tests for the metamorphic relations.

The executable relations in :mod:`repro.verification.metamorphic` run at
fixed parameter points inside ``repro verify``; here Hypothesis drives
the same identities across randomly drawn families, sizes,
reliabilities, and access mixes, so a violation that only appears at an
odd parameter corner still gets caught.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analytic import closed_form_density
from repro.analytic.enumeration import enumerate_density_matrix
from repro.quorum.availability import AvailabilityModel
from repro.quorum.optimizer import optimal_read_quorum
from repro.topology.generators import ring
from repro.topology.model import Topology
from repro.verification.cases import VerificationCase
from repro.verification.metamorphic import METAMORPHIC_RELATIONS, run_metamorphic

pytestmark = pytest.mark.slow  # hypothesis sweeps with enumeration oracles

families = st.sampled_from(["ring", "complete", "bus"])
sizes = st.integers(min_value=3, max_value=12)
probs = st.floats(min_value=0.05, max_value=0.99, allow_nan=False)
alphas = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)


def _model(family, n, p, r):
    row = closed_form_density(family, n, p, r)
    return AvailabilityModel(row, row)


class TestReliabilityMonotonicity:
    @given(families, sizes, probs, probs, probs, alphas)
    @settings(max_examples=40, deadline=None)
    def test_monotone_in_site_reliability(self, family, n, p1, p2, r, alpha):
        lo, hi = sorted((p1, p2))
        curve_lo = _model(family, n, lo, r).curve(alpha)
        curve_hi = _model(family, n, hi, r).curve(alpha)
        assert (curve_hi - curve_lo >= -1e-12).all()

    @given(families, sizes, probs, probs, probs, alphas)
    @settings(max_examples=40, deadline=None)
    def test_monotone_in_link_reliability(self, family, n, p, r1, r2, alpha):
        lo, hi = sorted((r1, r2))
        curve_lo = _model(family, n, p, lo).curve(alpha)
        curve_hi = _model(family, n, p, hi).curve(alpha)
        assert (curve_hi - curve_lo >= -1e-12).all()


class TestAlphaSymmetry:
    @given(families, sizes, probs, probs, alphas)
    @settings(max_examples=40, deadline=None)
    def test_read_write_swap_is_identity(self, family, n, p, r, alpha):
        model = _model(family, n, p, r)
        T = model.total_votes
        quorums = np.arange(1, T + 1)
        forward = np.asarray(model.availability(alpha, quorums))
        mirrored = np.asarray(model.availability(1.0 - alpha, T - quorums + 1))
        assert forward == pytest.approx(mirrored, abs=1e-12)


class TestAlphaExtremes:
    @given(families, sizes, probs, probs)
    @settings(max_examples=40, deadline=None)
    def test_pure_reads_degenerate_to_rowa(self, family, n, p, r):
        model = _model(family, n, p, r)
        quorums = model.feasible_read_quorums()
        # The objective collapses to R(q_r) alone...
        assert np.asarray(model.availability(1.0, quorums)) == pytest.approx(
            np.asarray(model.read_availability(quorums)), abs=1e-12
        )
        # ...whose optimum is the ROWA assignment q_r = 1, q_w = T.
        best = optimal_read_quorum(model, 1.0)
        assert best.read_quorum == 1
        assert best.write_quorum == model.total_votes
        assert best.availability == pytest.approx(
            float(model.read_availability(1)), abs=1e-12
        )

    @given(families, sizes, probs, probs)
    @settings(max_examples=40, deadline=None)
    def test_pure_writes_ignore_the_read_density(self, family, n, p, r):
        model = _model(family, n, p, r)
        quorums = model.feasible_read_quorums()
        assert np.asarray(model.availability(0.0, quorums)) == pytest.approx(
            np.asarray(model.write_availability_at(quorums)), abs=1e-12
        )
        best = optimal_read_quorum(model, 0.0)
        assert best.availability == pytest.approx(
            float(model.write_availability_at(model.max_read_quorum)), abs=1e-12
        )


class TestRelabelingInvariance:
    @given(
        st.integers(min_value=4, max_value=6),
        st.lists(probs, min_size=6, max_size=6),
        probs,
        alphas,
        st.randoms(use_true_random=False),
    )
    @settings(max_examples=15, deadline=None)
    def test_enumeration_and_optimizer_survive_relabeling(
        self, n, site_ps, r, alpha, rnd
    ):
        topology = ring(n)
        site_rel = np.asarray(site_ps[:n])
        link_rel = np.full(topology.n_links, r)
        perm = list(range(n))
        rnd.shuffle(perm)
        perm = np.asarray(perm)

        permuted = Topology(
            n, [(int(perm[l.a]), int(perm[l.b])) for l in topology.links]
        )
        site_rel_perm = np.empty_like(site_rel)
        site_rel_perm[perm] = site_rel
        link_rel_perm = np.empty(permuted.n_links)
        for link in topology.links:
            target = permuted.link_id(int(perm[link.a]), int(perm[link.b]))
            link_rel_perm[target] = link_rel[topology.link_id(link.a, link.b)]

        matrix = enumerate_density_matrix(topology, site_rel, link_rel)
        matrix_perm = enumerate_density_matrix(
            permuted, site_rel_perm, link_rel_perm
        )
        assert matrix_perm[perm] == pytest.approx(matrix, abs=1e-12)

        best = optimal_read_quorum(
            AvailabilityModel.from_density_matrix(matrix), alpha
        )
        best_perm = optimal_read_quorum(
            AvailabilityModel.from_density_matrix(matrix_perm), alpha
        )
        assert best.read_quorum == best_perm.read_quorum
        assert best.availability == pytest.approx(
            best_perm.availability, abs=1e-12
        )


class TestExecutableRelationLibrary:
    """The packaged relations agree with the raw properties above."""

    @given(families, st.integers(min_value=4, max_value=9), probs, probs, alphas)
    @settings(max_examples=10, deadline=None)
    def test_all_relations_pass_on_healthy_code(self, family, n, p, r, alpha):
        case = VerificationCase(
            name=f"prop-{family}-{n}", family=family, n_sites=n,
            p=p, r=r, alpha=alpha, read_quorums=(1,),
        )
        results = run_metamorphic(case)
        assert {r_.check for r_ in results} == set(METAMORPHIC_RELATIONS)
        failures = [str(r_) for r_ in results if not r_.passed]
        assert not failures, "\n".join(failures)

    @given(st.integers(min_value=4, max_value=9), probs, probs, alphas)
    @settings(max_examples=10, deadline=None)
    def test_off_by_one_breaks_symmetry_everywhere(self, n, p, r, alpha):
        case = VerificationCase(
            name=f"prop-ring-{n}", family="ring", n_sites=n,
            p=p, r=r, alpha=alpha, read_quorums=(1,),
        )
        results = run_metamorphic(case, bug="quorum-off-by-one")
        failed = {r_.check for r_ in results if not r_.passed}
        assert "alpha-symmetry" in failed
