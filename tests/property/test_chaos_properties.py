"""Property tests for the chaos subsystem.

The headline property is the executable form of the paper's correctness
claim under adversarial conditions: for ANY scripted fault schedule (and
any retry discipline on the data path), a correct protocol preserves
one-copy serializability and never grants writes in two disjoint
components. The invariant monitor is the judge — the same one chaos
campaigns use — so these tests also guard the monitor against false
positives on correct protocols.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SerializabilityError
from repro.faults.chaos import run_chaos_campaign
from repro.faults.retry import RetryPolicy
from repro.faults.schedule import (
    CascadingFailure,
    CorrelatedFailure,
    FaultSchedule,
    FlappingSite,
    ScriptedPartition,
    SiteCrash,
)
from repro.protocols.majority import MajorityConsensusProtocol
from repro.protocols.reassignment import QuorumReassignmentProtocol
from repro.quorum.assignment import QuorumAssignment
from repro.replication.database import ReplicatedDatabase
from repro.simulation.config import SimulationConfig
from repro.simulation.workload import AccessWorkload
from repro.topology.generators import ring

N_SITES = 7
HORIZON = 120.0 / N_SITES  # accesses_per_batch / aggregate rate

times = st.floats(0.0, 10.0, allow_nan=False, allow_infinity=False)
durations = st.floats(0.5, 5.0, allow_nan=False, allow_infinity=False)
site_sets = st.sets(st.integers(0, N_SITES - 1), min_size=1, max_size=3)

site_crashes = st.builds(
    lambda at, sites, heal: SiteCrash(at, sorted(sites), heal_at=at + heal),
    times, site_sets, durations,
)
partitions = st.builds(
    lambda at, group, heal: ScriptedPartition(at, [sorted(group)],
                                              heal_at=at + heal),
    times, site_sets, durations,
)
flappers = st.builds(
    lambda site, period, until: FlappingSite(site, period=period, until=until),
    st.integers(0, N_SITES - 1),
    st.floats(1.0, 4.0),
    st.floats(8.0, HORIZON),
)
cascades = st.builds(
    lambda start, sites, delay, heal: CascadingFailure(
        start, sorted(sites), delay,
        heal_at=start + delay * (len(sites) - 1) + heal,
    ),
    times, site_sets, st.floats(0.0, 1.0), durations,
)
correlated = st.builds(
    lambda sites, at, down: CorrelatedFailure(sites=sorted(sites),
                                              at_times=[at], down_time=down),
    site_sets, times, durations,
)

fault_schedules = st.lists(
    st.one_of(site_crashes, partitions, flappers, cascades, correlated),
    min_size=1, max_size=3,
).map(FaultSchedule)

retry_policies = st.builds(
    RetryPolicy,
    max_attempts=st.integers(1, 4),
    base_delay=st.floats(0.1, 2.0),
    multiplier=st.floats(1.0, 2.0),
    max_delay=st.just(8.0),
    deadline=st.one_of(st.none(), st.floats(1.0, 10.0)),
    jitter=st.floats(0.0, 0.5),
)


def chaos_config(schedule, seed):
    return SimulationConfig(
        topology=ring(N_SITES),
        workload=AccessWorkload.uniform(N_SITES, 0.5, 1.0),
        warmup_accesses=0.0,
        accesses_per_batch=120.0,
        n_batches=1,
        initial_state="stationary",
        seed=seed,
        fault_schedule=schedule,
    )


class TestAnyScheduleIsSurvived:
    """A correct protocol passes ANY scripted fault scenario clean."""

    @settings(max_examples=15, deadline=None)
    @given(schedule=fault_schedules, seed=st.integers(0, 2**16))
    def test_majority_consensus(self, schedule, seed):
        report = run_chaos_campaign(
            chaos_config(schedule, seed), MajorityConsensusProtocol(N_SITES)
        )
        assert report.passed, report.summary()

    @settings(max_examples=15, deadline=None)
    @given(schedule=fault_schedules, seed=st.integers(0, 2**16))
    def test_quorum_reassignment(self, schedule, seed):
        protocol = QuorumReassignmentProtocol(
            N_SITES, QuorumAssignment.majority(N_SITES)
        )
        report = run_chaos_campaign(chaos_config(schedule, seed), protocol)
        assert report.passed, report.summary()


#: Operations for the database-level interleaving property.
ops = st.lists(
    st.one_of(
        st.tuples(st.just("read"), st.integers(0, 5)),
        st.tuples(st.just("write"), st.integers(0, 5)),
        st.tuples(st.just("flip_site"), st.integers(0, 5)),
        st.tuples(st.just("flip_link"), st.integers(0, 5)),
    ),
    min_size=1, max_size=40,
)


class TestRetryPreservesSerializability:
    """Any op interleaving + any retry policy: the 1SR checker never trips.

    ``check_serializability=True`` raises on the first granted read that
    misses the newest committed write or the first non-monotone commit —
    so simply completing the run IS the assertion.
    """

    @settings(max_examples=40, deadline=None)
    @given(operations=ops, policy=retry_policies, seed=st.integers(0, 2**16))
    def test_no_serializability_violation(self, operations, policy, seed):
        topo = ring(6)
        db = ReplicatedDatabase(
            topo,
            MajorityConsensusProtocol(6),
            initial_value=0,
            check_serializability=True,
            retry_policy=policy,
            retry_seed=seed,
        )
        writes = 0
        for kind, target in operations:
            if kind == "read":
                if db.state.site_up[target]:
                    result = db.submit_read(target)
                    if result.granted:
                        assert result.value == writes
            elif kind == "write":
                if db.state.site_up[target]:
                    result = db.submit_write(target, writes + 1)
                    if result.granted:
                        writes += 1
            elif kind == "flip_site":
                db.state.set_site(target, not db.state.site_up[target])
                db._network_changed()
            else:
                db.state.set_link(target, not db.state.link_up[target])
                db._network_changed()

    @settings(max_examples=60, deadline=None)
    @given(policy=retry_policies, attempt=st.integers(1, 10),
           seed=st.integers(0, 2**16))
    def test_backoff_is_bounded(self, policy, attempt, seed):
        from repro.rng import as_generator

        delay = policy.backoff(attempt, as_generator(seed))
        assert 0.0 <= delay <= policy.max_delay * (1.0 + policy.jitter) + 1e-9
        if policy.jitter == 0.0 and attempt > 1:
            assert delay >= policy.backoff(attempt - 1)
