"""Property-based tests (hypothesis) for the quorum machinery."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.quorum.assignment import QuorumAssignment
from repro.quorum.availability import AvailabilityModel
from repro.quorum.constraints import feasible_read_quorums, optimize_with_write_floor
from repro.quorum.coterie import coterie_from_votes
from repro.quorum.optimizer import optimal_read_quorum
from repro.quorum.votes import VoteAssignment
from repro.errors import OptimizationError


# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------

@st.composite
def densities(draw, min_votes=2, max_votes=30):
    """A random normalized density over 0..T."""
    T = draw(st.integers(min_votes, max_votes))
    raw = draw(
        st.lists(st.floats(0.0, 1.0, allow_nan=False), min_size=T + 1, max_size=T + 1)
    )
    arr = np.asarray(raw, dtype=np.float64) + 1e-9  # avoid all-zero
    return arr / arr.sum()


@st.composite
def models(draw):
    f = draw(densities())
    g_raw = draw(st.one_of(st.none(), densities()))
    if g_raw is None or g_raw.shape != f.shape:
        g = f
    else:
        g = g_raw
    return AvailabilityModel(f, g)


vote_vectors = st.lists(st.integers(0, 5), min_size=1, max_size=8).filter(
    lambda v: sum(v) > 0
)


# ----------------------------------------------------------------------
# Quorum assignment invariants
# ----------------------------------------------------------------------

class TestAssignmentProperties:
    @given(st.integers(1, 500))
    def test_paper_convention_always_valid(self, T):
        """q_w = T - q_r + 1 satisfies both section 2.1 conditions for
        every feasible q_r."""
        for q_r in range(1, max(T // 2, 1) + 1):
            qa = QuorumAssignment.from_read_quorum(T, q_r)
            assert qa.read_quorum + qa.write_quorum > T
            assert 2 * qa.write_quorum > T

    @given(st.integers(1, 300))
    def test_named_instances_valid(self, T):
        QuorumAssignment.majority(T)
        QuorumAssignment.read_one_write_all(T)

    @given(st.integers(2, 200), st.data())
    def test_read_write_quorums_intersect_in_votes(self, T, data):
        """Any two vote sets meeting q_r and q_w respectively must share
        votes: votes(A) + votes(B) - T > 0."""
        q_r = data.draw(st.integers(1, T // 2))
        qa = QuorumAssignment.from_read_quorum(T, q_r)
        assert qa.read_quorum + qa.write_quorum - T >= 1
        assert 2 * qa.write_quorum - T >= 1


# ----------------------------------------------------------------------
# Availability function invariants
# ----------------------------------------------------------------------

class TestAvailabilityProperties:
    @given(models(), st.floats(0.0, 1.0))
    @settings(max_examples=60)
    def test_curve_within_unit_interval(self, model, alpha):
        curve = model.curve(alpha)
        assert ((0.0 - 1e-12 <= curve) & (curve <= 1.0 + 1e-12)).all()

    @given(models())
    @settings(max_examples=60)
    def test_read_curve_monotone_nonincreasing(self, model):
        quorums = model.feasible_read_quorums()
        reads = np.asarray(model.read_availability(quorums))
        assert (np.diff(reads) <= 1e-12).all()

    @given(models())
    @settings(max_examples=60)
    def test_write_curve_monotone_nondecreasing(self, model):
        quorums = model.feasible_read_quorums()
        writes = np.asarray(model.write_availability_at(quorums))
        assert (np.diff(writes) >= -1e-12).all()

    @given(models(), st.floats(0.0, 1.0))
    @settings(max_examples=60)
    def test_availability_is_convex_combination(self, model, alpha):
        """A(alpha, q) must lie between the pure-read and pure-write curves."""
        curve = model.curve(alpha)
        reads = model.curve(1.0)
        writes = model.curve(0.0)
        lo = np.minimum(reads, writes) - 1e-12
        hi = np.maximum(reads, writes) + 1e-12
        assert ((lo <= curve) & (curve <= hi)).all()

    @given(models())
    @settings(max_examples=40)
    def test_alpha_monotone_when_reads_beat_writes_everywhere(self, model):
        """If R(q) >= W(T-q+1) for every q, increasing alpha can only help."""
        reads = model.curve(1.0)
        writes = model.curve(0.0)
        if (reads >= writes).all():
            a_lo = model.curve(0.3)
            a_hi = model.curve(0.7)
            assert (a_hi >= a_lo - 1e-12).all()


# ----------------------------------------------------------------------
# Optimizer invariants
# ----------------------------------------------------------------------

class TestOptimizerProperties:
    @given(models(), st.floats(0.0, 1.0))
    @settings(max_examples=60)
    def test_exhaustive_attains_true_maximum(self, model, alpha):
        res = optimal_read_quorum(model, alpha)
        curve = model.curve(alpha)
        assert res.availability >= curve.max() - 1e-12
        assert res.availability == float(curve[res.read_quorum - 1])

    @given(models(), st.floats(0.0, 1.0))
    @settings(max_examples=60)
    def test_golden_and_brent_never_beat_exhaustive(self, model, alpha):
        """No method may report availability above the true maximum, and
        every reported value must be attained at its reported quorum."""
        reference = optimal_read_quorum(model, alpha).availability
        for method in ("endpoints", "golden", "brent"):
            res = optimal_read_quorum(model, alpha, method=method)
            assert res.availability <= reference + 1e-12
            curve_value = float(model.availability(alpha, res.read_quorum))
            assert abs(res.availability - curve_value) < 1e-12

    @given(models(), st.floats(0.0, 1.0), st.floats(0.0, 1.0))
    @settings(max_examples=60)
    def test_write_floor_feasibility_and_optimality(self, model, alpha, floor):
        feasible = feasible_read_quorums(model, floor)
        if feasible.size == 0:
            try:
                optimize_with_write_floor(model, alpha, floor)
                assert False, "expected OptimizationError"
            except OptimizationError:
                return
        res = optimize_with_write_floor(model, alpha, floor)
        assert res.read_quorum in feasible.tolist()
        write = float(np.asarray(model.write_availability_at(res.read_quorum)))
        assert write >= floor - 1e-12
        values = np.asarray(model.availability(alpha, feasible))
        assert res.availability >= float(values.max()) - 1e-12


# ----------------------------------------------------------------------
# Coterie invariants
# ----------------------------------------------------------------------

class TestCoterieProperties:
    @given(vote_vectors, st.data())
    @settings(max_examples=60)
    def test_any_majority_vote_coterie_is_valid(self, votes, data):
        va = VoteAssignment(votes)
        q_w = data.draw(st.integers(va.total // 2 + 1, va.total))
        coterie = coterie_from_votes(va, q_w)  # constructor validates laws
        # Every group must actually carry q_w votes.
        for group in coterie:
            assert va.votes_of(group) >= q_w
