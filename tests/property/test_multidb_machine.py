"""Hypothesis stateful machine for the multi-item database.

Invariants driven under arbitrary failures, repairs, and transactions:

- atomicity: a denied transaction changes nothing; a committed one
  applies every write;
- per-item one-copy serializability: a committed read returns the last
  committed write of that item (tracked shadow state);
- isolation of items: writing one item never moves another item's
  timestamps.
"""

import numpy as np
from hypothesis import settings
from hypothesis.stateful import RuleBasedStateMachine, initialize, invariant, rule
from hypothesis import strategies as st

from repro.protocols.quorum_consensus import QuorumConsensusProtocol
from repro.quorum.assignment import QuorumAssignment
from repro.replication.item import ReplicatedItem
from repro.replication.multidb import ItemBinding, MultiItemDatabase
from repro.topology.generators import ring_with_chords

N_SITES = 5
TOPOLOGY = ring_with_chords(N_SITES, 1)
N_LINKS = TOPOLOGY.n_links
ITEMS = ("alpha", "beta")

sites = st.integers(0, N_SITES - 1)
links = st.integers(0, N_LINKS - 1)
item_ids = st.sampled_from(ITEMS)


def qc(T, q_r):
    return QuorumConsensusProtocol(QuorumAssignment.from_read_quorum(T, q_r))


class MultiDbMachine(RuleBasedStateMachine):
    @initialize(qa=st.integers(1, N_SITES // 2), qb=st.integers(1, N_SITES // 2))
    def setup(self, qa, qb):
        self.db = MultiItemDatabase(
            TOPOLOGY,
            [
                ItemBinding(ReplicatedItem.fully_replicated("alpha", TOPOLOGY),
                            qc(N_SITES, qa), 0),
                ItemBinding(ReplicatedItem.fully_replicated("beta", TOPOLOGY),
                            qc(N_SITES, qb), 0),
            ],
        )
        self.committed = {"alpha": 0, "beta": 0}
        self.commit_count = {"alpha": 0, "beta": 0}
        self.next_value = 1

    # ------------------------------------------------------------------
    @rule(site=sites)
    def flip_site(self, site):
        if self.db.state.site_up[site]:
            self.db.fail_site(site)
        else:
            self.db.repair_site(site)

    @rule(link=links)
    def flip_link(self, link):
        pair = TOPOLOGY.links[link].endpoints()
        if self.db.state.link_up[link]:
            self.db.fail_link(*pair)
        else:
            self.db.repair_link(*pair)

    @rule(item=item_ids, site=sites)
    def single_read(self, item, site):
        result = self.db.read(item, site)
        if result.granted:
            assert result.value == self.committed[item]

    @rule(item=item_ids, site=sites)
    def single_write(self, item, site):
        value = self.next_value
        self.next_value += 1
        result = self.db.write(item, site, value)
        if result.granted:
            self.committed[item] = value
            self.commit_count[item] += 1

    @rule(site=sites, read_item=item_ids, write_item=item_ids)
    def multi_transaction(self, site, read_item, write_item):
        if read_item == write_item:
            return
        value = self.next_value
        self.next_value += 1
        result = self.db.transaction(
            site, reads=[read_item], writes={write_item: value}
        )
        if result.committed:
            assert result.reads[read_item].value == self.committed[read_item]
            self.committed[write_item] = value
            self.commit_count[write_item] += 1
        # On denial nothing changed; the invariants below verify that.

    # ------------------------------------------------------------------
    @invariant()
    def newest_copy_matches_shadow(self):
        """The max-timestamp copy of each item holds the last committed
        value, and its timestamp equals the number of commits."""
        for item in ITEMS:
            newest = max(
                (self.db.copy_at(item, s) for s in range(N_SITES)),
                key=lambda c: c.timestamp,
            )
            assert newest.timestamp == self.commit_count[item]
            assert newest.value == self.committed[item] or self.commit_count[item] == 0

    @invariant()
    def copies_never_exceed_commit_count(self):
        for item in ITEMS:
            for s in range(N_SITES):
                assert self.db.copy_at(item, s).timestamp <= self.commit_count[item]


TestMultiDbMachine = MultiDbMachine.TestCase
TestMultiDbMachine.settings = settings(
    max_examples=25, stateful_step_count=30, deadline=None
)
