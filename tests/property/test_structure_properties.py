"""Property-based tests for topology, connectivity, and densities."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analytic.density import density_matrix_mean, normalize_density
from repro.analytic.enumeration import enumerate_density_matrix
from repro.analytic.ring import ring_density
from repro.connectivity.components import (
    component_labels,
    component_vote_totals,
    components_unionfind,
)
from repro.protocols.estimator import OnlineDensityEstimator
from repro.topology.chords import chord_endpoints, max_chords
from repro.topology.generators import ring_with_chords


@st.composite
def random_networks(draw):
    """A chorded ring with random up/down masks."""
    n = draw(st.integers(3, 12))
    chords = draw(st.integers(0, min(6, max_chords(n))))
    topo = ring_with_chords(n, chords)
    site_up = np.asarray(
        draw(st.lists(st.booleans(), min_size=n, max_size=n)), dtype=bool
    )
    m = topo.n_links
    link_up = np.asarray(
        draw(st.lists(st.booleans(), min_size=m, max_size=m)), dtype=bool
    )
    return topo, site_up, link_up


class TestConnectivityProperties:
    @given(random_networks())
    @settings(max_examples=80)
    def test_backends_agree(self, net):
        topo, site_up, link_up = net
        a = component_labels(topo, site_up, link_up)
        b = components_unionfind(topo, site_up, link_up)
        assert ((a < 0) == (b < 0)).all()
        n = topo.n_sites
        same_a = a[:, None] == a[None, :]
        same_b = b[:, None] == b[None, :]
        up = a >= 0
        mask = up[:, None] & up[None, :]
        assert (same_a[mask] == same_b[mask]).all()

    @given(random_networks())
    @settings(max_examples=80)
    def test_vote_totals_partition_total(self, net):
        """Summing each component's votes once recovers the votes of all
        up sites; down sites carry zero."""
        topo, site_up, link_up = net
        labels = component_labels(topo, site_up, link_up)
        totals = component_vote_totals(labels, topo.votes)
        assert (totals[~site_up] == 0).all()
        # Per component, every member must report the same total, equal to
        # the sum of member votes.
        for label in set(labels[labels >= 0].tolist()):
            members = np.nonzero(labels == label)[0]
            expected = int(topo.votes[members].sum())
            assert (totals[members] == expected).all()

    @given(random_networks())
    @settings(max_examples=80)
    def test_links_never_bridge_components(self, net):
        topo, site_up, link_up = net
        labels = component_labels(topo, site_up, link_up)
        for link_id, link in enumerate(topo.links):
            if link_up[link_id] and site_up[link.a] and site_up[link.b]:
                assert labels[link.a] == labels[link.b]


class TestChordProperties:
    @given(st.integers(5, 60), st.data())
    @settings(max_examples=60)
    def test_chords_unique_valid_and_prefix_stable(self, n, data):
        k = data.draw(st.integers(0, min(40, max_chords(n))))
        chords = chord_endpoints(n, k)
        assert len(chords) == k
        assert len(set(chords)) == k
        for a, b in chords:
            assert 0 <= a < b < n
            dist = min((b - a) % n, (a - b) % n)
            assert dist >= 2
        if k > 1:
            assert chord_endpoints(n, k - 1) == chords[:-1]


class TestDensityProperties:
    @given(st.integers(3, 30), st.floats(0.01, 0.99), st.floats(0.01, 0.99))
    @settings(max_examples=60)
    def test_ring_density_is_distribution(self, n, p, r):
        f = ring_density(n, p, r)
        assert f.shape == (n + 1,)
        assert (f >= -1e-15).all()
        assert abs(f.sum() - 1.0) < 1e-9
        assert f[0] == np.float64(1.0) - p

    @given(
        st.integers(3, 6),
        st.floats(0.1, 0.9),
        st.floats(0.1, 0.9),
    )
    @settings(max_examples=20, deadline=None)
    def test_enumeration_rows_are_distributions(self, n, p, r):
        matrix = enumerate_density_matrix(ring_with_chords(n, 0), p, r)
        np.testing.assert_allclose(matrix.sum(axis=1), 1.0, atol=1e-12)
        assert (matrix >= 0).all()

    @given(st.lists(st.floats(0.0, 10.0), min_size=2, max_size=20).filter(
        lambda v: sum(v) > 0))
    def test_normalize_idempotent(self, raw):
        f = normalize_density(np.asarray(raw))
        again = normalize_density(f)
        np.testing.assert_allclose(f, again, atol=1e-12)

    @given(st.integers(1, 6), st.integers(1, 10), st.data())
    @settings(max_examples=40)
    def test_mixture_preserves_mass(self, n_sites, T, data):
        rows = []
        for _ in range(n_sites):
            raw = np.asarray(
                data.draw(st.lists(st.floats(0.0, 1.0), min_size=T + 1, max_size=T + 1))
            ) + 1e-9
            rows.append(raw / raw.sum())
        matrix = np.stack(rows)
        mixed = density_matrix_mean(matrix)
        assert abs(mixed.sum() - 1.0) < 1e-9


class TestEstimatorProperties:
    @given(st.integers(1, 5), st.integers(1, 8), st.data())
    @settings(max_examples=50)
    def test_estimator_density_matches_empirical_frequencies(self, n_sites, T, data):
        est = OnlineDensityEstimator(n_sites, T)
        n_obs = data.draw(st.integers(1, 30))
        seen = np.zeros((n_sites, T + 1))
        for _ in range(n_obs):
            totals = np.asarray(
                data.draw(
                    st.lists(st.integers(0, T), min_size=n_sites, max_size=n_sites)
                )
            )
            est.observe_all(totals)
            seen[np.arange(n_sites), totals] += 1
        matrix = est.density_matrix()
        np.testing.assert_allclose(matrix, seen / n_obs, atol=1e-12)

    @given(st.integers(1, 4), st.integers(1, 6), st.data())
    @settings(max_examples=50)
    def test_merge_equals_combined_stream(self, n_sites, T, data):
        a = OnlineDensityEstimator(n_sites, T)
        b = OnlineDensityEstimator(n_sites, T)
        combined = OnlineDensityEstimator(n_sites, T)
        for target in (a, b):
            for _ in range(data.draw(st.integers(1, 10))):
                totals = np.asarray(
                    data.draw(
                        st.lists(st.integers(0, T), min_size=n_sites, max_size=n_sites)
                    )
                )
                target.observe_all(totals)
                combined.observe_all(totals)
        a.merge(b)
        np.testing.assert_allclose(a.density_matrix(), combined.density_matrix())
