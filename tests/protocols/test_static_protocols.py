"""Unit tests for the static replica-control protocols."""

import numpy as np
import pytest

from repro.connectivity.dynamic import ComponentTracker, NetworkState
from repro.errors import ProtocolError
from repro.protocols.majority import MajorityConsensusProtocol
from repro.protocols.primary_copy import PrimaryCopyProtocol
from repro.protocols.quorum_consensus import QuorumConsensusProtocol
from repro.protocols.read_one_write_all import ReadOneWriteAllProtocol
from repro.quorum.assignment import QuorumAssignment
from repro.topology.generators import ring
from repro.topology.model import Topology


@pytest.fixture
def ring6():
    topo = ring(6)
    state = NetworkState(topo)
    return topo, state, ComponentTracker(state)


class TestQuorumConsensus:
    def test_all_up_grants_everything(self, ring6):
        topo, state, tracker = ring6
        proto = QuorumConsensusProtocol(QuorumAssignment(6, 3, 4))
        read_mask, write_mask = proto.grant_masks(tracker)
        assert read_mask.all() and write_mask.all()

    def test_partition_respects_quorums(self, ring6):
        topo, state, tracker = ring6
        proto = QuorumConsensusProtocol(QuorumAssignment(6, 2, 5))
        # Split into {1,2} and {3,4,5,0} by killing two links.
        state.fail_link(topo.link_id(0, 1))
        state.fail_link(topo.link_id(2, 3))
        read_mask, write_mask = proto.grant_masks(tracker)
        assert read_mask[1] and read_mask[2]       # 2 votes >= q_r
        assert not write_mask[1]                   # 2 < q_w = 5
        assert read_mask[3] and not write_mask[3]  # 4 votes < 5

    def test_down_site_denied_both(self, ring6):
        topo, state, tracker = ring6
        proto = QuorumConsensusProtocol(QuorumAssignment.read_one_write_all(6))
        state.fail_site(2)
        read_mask, write_mask = proto.grant_masks(tracker)
        assert not read_mask[2] and not write_mask[2]
        assert read_mask[0]

    def test_decide_scalar_matches_masks(self, ring6):
        topo, state, tracker = ring6
        proto = QuorumConsensusProtocol(QuorumAssignment(6, 3, 4))
        state.fail_site(0)
        read_mask, write_mask = proto.grant_masks(tracker)
        for s in range(6):
            assert proto.decide(s, True, tracker) == bool(read_mask[s])
            assert proto.decide(s, False, tracker) == bool(write_mask[s])

    def test_vote_total_mismatch_detected(self):
        topo = ring(5)
        tracker = ComponentTracker(NetworkState(topo))
        proto = QuorumConsensusProtocol(QuorumAssignment(6, 3, 4))
        with pytest.raises(ProtocolError):
            proto.grant_masks(tracker)

    def test_requires_assignment_object(self):
        with pytest.raises(ProtocolError):
            QuorumConsensusProtocol((3, 4))  # type: ignore[arg-type]

    def test_weighted_votes(self):
        topo = Topology(4, [(0, 1), (1, 2), (2, 3)], votes=[3, 1, 1, 1])
        state = NetworkState(topo)
        tracker = ComponentTracker(state)
        proto = QuorumConsensusProtocol(QuorumAssignment(6, 3, 4))
        state.fail_link(topo.link_id(1, 2))
        read_mask, write_mask = proto.grant_masks(tracker)
        assert read_mask[0] and write_mask[0]          # {0,1}: 4 votes
        assert not read_mask[2] and not write_mask[2]  # {2,3}: 2 votes


class TestNamedInstances:
    def test_majority_is_quorum_consensus_instance(self, ring6):
        topo, state, tracker = ring6
        named = MajorityConsensusProtocol(6)
        explicit = QuorumConsensusProtocol(QuorumAssignment.majority(6))
        state.fail_site(0)
        for a, b in zip(named.grant_masks(tracker), explicit.grant_masks(tracker)):
            np.testing.assert_array_equal(a, b)

    def test_rowa_read_everywhere_write_nowhere_on_partition(self, ring6):
        topo, state, tracker = ring6
        proto = ReadOneWriteAllProtocol(6)
        state.fail_link(topo.link_id(0, 1))
        state.fail_link(topo.link_id(3, 4))
        read_mask, write_mask = proto.grant_masks(tracker)
        assert read_mask.all()          # every site is up
        assert not write_mask.any()     # no component holds all 6 votes

    def test_survivability(self, ring6):
        topo, state, tracker = ring6
        proto = MajorityConsensusProtocol(6)
        assert proto.survivability(tracker) == (True, True)
        for s in range(6):
            state.fail_site(s)
        assert proto.survivability(tracker) == (False, False)


class TestPrimaryCopy:
    def test_only_primary_component_may_access(self, ring6):
        topo, state, tracker = ring6
        proto = PrimaryCopyProtocol(primary_site=0)
        state.fail_link(topo.link_id(1, 2))
        state.fail_link(topo.link_id(4, 5))
        read_mask, write_mask = proto.grant_masks(tracker)
        # Primary component is {5, 0, 1}.
        assert read_mask[5] and read_mask[0] and read_mask[1]
        assert not read_mask[2] and not read_mask[3]
        np.testing.assert_array_equal(read_mask, write_mask)

    def test_primary_down_blocks_everyone(self, ring6):
        topo, state, tracker = ring6
        proto = PrimaryCopyProtocol(primary_site=2)
        state.fail_site(2)
        read_mask, write_mask = proto.grant_masks(tracker)
        assert not read_mask.any() and not write_mask.any()

    def test_masks_are_independent_copies(self, ring6):
        topo, state, tracker = ring6
        proto = PrimaryCopyProtocol(0)
        read_mask, write_mask = proto.grant_masks(tracker)
        read_mask[0] = False
        assert write_mask[0]

    def test_bad_primary(self, ring6):
        topo, state, tracker = ring6
        with pytest.raises(ProtocolError):
            PrimaryCopyProtocol(-1)
        with pytest.raises(ProtocolError):
            PrimaryCopyProtocol(10).grant_masks(tracker)
