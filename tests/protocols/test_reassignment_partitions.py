"""Regression suite: the paper's section-2.2 merge/split scenarios.

Each test scripts a partition history from the QR correctness argument
and asserts — via the chaos :class:`InvariantMonitor`, the same checker
the fault-injection campaigns use — that no component is ever granted an
access while holding a stale (non-newest) assignment, and that versions
never regress. These are the scenarios the installation and propagation
rules exist to survive.
"""

import numpy as np
import pytest

from repro.connectivity.dynamic import ComponentTracker, NetworkState
from repro.faults.monitor import InvariantMonitor
from repro.protocols.reassignment import QuorumReassignmentProtocol
from repro.quorum.assignment import QuorumAssignment
from repro.topology.generators import ring


@pytest.fixture
def system():
    """A 6-ring under QR with the majority assignment (q_r=3, q_w=4)."""
    topo = ring(6)
    state = NetworkState(topo)
    tracker = ComponentTracker(state)
    protocol = QuorumReassignmentProtocol(6, QuorumAssignment.majority(6))
    protocol.on_network_change(tracker)
    monitor = InvariantMonitor(raise_on_violation=True)
    return topo, state, tracker, protocol, monitor


class TestMergeSplitScenarios:
    def observe(self, tracker, protocol, monitor, t=0.0):
        monitor.observe(t, tracker, protocol)

    def test_install_then_split_lets_singleton_read(self, system):
        """Paper section 2.2's motivating story: reassign toward ROWA so a
        lone site keeps serving reads after a partition — legally, because
        the new assignment propagated *before* the split."""
        topo, state, tracker, protocol, monitor = system
        rowa = QuorumAssignment.read_one_write_all(6)
        assert protocol.try_reassign(tracker, 0, rowa)  # full network: allowed
        assert protocol.max_version() == 2

        # Now isolate site 5 (cut links (4,5) and (5,0)).
        state.fail_link(topo.link_id(4, 5))
        state.fail_link(topo.link_id(5, 0))
        protocol.on_network_change(tracker)
        self.observe(tracker, protocol, monitor, t=1.0)  # raises on violation

        read_mask, write_mask = protocol.grant_masks(tracker)
        assert read_mask[5], "singleton knows q_r=1 and may read"
        assert not write_mask[5], "writes still need all six votes"
        assert protocol.effective_assignment(tracker, 5) == rowa

    def test_split_then_install_starves_the_minority(self, system):
        """Install after the split: the minority never hears about the new
        assignment — and the propagation rule keeps it locked out rather
        than letting it serve stale reads."""
        topo, state, tracker, protocol, monitor = system
        # Split 4/2: majority {0,1,2,3}, minority {4,5}.
        state.fail_link(topo.link_id(3, 4))
        state.fail_link(topo.link_id(5, 0))
        protocol.on_network_change(tracker)

        rowa = QuorumAssignment.read_one_write_all(6)
        assert not protocol.try_reassign(tracker, 4, rowa)  # minority: refused
        assert protocol.try_reassign(tracker, 0, rowa)      # majority: 4 >= q_w
        self.observe(tracker, protocol, monitor, t=1.0)

        read_mask, _ = protocol.grant_masks(tracker)
        # Minority still holds version 1 (q_r=3 > its 2 votes): no access.
        # Were it consulted under the NEW q_r=1, this mask would be True —
        # exactly the stale-assignment grant the monitor hunts.
        assert not read_mask[4] and not read_mask[5]
        assert protocol.site_version[4] == 1
        assert protocol.site_version[0] == 2

    def test_merge_propagates_newest_version(self, system):
        """Healing the partition must teach the stale side the newest
        assignment before it regains any access (propagation rule)."""
        topo, state, tracker, protocol, monitor = system
        state.fail_link(topo.link_id(3, 4))
        state.fail_link(topo.link_id(5, 0))
        protocol.on_network_change(tracker)
        rowa = QuorumAssignment.read_one_write_all(6)
        assert protocol.try_reassign(tracker, 0, rowa)

        # Merge back.
        state.repair_link(topo.link_id(3, 4))
        state.repair_link(topo.link_id(5, 0))
        protocol.on_network_change(tracker)
        self.observe(tracker, protocol, monitor, t=2.0)

        np.testing.assert_array_equal(protocol.site_version, [2] * 6)
        assert all(
            protocol.site_assignment[s] == rowa for s in range(6)
        )
        # And now a fresh split: the previously-stale side reads alone.
        state.fail_link(topo.link_id(3, 4))
        state.fail_link(topo.link_id(5, 0))
        protocol.on_network_change(tracker)
        self.observe(tracker, protocol, monitor, t=3.0)
        read_mask, _ = protocol.grant_masks(tracker)
        assert read_mask[4] and read_mask[5]

    def test_repeated_split_merge_cycles_never_regress(self, system):
        """Versions are monotone across split/merge churn, with each
        installation made from a component holding a write quorum *under
        the assignment it replaces* (the installation rule's precondition).
        """
        topo, state, tracker, protocol, monitor = system

        def churn(t, break_network, heal_network, assignment):
            break_network()
            protocol.on_network_change(tracker)
            monitor.observe(t, tracker, protocol)
            installed = any(
                protocol.try_reassign(tracker, site, assignment)
                for site in range(6)
            )
            assert installed
            monitor.observe(t + 0.5, tracker, protocol)
            heal_network()
            protocol.on_network_change(tracker)
            monitor.observe(t + 1.0, tracker, protocol)

        # Round 1: old q_w=4 — a 4-site component installs (q_r=2, q_w=5).
        cut = [topo.link_id(3, 4), topo.link_id(5, 0)]
        churn(
            0.0,
            lambda: [state.fail_link(l) for l in cut],
            lambda: [state.repair_link(l) for l in cut],
            QuorumAssignment(6, 2, 5),
        )
        # Round 2: old q_w=5 — a 5-site component (one site down) installs
        # the majority assignment back.
        churn(
            2.0,
            lambda: state.fail_site(5),
            lambda: state.repair_site(5),
            QuorumAssignment.majority(6),
        )
        # Round 3: old q_w=4 again — a different 4-site split installs
        # (q_r=3, q_w=4).
        cut2 = [topo.link_id(1, 2), topo.link_id(5, 0)]
        churn(
            4.0,
            lambda: [state.fail_link(l) for l in cut2],
            lambda: [state.repair_link(l) for l in cut2],
            QuorumAssignment(6, 3, 4),
        )
        assert protocol.max_version() == 4
        assert protocol.installs == 3
        np.testing.assert_array_equal(protocol.site_version, [4] * 6)

    def test_site_crash_during_partition_keeps_invariants(self, system):
        """Sites failing inside an already-partitioned network must not
        open a stale-read window when they rejoin."""
        topo, state, tracker, protocol, monitor = system
        state.fail_link(topo.link_id(2, 3))
        state.fail_link(topo.link_id(5, 0))  # {0,1,2} vs {3,4,5}
        protocol.on_network_change(tracker)
        monitor.observe(0.0, tracker, protocol)

        state.fail_site(4)
        protocol.on_network_change(tracker)
        monitor.observe(1.0, tracker, protocol)

        # Neither 3-vote side reaches q_w=4: no installation anywhere.
        rowa = QuorumAssignment.read_one_write_all(6)
        for site in (0, 3):
            assert not protocol.try_reassign(tracker, site, rowa)

        state.repair_site(4)
        state.repair_link(topo.link_id(2, 3))
        state.repair_link(topo.link_id(5, 0))
        protocol.on_network_change(tracker)
        monitor.observe(2.0, tracker, protocol)
        assert protocol.max_version() == 1  # nothing installed, nothing lost
        read_mask, write_mask = protocol.grant_masks(tracker)
        assert read_mask.all() and write_mask.all()

    def test_stale_grant_would_be_caught(self, system):
        """Sanity for the suite itself: if the propagation rule were broken
        (simulated by force-feeding a minority component a permissive
        assignment at version 1), the monitor DOES flag it."""
        topo, state, tracker, protocol, monitor = system
        state.fail_link(topo.link_id(3, 4))
        state.fail_link(topo.link_id(5, 0))
        protocol.on_network_change(tracker)
        rowa = QuorumAssignment.read_one_write_all(6)
        assert protocol.try_reassign(tracker, 0, rowa)  # majority at version 2

        # Break the protocol by hand: the minority adopts q_r=1 WITHOUT
        # learning version 2 — the exact bug the rules prevent.
        protocol.site_assignment[4] = rowa
        protocol.site_assignment[5] = rowa

        from repro.errors import InvariantViolation

        with pytest.raises(InvariantViolation) as excinfo:
            monitor.observe(5.0, tracker, protocol)
        assert excinfo.value.rule == "stale-assignment-grant"
