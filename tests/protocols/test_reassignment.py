"""Unit and model tests for the QR dynamic quorum reassignment protocol.

The model test at the bottom is the executable version of the section 2.2
safety argument: drive random partitions, merges, and reassignment
attempts, and assert that no component ever grants an access without
holding the newest installed assignment.
"""

import numpy as np
import pytest

from repro.connectivity.dynamic import ComponentTracker, NetworkState
from repro.errors import ProtocolError
from repro.protocols.reassignment import QuorumReassignmentProtocol
from repro.quorum.assignment import QuorumAssignment
from repro.topology.generators import ring, ring_with_chords


@pytest.fixture
def setup():
    topo = ring(6)
    state = NetworkState(topo)
    tracker = ComponentTracker(state)
    proto = QuorumReassignmentProtocol(6, QuorumAssignment.majority(6))
    proto.on_network_change(tracker)
    return topo, state, tracker, proto


class TestBasics:
    def test_initial_state(self, setup):
        topo, state, tracker, proto = setup
        assert proto.max_version() == 1
        assert proto.effective_assignment(tracker, 0) == QuorumAssignment.majority(6)

    def test_initially_behaves_like_static(self, setup):
        topo, state, tracker, proto = setup
        from repro.protocols.quorum_consensus import QuorumConsensusProtocol

        static = QuorumConsensusProtocol(QuorumAssignment.majority(6))
        state.fail_site(0)
        proto.on_network_change(tracker)
        for a, b in zip(proto.grant_masks(tracker), static.grant_masks(tracker)):
            np.testing.assert_array_equal(a, b)

    def test_effective_assignment_none_when_down(self, setup):
        topo, state, tracker, proto = setup
        state.fail_site(3)
        proto.on_network_change(tracker)
        assert proto.effective_assignment(tracker, 3) is None

    def test_reset_restores_initial(self, setup):
        topo, state, tracker, proto = setup
        assert proto.try_reassign(tracker, 0, QuorumAssignment(6, 1, 6))
        proto.reset()
        assert proto.max_version() == 1
        assert proto.installs == 0


class TestReassignmentRules:
    def test_reassign_in_full_network(self, setup):
        topo, state, tracker, proto = setup
        new = QuorumAssignment.read_one_write_all(6)
        assert proto.try_reassign(tracker, 0, new)
        assert proto.max_version() == 2
        assert proto.effective_assignment(tracker, 5) == new
        assert proto.installs == 1

    def test_reassign_requires_write_quorum_under_old(self, setup):
        topo, state, tracker, proto = setup
        # Partition ring into 3+3; majority q_w = 4 > 3: neither side may change.
        state.fail_link(topo.link_id(0, 1))
        state.fail_link(topo.link_id(3, 4))
        proto.on_network_change(tracker)
        new = QuorumAssignment.read_one_write_all(6)
        assert not proto.try_reassign(tracker, 1, new)
        assert not proto.try_reassign(tracker, 4, new)
        assert proto.max_version() == 1

    def test_old_assignment_governs_the_change(self, setup):
        topo, state, tracker, proto = setup
        # Install ROWA (q_w = 6) while whole; then a 5-site component that
        # could change under majority must NOT be able to change under ROWA.
        assert proto.try_reassign(tracker, 0, QuorumAssignment.read_one_write_all(6))
        state.fail_site(0)
        proto.on_network_change(tracker)
        assert not proto.try_reassign(tracker, 2, QuorumAssignment.majority(6))

    def test_down_site_cannot_reassign(self, setup):
        topo, state, tracker, proto = setup
        state.fail_site(2)
        proto.on_network_change(tracker)
        assert not proto.try_reassign(tracker, 2, QuorumAssignment.read_one_write_all(6))

    def test_wrong_total_votes_rejected(self, setup):
        topo, state, tracker, proto = setup
        with pytest.raises(ProtocolError):
            proto.try_reassign(tracker, 0, QuorumAssignment.majority(8))

    def test_version_propagates_on_merge(self, setup):
        topo, state, tracker, proto = setup
        # Isolate site 3 (it misses the reassignment).
        state.fail_site(3)
        proto.on_network_change(tracker)
        new = QuorumAssignment(6, 2, 5)
        assert proto.try_reassign(tracker, 0, new)
        assert proto.site_version[3] == 1
        # Site 3 comes back; on the merge it must learn version 2.
        state.repair_site(3)
        proto.on_network_change(tracker)
        assert proto.site_version[3] == 2
        assert proto.site_assignment[3] == new


class TestSafetyModel:
    """Randomized executable proof of the QR safety property."""

    @pytest.mark.parametrize("seed", range(6))
    def test_no_access_granted_under_stale_assignment(self, seed):
        rng = np.random.default_rng(seed)
        topo = ring_with_chords(9, 2)
        state = NetworkState(topo)
        tracker = ComponentTracker(state)
        T = topo.total_votes
        proto = QuorumReassignmentProtocol(T, QuorumAssignment.majority(T))
        proto.on_network_change(tracker)

        assignments = [
            QuorumAssignment.majority(T),
            QuorumAssignment.read_one_write_all(T),
            QuorumAssignment(T, 2, T - 1),
            QuorumAssignment(T, 3, T - 2),
        ]

        for _ in range(400):
            move = rng.integers(0, 3)
            if move == 0:  # flip a site
                s = int(rng.integers(0, topo.n_sites))
                state.set_site(s, not state.site_up[s])
                proto.on_network_change(tracker)
            elif move == 1:  # flip a link
                l = int(rng.integers(0, topo.n_links))
                state.set_link(l, not state.link_up[l])
                proto.on_network_change(tracker)
            else:  # attempt a reassignment from a random site
                s = int(rng.integers(0, topo.n_sites))
                proto.try_reassign(
                    tracker, s, assignments[int(rng.integers(0, len(assignments)))]
                )

            # INVARIANT: any site currently granted any access sits in a
            # component that knows the globally newest assignment.
            read_mask, write_mask = proto.grant_masks(tracker)
            newest = proto.max_version()
            granted = np.nonzero(read_mask | write_mask)[0]
            for site in granted:
                members = tracker.component_of(int(site))
                assert int(proto.site_version[members].max()) == newest, (
                    f"site {site} granted access under version "
                    f"{proto.site_version[members].max()} < {newest}"
                )

    @pytest.mark.parametrize("seed", range(3))
    def test_at_most_one_component_can_write(self, seed):
        """q_w > T/2 under *any* installed assignment: writes never happen
        in two components at once."""
        rng = np.random.default_rng(100 + seed)
        topo = ring_with_chords(8, 1)
        state = NetworkState(topo)
        tracker = ComponentTracker(state)
        T = topo.total_votes
        proto = QuorumReassignmentProtocol(T, QuorumAssignment.majority(T))
        proto.on_network_change(tracker)

        for _ in range(300):
            s = int(rng.integers(0, topo.n_sites + topo.n_links))
            if s < topo.n_sites:
                state.set_site(s, not state.site_up[s])
            else:
                l = s - topo.n_sites
                state.set_link(l, not state.link_up[l])
            proto.on_network_change(tracker)
            if rng.random() < 0.3:
                q_r = int(rng.integers(1, T // 2 + 1))
                proto.try_reassign(
                    tracker,
                    int(rng.integers(0, topo.n_sites)),
                    QuorumAssignment.from_read_quorum(T, q_r),
                )
            _, write_mask = proto.grant_masks(tracker)
            writers = np.nonzero(write_mask)[0]
            labels = {int(tracker.labels[w]) for w in writers}
            assert len(labels) <= 1
