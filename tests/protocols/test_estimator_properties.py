"""Property tests for the online density estimator (Hypothesis).

The serving layer trusts three algebraic facts about
:class:`OnlineDensityEstimator`: distributed summaries can be merged in
any order (the section 4.2 exchange protocol), merging local estimators
is exactly equivalent to one estimator seeing the interleaved stream
(at forgetting factor 1 — discounting is order-sensitive by design), and
the read-out is always a proper density (non-negative weights, rows
normalized). These pin all three over generated observation streams.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.protocols.estimator import OnlineDensityEstimator

N_SITES = 4
TOTAL_VOTES = 6

observations = st.lists(
    st.tuples(
        st.integers(0, N_SITES - 1),
        st.integers(0, TOTAL_VOTES),
        st.floats(0.0, 100.0, allow_nan=False, allow_infinity=False),
    ),
    max_size=40,
)


def _estimator(factor: float = 1.0) -> OnlineDensityEstimator:
    return OnlineDensityEstimator(N_SITES, TOTAL_VOTES, forgetting_factor=factor)


def _fed(stream, factor: float = 1.0) -> OnlineDensityEstimator:
    est = _estimator(factor)
    for site, votes, weight in stream:
        est.observe(site, votes, weight)
    return est


class TestMergeAlgebra:
    @given(observations, observations)
    @settings(max_examples=60)
    def test_merge_is_order_insensitive(self, stream_a, stream_b):
        ab = _fed(stream_a)
        ab.merge(_fed(stream_b))
        ba = _fed(stream_b)
        ba.merge(_fed(stream_a))
        np.testing.assert_array_equal(ab._weights, ba._weights)

    @given(observations, observations, st.randoms(use_true_random=False))
    @settings(max_examples=60)
    def test_merge_equals_interleaved_stream(self, stream_a, stream_b, rng):
        """Two local estimators merged == one estimator fed any interleaving.

        Holds exactly (not approximately) at forgetting factor 1, where
        observation order cannot matter: accumulation is plain addition.
        """
        merged = _fed(stream_a)
        merged.merge(_fed(stream_b))

        interleaved = list(stream_a) + list(stream_b)
        rng.shuffle(interleaved)
        single = _fed(interleaved)

        np.testing.assert_allclose(
            merged._weights, single._weights, rtol=0, atol=1e-9
        )
        assert merged.total_weight == pytest.approx(
            single.total_weight, rel=1e-9, abs=1e-9
        )

    @given(observations)
    @settings(max_examples=60)
    def test_merge_identity(self, stream):
        """Merging an empty estimator changes nothing."""
        est = _fed(stream)
        before = est._weights.copy()
        est.merge(_estimator())
        np.testing.assert_array_equal(est._weights, before)


class TestDecayAndNormalization:
    @given(observations, st.floats(0.01, 1.0, allow_nan=False))
    @settings(max_examples=60)
    def test_decay_never_negative(self, stream, factor):
        est = _fed(stream, factor)
        assert (est._weights >= 0.0).all()
        assert est.total_weight >= 0.0
        for site in range(N_SITES):
            assert est.site_weight(site) >= 0.0

    @given(observations, st.floats(0.01, 1.0, allow_nan=False))
    @settings(max_examples=60)
    def test_decay_bounded_by_undiscounted_total(self, stream, factor):
        """Forgetting can only shrink mass relative to factor 1."""
        discounted = _fed(stream, factor)
        full = _fed(stream, 1.0)
        assert discounted.total_weight <= full.total_weight + 1e-9

    @given(observations, st.floats(0.05, 1.0, allow_nan=False))
    @settings(max_examples=60)
    def test_density_matrix_rows_normalized(self, stream, factor):
        # Guarantee every site at least one observation with positive
        # weight so the matrix is defined (the serving layer does the
        # same via snapshot-style observe_all calls).
        est = _fed(stream, factor)
        est.observe_all(np.full(N_SITES, TOTAL_VOTES), weight=1.0)
        matrix = est.density_matrix()
        assert matrix.shape == (N_SITES, TOTAL_VOTES + 1)
        assert (matrix >= 0.0).all()
        np.testing.assert_allclose(matrix.sum(axis=1), 1.0, atol=1e-12)

    @given(observations)
    @settings(max_examples=60)
    def test_reset_clears_everything(self, stream):
        est = _fed(stream)
        est.reset()
        assert est.total_weight == 0.0
