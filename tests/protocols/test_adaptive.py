"""Tests for the workload estimator and the adaptive quorum protocol."""

import numpy as np
import pytest

from repro.connectivity.dynamic import ComponentTracker, NetworkState
from repro.errors import ProtocolError, SimulationError
from repro.protocols.adaptive import AdaptiveQuorumProtocol
from repro.protocols.workload_estimator import WorkloadEstimator
from repro.quorum.assignment import QuorumAssignment
from repro.topology.generators import ring


class TestWorkloadEstimator:
    def test_alpha_estimation(self):
        est = WorkloadEstimator(3, pseudocount=0.01)
        for _ in range(30):
            est.observe(0, is_read=True)
        for _ in range(10):
            est.observe(1, is_read=False)
        assert est.alpha == pytest.approx(0.75, abs=0.01)

    def test_prior_centers_alpha(self):
        assert WorkloadEstimator(4).alpha == 0.5

    def test_site_weights(self):
        est = WorkloadEstimator(3, pseudocount=0.01)
        est.observe_counts(np.array([80.0, 20.0, 0.0]), np.array([0.0, 0.0, 50.0]))
        np.testing.assert_allclose(est.read_weights, [0.8, 0.2, 0.0], atol=0.01)
        np.testing.assert_allclose(est.write_weights, [0.0, 0.0, 1.0], atol=0.01)

    def test_weights_always_positive(self):
        est = WorkloadEstimator(3)
        est.observe(0, True)
        assert (est.read_weights > 0).all()
        assert (est.write_weights > 0).all()
        assert est.read_weights.sum() == pytest.approx(1.0)

    def test_forgetting_tracks_shift(self):
        est = WorkloadEstimator(2, forgetting_factor=0.9, pseudocount=0.01)
        for _ in range(100):
            est.observe(0, is_read=False)
        for _ in range(40):
            est.observe(0, is_read=True)
        assert est.alpha > 0.9

    def test_snapshot_shape(self):
        est = WorkloadEstimator(5)
        alpha, r_i, w_i = est.snapshot()
        assert 0 <= alpha <= 1
        assert r_i.shape == (5,) and w_i.shape == (5,)

    def test_validation(self):
        with pytest.raises(SimulationError):
            WorkloadEstimator(0)
        with pytest.raises(SimulationError):
            WorkloadEstimator(3, forgetting_factor=0.0)
        with pytest.raises(SimulationError):
            WorkloadEstimator(3, pseudocount=0.0)
        est = WorkloadEstimator(3)
        with pytest.raises(SimulationError):
            est.observe(5, True)
        with pytest.raises(SimulationError):
            est.observe_counts(np.array([1.0]), np.array([1.0, 1.0, 1.0]))

    def test_reset(self):
        est = WorkloadEstimator(2)
        est.observe(0, True)
        est.reset()
        assert est.total_observed == 0.0


class TestAdaptiveProtocol:
    def _setup(self, n=9, **kwargs):
        topo = ring(n)
        state = NetworkState(topo)
        tracker = ComponentTracker(state)
        proto = AdaptiveQuorumProtocol(n, n, **kwargs)
        proto.on_network_change(tracker)
        return topo, state, tracker, proto

    def test_starts_as_majority(self):
        topo, state, tracker, proto = self._setup()
        assert proto.current_assignment(tracker, 0) == QuorumAssignment.majority(9)

    def test_no_reassignment_without_evidence(self):
        topo, state, tracker, proto = self._setup(min_observation_weight=1e9)
        proto.record_epoch(tracker, 10.0,
                           reads=np.full(9, 5.0), writes=np.ones(9))
        assert not proto.maybe_reassign(tracker)
        assert proto.installs == 0

    def test_learns_read_heavy_and_moves_left(self):
        """Feed read-heavy epochs where the network is often fragmented;
        the protocol must install a small read quorum."""
        topo, state, tracker, proto = self._setup(
            min_observation_weight=50.0, improvement_threshold=0.0,
        )
        rng = np.random.default_rng(0)
        reads = np.full(9, 9.0)   # alpha ~ 0.9
        writes = np.full(9, 1.0)
        for step in range(60):
            # Random fragmentation: flip a couple of links.
            for _ in range(2):
                link = int(rng.integers(0, topo.n_links))
                state.set_link(link, not state.link_up[link])
            proto.record_epoch(tracker, duration=1.0, reads=reads, writes=writes)
            proto.on_network_change(tracker)
        assert proto.installs >= 1
        # Heal fully and read the effective assignment.
        for link in range(topo.n_links):
            state.set_link(link, True)
        proto.on_network_change(tracker)
        assignment = proto.current_assignment(tracker, 0)
        assert assignment.read_quorum < 4
        assert proto.effective_alpha() == pytest.approx(0.9, abs=0.02)

    def test_hysteresis_defers_marginal_changes(self):
        topo, state, tracker, proto = self._setup(
            min_observation_weight=10.0, improvement_threshold=1.0,  # impossible gain
        )
        reads = np.full(9, 9.0)
        writes = np.full(9, 1.0)
        for _ in range(30):
            proto.record_epoch(tracker, 1.0, reads=reads, writes=writes)
            proto.on_network_change(tracker)
        assert proto.installs == 0

    def test_alpha_hint_overrides_measurement(self):
        topo, state, tracker, proto = self._setup(alpha_hint=0.25)
        proto.workload.observe(0, is_read=True)
        assert proto.effective_alpha() == 0.25

    def test_write_floor_respected(self):
        topo, state, tracker, proto = self._setup(
            min_observation_weight=10.0, improvement_threshold=0.0,
            write_floor=0.3, alpha_hint=0.9,
        )
        for _ in range(30):
            proto.record_epoch(tracker, 1.0,
                               reads=np.full(9, 9.0), writes=np.ones(9))
            proto.on_network_change(tracker)
        model = proto.current_model()
        assignment = proto.current_assignment(tracker, 0)
        write_avail = float(np.asarray(
            model.write_availability_at(assignment.read_quorum)
        ))
        assert write_avail >= 0.3 - 1e-9

    def test_validation(self):
        with pytest.raises(ProtocolError):
            AdaptiveQuorumProtocol(5, 5, check_interval=0)
        with pytest.raises(ProtocolError):
            AdaptiveQuorumProtocol(5, 5, improvement_threshold=-1.0)
        with pytest.raises(ProtocolError):
            AdaptiveQuorumProtocol(5, 5, alpha_hint=2.0)

    def test_record_access_scheme(self):
        """The paper's literal per-access recording also feeds both
        estimators."""
        topo, state, tracker, proto = self._setup(min_observation_weight=5.0)
        for _ in range(20):
            proto.record_access(tracker, site=0, is_read=True)
            proto.record_access(tracker, site=1, is_read=False)
        assert proto.workload.alpha == pytest.approx(0.5, abs=0.05)
        assert proto.density.total_weight == pytest.approx(40.0)
        assert proto.density.density(0)[9] == pytest.approx(1.0)

    def test_record_epoch_validates_duration(self):
        topo, state, tracker, proto = self._setup()
        with pytest.raises(ProtocolError):
            proto.record_epoch(tracker, -1.0)

    def test_reset_clears_state(self):
        topo, state, tracker, proto = self._setup(min_observation_weight=1.0)
        proto.record_epoch(tracker, 5.0, reads=np.ones(9), writes=np.ones(9))
        proto.reset()
        assert proto.density.total_weight == 0.0
        assert proto.installs == 0


class TestAdaptiveInSimulator:
    def test_end_to_end_self_tuning(self):
        """Drop the adaptive protocol into the simulator unmodified: it
        must learn alpha from the sampled workload, install a better
        assignment, and beat static majority on measured ACC."""
        from repro.protocols.majority import MajorityConsensusProtocol
        from repro.simulation.config import SimulationConfig
        from repro.simulation.runner import run_simulation

        topo = ring(21)
        cfg = SimulationConfig.paper_like(
            topo, alpha=0.9,
            warmup_accesses=0.0,
            accesses_per_batch=20_000.0,
            n_batches=2,
            initial_state="stationary",
            seed=14,
        )
        adaptive = AdaptiveQuorumProtocol(
            21, 21, min_observation_weight=50.0, improvement_threshold=0.005,
        )
        dynamic = run_simulation(cfg, adaptive)
        static = run_simulation(cfg, MajorityConsensusProtocol(21))
        assert adaptive.installs >= 1
        # Measured alpha converged to the true 0.9.
        assert adaptive.effective_alpha() == pytest.approx(0.9, abs=0.03)
        assert dynamic.availability.mean > static.availability.mean + 0.03
