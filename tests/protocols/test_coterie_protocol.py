"""Tests for the coterie-based replica control protocol."""

import numpy as np
import pytest

from repro.connectivity.dynamic import ComponentTracker, NetworkState
from repro.errors import ProtocolError, QuorumConstraintError
from repro.protocols.coterie_protocol import CoterieProtocol
from repro.protocols.quorum_consensus import QuorumConsensusProtocol
from repro.quorum.assignment import QuorumAssignment
from repro.quorum.coterie import Coterie
from repro.quorum.votes import VoteAssignment
from repro.topology.generators import ring, ring_with_chords


class TestConstruction:
    def test_basic(self):
        # Singleton reads force write-all (the ROWA coterie).
        proto = CoterieProtocol(
            read_groups=[{0}, {1}, {2}],
            write_coterie=Coterie([{0, 1, 2}]),
        )
        assert proto.n_sites == 3

    def test_read_write_intersection_enforced(self):
        # Read group {0} misses write group {1, 2}: stale reads possible.
        with pytest.raises(QuorumConstraintError):
            CoterieProtocol(
                read_groups=[{0}],
                write_coterie=Coterie([{1, 2}]),
            )

    def test_empty_read_groups_rejected(self):
        with pytest.raises(QuorumConstraintError):
            CoterieProtocol(read_groups=[], write_coterie=Coterie([{0}]))
        with pytest.raises(QuorumConstraintError):
            CoterieProtocol(read_groups=[set()], write_coterie=Coterie([{0}]))

    def test_n_sites_bound(self):
        with pytest.raises(ProtocolError):
            CoterieProtocol(
                read_groups=[{5}],
                write_coterie=Coterie([{5}]),
                n_sites=3,
            )

    def test_from_votes_validates_condition_one(self):
        votes = VoteAssignment.uniform(5)
        with pytest.raises(QuorumConstraintError):
            CoterieProtocol.from_votes(votes, read_quorum=1, write_quorum=3)


class TestEquivalenceWithVoting:
    @pytest.mark.parametrize("q_r", [1, 2, 3])
    @pytest.mark.parametrize("seed", range(4))
    def test_matches_quorum_consensus_on_random_partitions(self, q_r, seed):
        """The coterie rendering of (q_r, q_w) must make exactly the same
        grant decisions as the vote-counting implementation."""
        n = 7
        topo = ring_with_chords(n, 1)
        votes = VoteAssignment.uniform(n)
        assignment = QuorumAssignment.from_read_quorum(n, q_r)
        vote_proto = QuorumConsensusProtocol(assignment)
        coterie_proto = CoterieProtocol.from_votes(
            votes, assignment.read_quorum, assignment.write_quorum
        )

        state = NetworkState(topo)
        tracker = ComponentTracker(state)
        rng = np.random.default_rng(seed)
        for _ in range(60):
            k = int(rng.integers(0, topo.n_sites + topo.n_links))
            if k < topo.n_sites:
                state.set_site(k, not state.site_up[k])
            else:
                link = k - topo.n_sites
                state.set_link(link, not state.link_up[link])
            for a, b in zip(
                vote_proto.grant_masks(tracker), coterie_proto.grant_masks(tracker)
            ):
                np.testing.assert_array_equal(a, b)

    def test_weighted_votes_equivalence(self):
        votes = VoteAssignment([3, 1, 1, 1])
        proto = CoterieProtocol.from_votes(votes, read_quorum=2, write_quorum=5)
        topo = ring(4).with_votes([3, 1, 1, 1])
        state = NetworkState(topo)
        tracker = ComponentTracker(state)
        vote_proto = QuorumConsensusProtocol(QuorumAssignment(6, 2, 5))
        state.fail_link(topo.link_id(1, 2))
        for a, b in zip(
            vote_proto.grant_masks(tracker), proto.grant_masks(tracker)
        ):
            np.testing.assert_array_equal(a, b)


class TestBeyondVoting:
    def test_asymmetric_hand_built_coterie(self):
        """A hub-centric coterie: writes need the hub plus any other
        site; reads need the hub alone OR all three non-hub sites (the
        only hub-free set meeting every write group). Not expressible as
        a single (q_r, q_w) pair: the hub alone reads, yet a two-site
        hub-free component cannot, so no vote threshold separates them."""
        proto = CoterieProtocol(
            read_groups=[{0}, {1, 2, 3}],
            write_coterie=Coterie([{0, 1}, {0, 2}, {0, 3}]),
            n_sites=4,
        )
        topo = ring(4)
        state = NetworkState(topo)
        tracker = ComponentTracker(state)
        # Isolate site 0: cut both its links.
        state.fail_link(topo.link_id(0, 1))
        state.fail_link(topo.link_id(3, 0))
        read_mask, write_mask = proto.grant_masks(tracker)
        # Hub alone may read but not write.
        assert read_mask[0] and not write_mask[0]
        # {1,2,3} may read (full hub-free group) but not write.
        assert read_mask[1] and not write_mask[1]
        # Shrink the hub-free side: {1,2} alone may no longer read.
        state.fail_site(3)
        read_mask, write_mask = proto.grant_masks(tracker)
        assert read_mask[0]
        assert not read_mask[1] and not read_mask[2]

    def test_all_down(self):
        proto = CoterieProtocol(
            [{0, 1}, {1, 2}, {0, 2}], Coterie([{0, 1}, {1, 2}, {0, 2}])
        )
        topo = ring(3)
        state = NetworkState(topo)
        tracker = ComponentTracker(state)
        for s in range(3):
            state.fail_site(s)
        read_mask, write_mask = proto.grant_masks(tracker)
        assert not read_mask.any() and not write_mask.any()

    def test_network_smaller_than_protocol(self):
        proto = CoterieProtocol([{4}], Coterie([{4}]))
        topo = ring(3)
        tracker = ComponentTracker(NetworkState(topo))
        with pytest.raises(ProtocolError):
            proto.grant_masks(tracker)
