"""Unit tests for the on-line density estimator."""

import numpy as np
import pytest

from repro.errors import DensityError
from repro.protocols.estimator import OnlineDensityEstimator


class TestConstruction:
    def test_bad_args(self):
        with pytest.raises(DensityError):
            OnlineDensityEstimator(0, 5)
        with pytest.raises(DensityError):
            OnlineDensityEstimator(3, 0)
        with pytest.raises(DensityError):
            OnlineDensityEstimator(3, 5, forgetting_factor=0.0)
        with pytest.raises(DensityError):
            OnlineDensityEstimator(3, 5, forgetting_factor=1.5)


class TestObserve:
    def test_single_observations(self):
        est = OnlineDensityEstimator(2, 4)
        est.observe(0, 3)
        est.observe(0, 3)
        est.observe(0, 1)
        f = est.density(0)
        assert f[3] == pytest.approx(2 / 3)
        assert f[1] == pytest.approx(1 / 3)

    def test_observe_bounds(self):
        est = OnlineDensityEstimator(2, 4)
        with pytest.raises(DensityError):
            est.observe(2, 0)
        with pytest.raises(DensityError):
            est.observe(0, 5)
        with pytest.raises(DensityError):
            est.observe(0, 2, weight=-1.0)

    def test_observe_all_snapshot(self):
        est = OnlineDensityEstimator(3, 5)
        est.observe_all(np.array([5, 5, 0]), weight=2.0)
        est.observe_all(np.array([3, 5, 0]), weight=1.0)
        f0 = est.density(0)
        assert f0[5] == pytest.approx(2 / 3)
        assert f0[3] == pytest.approx(1 / 3)
        assert est.density(2)[0] == pytest.approx(1.0)

    def test_observe_all_validation(self):
        est = OnlineDensityEstimator(3, 5)
        with pytest.raises(DensityError):
            est.observe_all(np.array([1, 2]))
        with pytest.raises(DensityError):
            est.observe_all(np.array([1, 2, 6]))
        with pytest.raises(DensityError):
            est.observe_all(np.array([1, 2, 3]), weight=-0.5)

    def test_observe_counts(self):
        est = OnlineDensityEstimator(2, 3)
        est.observe_counts(np.array([3, 1]), np.array([4.0, 0.0]))
        est.observe_counts(np.array([2, 1]), np.array([1.0, 5.0]))
        assert est.density(0)[3] == pytest.approx(0.8)
        assert est.density(1)[1] == pytest.approx(1.0)
        assert est.site_weight(1) == pytest.approx(5.0)

    def test_observe_counts_validation(self):
        est = OnlineDensityEstimator(2, 3)
        with pytest.raises(DensityError):
            est.observe_counts(np.array([1, 1]), np.array([1.0]))
        with pytest.raises(DensityError):
            est.observe_counts(np.array([1, 1]), np.array([-1.0, 1.0]))

    def test_duplicate_vote_totals_accumulate(self):
        """np.add.at must accumulate when several sites share a cell."""
        est = OnlineDensityEstimator(3, 2)
        est.observe_counts(np.array([2, 2, 2]), np.array([1.0, 2.0, 3.0]))
        assert est.total_weight == pytest.approx(6.0)


class TestReadout:
    def test_density_requires_observation(self):
        est = OnlineDensityEstimator(2, 3)
        with pytest.raises(DensityError):
            est.density(0)

    def test_density_matrix_requires_full_coverage(self):
        est = OnlineDensityEstimator(2, 3)
        est.observe(0, 1)
        with pytest.raises(DensityError):
            est.density_matrix()
        est.observe(1, 2)
        matrix = est.density_matrix()
        np.testing.assert_allclose(matrix.sum(axis=1), 1.0)

    def test_unknown_site(self):
        est = OnlineDensityEstimator(2, 3)
        with pytest.raises(DensityError):
            est.density(5)

    def test_reset(self):
        est = OnlineDensityEstimator(2, 3)
        est.observe(0, 1)
        est.reset()
        assert est.total_weight == 0.0


class TestForgetting:
    def test_forgetting_tracks_regime_change(self):
        fast = OnlineDensityEstimator(1, 4, forgetting_factor=0.5)
        slow = OnlineDensityEstimator(1, 4, forgetting_factor=1.0)
        for _ in range(50):
            fast.observe(0, 4)
            slow.observe(0, 4)
        for _ in range(10):
            fast.observe(0, 1)
            slow.observe(0, 1)
        # The forgetting estimator has essentially converged to the new
        # regime; the non-forgetting one is still dominated by history.
        assert fast.density(0)[1] > 0.95
        assert slow.density(0)[1] < 0.25

    def test_no_decay_when_factor_one(self):
        est = OnlineDensityEstimator(1, 2)
        est.observe(0, 1)
        est.observe(0, 2)
        assert est.total_weight == pytest.approx(2.0)


class TestMerge:
    def test_merge_combines_weights(self):
        a = OnlineDensityEstimator(2, 3)
        b = OnlineDensityEstimator(2, 3)
        a.observe(0, 1)
        b.observe(0, 3)
        b.observe(1, 2)
        a.merge(b)
        assert a.density(0)[1] == pytest.approx(0.5)
        assert a.density(0)[3] == pytest.approx(0.5)
        assert a.site_weight(1) == pytest.approx(1.0)

    def test_merge_shape_mismatch(self):
        a = OnlineDensityEstimator(2, 3)
        b = OnlineDensityEstimator(2, 4)
        with pytest.raises(DensityError):
            a.merge(b)

    def test_repr(self):
        est = OnlineDensityEstimator(2, 3)
        assert "OnlineDensityEstimator" in repr(est)
