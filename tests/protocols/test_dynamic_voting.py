"""Tests for the dynamic voting comparison protocol."""

import numpy as np
import pytest

from repro.connectivity.dynamic import ComponentTracker, NetworkState
from repro.errors import ProtocolError
from repro.protocols.dynamic_voting import DynamicVotingProtocol
from repro.protocols.majority import MajorityConsensusProtocol
from repro.topology.generators import fully_connected, ring


@pytest.fixture
def net5():
    # Complete graph so partitions are pure site-failure driven.
    topo = fully_connected(5)
    state = NetworkState(topo)
    tracker = ComponentTracker(state)
    return topo, state, tracker


def protocol(n=5, linear=True):
    return DynamicVotingProtocol(n, linear=linear)


class TestBasics:
    def test_initial_full_network_distinguished(self, net5):
        topo, state, tracker = net5
        proto = protocol()
        members = proto.distinguished_component(tracker)
        assert members is not None and members.shape[0] == 5
        read_mask, write_mask = proto.grant_masks(tracker)
        assert read_mask.all() and write_mask.all()

    def test_validation(self):
        with pytest.raises(ProtocolError):
            DynamicVotingProtocol(0)

    def test_reset(self, net5):
        topo, state, tracker = net5
        proto = protocol()
        proto.on_network_change(tracker)
        proto.reset()
        assert (proto.version == 0).all()
        assert (proto.cardinality == 5).all()


class TestShrinkingMajority:
    def test_survives_cascading_partitions(self, net5):
        """The classic dynamic voting win: {5} -> {3} -> {2} keeps
        operating while static majority (needing 3 of 5) stops."""
        topo, state, tracker = net5
        dyn = protocol()
        maj = MajorityConsensusProtocol(5)
        dyn.on_network_change(tracker)

        # Lose sites 3 and 4: component {0,1,2} has 3 of the last 5 -> ok.
        state.fail_site(3)
        state.fail_site(4)
        dyn.on_network_change(tracker)
        assert dyn.grant_masks(tracker)[1][0]
        # Static majority under the paper's convention has q_w = 4 at
        # T = 5: already denied at 3 up sites, while reads still pass.
        assert maj.grant_masks(tracker)[0][0]
        assert not maj.grant_masks(tracker)[1][0]

        # Lose site 2: {0,1} has 2 of the last participant set {0,1,2} -> ok
        # for dynamic voting, DENIED by majority (2 < 3).
        state.fail_site(2)
        dyn.on_network_change(tracker)
        assert dyn.grant_masks(tracker)[1][0]
        assert not maj.grant_masks(tracker)[1][0]

        # Down to {0}: 1 of the last set {0,1} is not a strict majority;
        # the linear tie-break needs the distinguished site (1, the max id).
        state.fail_site(1)
        dyn.on_network_change(tracker)
        assert not dyn.grant_masks(tracker)[1][0]

    def test_linear_tie_break(self, net5):
        """With |I| exactly half of the last set, only the side holding
        the distinguished (max-id) site proceeds."""
        topo, state, tracker = net5
        dyn = protocol(linear=True)
        state.fail_site(4)  # participants re-base to {0,1,2,3} on refresh
        dyn.on_network_change(tracker)
        # Now split {0,1} / {2,3} by downing... need link control: use ring instead.
        # Simpler: fail 0 and 1 -> {2,3} holds 2 of 4 and contains site 3 = DS.
        state.fail_site(0)
        state.fail_site(1)
        dyn.on_network_change(tracker)
        mask = dyn.grant_masks(tracker)[1]
        assert mask[2] and mask[3]

    def test_plain_variant_denies_exact_half(self, net5):
        topo, state, tracker = net5
        dyn = protocol(linear=False)
        state.fail_site(4)
        dyn.on_network_change(tracker)
        state.fail_site(0)
        state.fail_site(1)
        dyn.on_network_change(tracker)
        assert not dyn.grant_masks(tracker)[1].any()

    def test_stale_side_cannot_operate_after_heal_and_repartition(self):
        """A component that missed reconfigurations holds old versions and
        must not become distinguished even if it is large."""
        topo = ring(5)
        state = NetworkState(topo)
        tracker = ComponentTracker(state)
        dyn = DynamicVotingProtocol(5)
        dyn.on_network_change(tracker)
        # Partition ring into {1,2,3} and {4,0} by cutting two links.
        state.fail_link(topo.link_id(0, 1))
        state.fail_link(topo.link_id(3, 4))
        dyn.on_network_change(tracker)   # {1,2,3} writes, re-bases to 3 sites
        # Now shrink the active side to {2} isolating it... {1,2,3} with
        # participants {1,2,3}: cut 2-3; {1,2} has 2 of 3 -> active.
        state.fail_link(topo.link_id(2, 3))
        dyn.on_network_change(tracker)
        mask = dyn.grant_masks(tracker)[1]
        assert mask[1] and mask[2]
        # The other three sites {3}, {4,0} are stale; even healing them
        # together must not make them distinguished.
        state.repair_link(topo.link_id(3, 4))
        dyn.on_network_change(tracker)
        mask = dyn.grant_masks(tracker)[1]
        assert not mask[3] and not mask[4] and not mask[0]


class TestSafetyModel:
    @pytest.mark.parametrize("seed", range(5))
    def test_at_most_one_distinguished_component(self, seed):
        rng = np.random.default_rng(seed)
        topo = ring(8).add_links([(0, 4)])
        state = NetworkState(topo)
        tracker = ComponentTracker(state)
        dyn = DynamicVotingProtocol(8)
        dyn.on_network_change(tracker)
        for _ in range(300):
            k = int(rng.integers(0, topo.n_sites + topo.n_links))
            if k < topo.n_sites:
                state.set_site(k, not state.site_up[k])
            else:
                link = k - topo.n_sites
                state.set_link(link, not state.link_up[link])
            dyn.on_network_change(tracker)
            _, write_mask = dyn.grant_masks(tracker)
            writers = np.nonzero(write_mask)[0]
            assert len({int(tracker.labels[w]) for w in writers}) <= 1

    @pytest.mark.parametrize("seed", range(3))
    def test_distinguished_set_is_component_aligned(self, seed):
        rng = np.random.default_rng(50 + seed)
        topo = fully_connected(7)
        state = NetworkState(topo)
        tracker = ComponentTracker(state)
        dyn = DynamicVotingProtocol(7)
        dyn.on_network_change(tracker)
        for _ in range(200):
            s = int(rng.integers(0, 7))
            state.set_site(s, not state.site_up[s])
            dyn.on_network_change(tracker)
            members = dyn.distinguished_component(tracker)
            if members is not None:
                labels = {int(tracker.labels[m]) for m in members}
                assert len(labels) == 1
                label = labels.pop()
                full = np.nonzero(tracker.labels == label)[0]
                assert np.array_equal(members, full)
