"""Tests for the precomputed request stream."""

import numpy as np
import pytest

from repro.errors import ReproError
from repro.serving.requests import RequestStream
from repro.simulation.workload import AccessWorkload


def _stream(n=10_000, seed=3, chunk_size=512, alpha=0.7, n_sites=9):
    return RequestStream(
        AccessWorkload.uniform(n_sites, alpha), n, seed, chunk_size
    )


class TestPrecomputation:
    def test_same_seed_same_stream(self):
        a, b = _stream(seed=5), _stream(seed=5)
        np.testing.assert_array_equal(a.times, b.times)
        np.testing.assert_array_equal(a.sites, b.sites)
        np.testing.assert_array_equal(a.is_read, b.is_read)

    def test_different_seeds_differ(self):
        a, b = _stream(seed=5), _stream(seed=6)
        assert not np.array_equal(a.sites, b.sites)

    def test_times_monotone_nondecreasing(self):
        s = _stream()
        assert (np.diff(s.times) >= 0).all()
        assert s.horizon == s.times[-1]

    def test_read_fraction_tracks_alpha(self):
        s = _stream(n=50_000, alpha=0.7)
        assert s.is_read.mean() == pytest.approx(0.7, abs=0.02)

    def test_sites_within_range(self):
        s = _stream(n_sites=9)
        assert s.sites.min() >= 0
        assert s.sites.max() < 9


class TestChunking:
    def test_chunks_cover_every_id_once(self):
        s = _stream(n=1000, chunk_size=64)
        seen = []
        for index in range(s.n_chunks):
            seen.extend(rid for rid, _, _, _ in s.chunk(index).rows())
        assert seen == list(range(1000))

    def test_chunk_rows_match_arrays(self):
        s = _stream(n=300, chunk_size=128)
        rid, at, site, is_read = next(iter(s.chunk(1).rows()))
        assert rid == 128
        assert at == s.times[128]
        assert site == s.sites[128]
        assert is_read == bool(s.is_read[128])

    def test_ragged_last_chunk(self):
        s = _stream(n=130, chunk_size=64)
        assert s.n_chunks == 3
        assert len(list(s.chunk(2).rows())) == 2

    def test_submission_counts_total(self):
        s = _stream(n=2000, n_sites=9)
        reads, writes = s.submission_counts()
        assert reads.shape == writes.shape == (9,)
        assert reads.sum() + writes.sum() == 2000
        assert reads.sum() == s.is_read.sum()


class TestValidation:
    def test_rejects_nonpositive_requests(self):
        with pytest.raises(ReproError):
            _stream(n=0)

    def test_rejects_nonpositive_chunk(self):
        with pytest.raises(ReproError):
            _stream(chunk_size=0)
