"""End-to-end tests for the adaptive quorum serving engine.

The acceptance-critical properties: bitwise-identical digests for any
client-concurrency setting at a fixed seed, exact audit reconciliation,
at least one estimation-driven reassignment under the correlated
scenario, graceful degradation (read-only mode, stale reads, shedding),
and the abort contract on invariant violations.
"""

import asyncio

import numpy as np
import pytest

from repro.quorum.assignment import QuorumAssignment
from repro.serving import (
    ServeConfig,
    ServeReport,
    run_serve,
    serving_schedule,
)
from repro.serving.service import AdaptiveQuorumService
from repro.simulation.workload import AccessWorkload
from repro.topology.generators import ring_with_chords

N_SITES = 9
TOPOLOGY = ring_with_chords(N_SITES, 2)


def make_config(**overrides):
    defaults = dict(
        topology=TOPOLOGY,
        workload=AccessWorkload.uniform(N_SITES, 0.7),
        initial_assignment=QuorumAssignment.from_read_quorum(
            TOPOLOGY.total_votes, 1
        ),
        n_requests=6_000,
        n_clients=16,
        chunk_size=256,
        seed=11,
    )
    defaults.update(overrides)
    return ServeConfig(**defaults)


def serve(**overrides) -> ServeReport:
    config = make_config(**overrides)
    if config.fault_schedule is None and config.scenario != "custom":
        config.fault_schedule = serving_schedule(
            config.scenario, config.topology, config.horizon
        )
    return run_serve(config)


class TestCleanRun:
    def test_no_faults_everything_granted(self):
        report = serve(scenario="custom")
        assert report.served == 6_000
        assert report.outcomes == {"granted": 6_000}
        assert report.availability == 1.0
        assert not report.reassignments
        assert not report.violations
        assert report.reconciled
        assert report.passed
        assert report.exit_code == 0

    def test_reconciliation_is_exact_per_cell(self):
        report = serve(scenario="correlated")
        assert report.reconciliation_failures() == []
        # Every database attempt the serving layer made appears in the
        # audit with the same (op, reason) — including retries.
        assert sum(report.db_attempts.values()) == sum(
            report.audit_totals.values()
        )

    def test_slo_gates_flip_exit_code(self):
        report = serve(scenario="custom")
        report.min_availability = 1.1
        assert not report.passed
        assert report.exit_code == 1


class TestDeterminism:
    def test_digest_invariant_across_concurrency(self):
        digests = {
            serve(scenario="correlated", n_clients=c, transport_slots=s).digest()
            for c, s in ((1, 1), (7, 3), (200, 64))
        }
        assert len(digests) == 1

    def test_digest_invariant_across_chunk_feeder_ratio(self):
        base = serve(scenario="mixed", chunk_size=64).digest()
        other = serve(scenario="mixed", chunk_size=64, n_clients=3).digest()
        assert base == other

    def test_different_seeds_differ(self):
        a = serve(scenario="correlated", seed=1)
        b = serve(scenario="correlated", seed=2)
        assert a.digest() != b.digest()

    def test_repeated_run_identical_report_fields(self):
        a = serve(scenario="flap")
        b = serve(scenario="flap")
        assert a.outcomes == b.outcomes
        assert a.reassignments == b.reassignments
        np.testing.assert_array_equal(a.outcome_codes, b.outcome_codes)
        np.testing.assert_array_equal(a.attempt_counts, b.attempt_counts)


class TestAdaptiveLoop:
    def test_correlated_failures_trigger_reassignment(self):
        report = serve(scenario="correlated")
        assert len(report.reassignments) >= 1
        event = report.reassignments[0]
        assert event.new_read_quorum != event.old_read_quorum
        assert event.trigger in ("control", "watchdog")
        assert report.final_version > 1
        assert not report.violations

    def test_reassignment_moves_off_fragile_assignment(self):
        # q_r = 1 means q_w = T: any site loss kills writes. Under the
        # correlated scenario the estimator must learn this and move.
        report = serve(scenario="correlated")
        assert report.final_read_quorum > 1

    def test_watchdog_runs(self):
        report = serve(scenario="correlated")
        assert report.watchdog_ticks > 0


class TestDegradation:
    def test_read_only_mode_fast_rejects_writes(self):
        report = serve(scenario="correlated")
        assert report.read_only_entries >= 1
        assert report.read_only_time > 0
        assert report.outcomes.get("read_only", 0) > 0

    def test_read_only_fast_reject_can_be_disabled(self):
        report = serve(scenario="correlated", read_only_fast_reject=False)
        assert report.outcomes.get("read_only", 0) == 0

    def test_overload_shedding_under_tiny_queue(self):
        report = serve(scenario="correlated", queue_capacity=1)
        assert report.shed == report.outcomes.get("overload", 0)
        assert report.reconciled

    def test_stale_read_fallback_disabled(self):
        with_stale = serve(scenario="partition")
        without = serve(scenario="partition", stale_reads=False)
        # Disabling the fallback can only move stale reads back to hard
        # denials; grant counts are untouched.
        assert without.outcomes.get("stale_read", 0) == 0
        assert without.outcomes.get("granted") == with_stale.outcomes.get(
            "granted"
        )

    def test_breakers_absorb_repeated_failures(self):
        report = serve(scenario="correlated")
        assert report.breaker_trips > 0
        assert report.breaker_rejections == report.outcomes.get(
            "circuit_open", 0
        )


class TestAbortContract:
    def test_injected_violation_aborts_run(self):
        config = make_config(scenario="correlated")
        config.fault_schedule = serving_schedule(
            "correlated", config.topology, config.horizon
        )
        service = AdaptiveQuorumService(config)
        # Simulate a monitor-detected violation before serving starts:
        # the first network-change check must abort the run.
        service.monitor.record_serializability(0.0, "injected for test")
        report = asyncio.run(service.run_async())
        assert report.aborted
        assert report.violations
        assert report.outcomes.get("unserved", 0) > 0
        assert report.exit_code == 1

    def test_abort_can_be_disabled(self):
        config = make_config(scenario="correlated", abort_on_violation=False)
        config.fault_schedule = serving_schedule(
            "correlated", config.topology, config.horizon
        )
        service = AdaptiveQuorumService(config)
        service.monitor.record_serializability(0.0, "injected for test")
        report = asyncio.run(service.run_async())
        assert not report.aborted
        assert report.served == config.n_requests
        assert report.exit_code == 1  # violations still fail the verdict


class TestConfigValidation:
    def test_rejects_bad_counts(self):
        from repro.errors import ReproError

        for field, value in (
            ("n_requests", 0),
            ("n_clients", 0),
            ("queue_capacity", 0),
            ("transport_slots", -1),
            ("control_interval", 0.0),
            ("forgetting_factor", 0.0),
        ):
            with pytest.raises(ReproError):
                make_config(**{field: value})

    def test_rejects_mismatched_workload(self):
        from repro.errors import ReproError

        with pytest.raises(ReproError):
            make_config(workload=AccessWorkload.uniform(N_SITES + 1, 0.5))
