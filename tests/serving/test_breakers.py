"""Tests for the per-site circuit breakers."""

import pytest

from repro.errors import ReproError
from repro.serving.breakers import (
    BreakerBoard,
    BreakerState,
    CircuitBreaker,
    CircuitBreakerConfig,
)


def _breaker(threshold=3, cooldown=10.0, enabled=True):
    return CircuitBreaker(
        CircuitBreakerConfig(failure_threshold=threshold, cooldown=cooldown,
                             enabled=enabled)
    )


class TestStateMachine:
    def test_starts_closed_and_allows(self):
        b = _breaker()
        assert b.state is BreakerState.CLOSED
        assert b.allow(0.0)

    def test_trips_after_threshold_consecutive_failures(self):
        b = _breaker(threshold=3)
        b.on_failure(1.0)
        b.on_failure(2.0)
        assert b.state is BreakerState.CLOSED
        b.on_failure(3.0)
        assert b.state is BreakerState.OPEN
        assert b.trips == 1
        assert not b.allow(3.5)

    def test_success_resets_failure_count(self):
        b = _breaker(threshold=3)
        b.on_failure(1.0)
        b.on_failure(2.0)
        b.on_success()
        b.on_failure(3.0)
        b.on_failure(4.0)
        assert b.state is BreakerState.CLOSED

    def test_half_open_after_cooldown_single_probe(self):
        b = _breaker(threshold=1, cooldown=10.0)
        b.on_failure(0.0)
        assert not b.allow(5.0)
        assert b.allow(10.0)          # the probe
        assert b.state is BreakerState.HALF_OPEN
        assert not b.allow(10.1)      # only one probe at a time

    def test_probe_success_closes(self):
        b = _breaker(threshold=1, cooldown=10.0)
        b.on_failure(0.0)
        assert b.allow(10.0)
        b.on_success()
        assert b.state is BreakerState.CLOSED
        assert b.allow(10.5)

    def test_probe_failure_reopens_for_full_cooldown(self):
        b = _breaker(threshold=5, cooldown=10.0)
        for t in range(5):
            b.on_failure(float(t))
        assert b.allow(14.0)
        b.on_failure(14.0)
        assert b.state is BreakerState.OPEN
        assert b.trips == 2
        assert not b.allow(20.0)
        assert b.allow(24.0)

    def test_disabled_always_allows(self):
        b = _breaker(enabled=False)
        for t in range(50):
            b.on_failure(float(t))
        assert b.state is BreakerState.CLOSED
        assert b.allow(50.0)
        assert b.trips == 0


class TestBoard:
    def test_breakers_are_independent(self):
        board = BreakerBoard(3, CircuitBreakerConfig(failure_threshold=1))
        board.on_failure(1, 0.0)
        assert board.allow(0, 0.5)
        assert not board.allow(1, 0.5)
        assert board.open_sites() == [1]
        assert board.rejections == 1
        assert board.trips == 1

    def test_states_tally(self):
        board = BreakerBoard(4, CircuitBreakerConfig(failure_threshold=1))
        board.on_failure(0, 0.0)
        board.on_failure(3, 0.0)
        assert board.states() == {"open": 2, "closed": 2}

    def test_rejects_empty_board(self):
        with pytest.raises(ReproError):
            BreakerBoard(0, CircuitBreakerConfig())


class TestConfigValidation:
    def test_rejects_zero_threshold(self):
        with pytest.raises(ReproError):
            CircuitBreakerConfig(failure_threshold=0)

    def test_rejects_nonpositive_cooldown(self):
        with pytest.raises(ReproError):
            CircuitBreakerConfig(cooldown=0.0)
