"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


class TestOptimize:
    def test_basic_ring(self, capsys):
        code, out, _ = run_cli(
            capsys, "optimize", "--family", "ring", "--sites", "31",
            "--alpha", "0.9",
        )
        assert code == 0
        assert "optimal quorums" in out
        assert "q_r=2" in out  # known optimum for ring-31 at alpha=.9

    def test_complete_low_alpha_majority(self, capsys):
        code, out, _ = run_cli(
            capsys, "optimize", "--family", "complete", "--sites", "20",
            "--alpha", "0.25",
        )
        assert code == 0
        assert "q_r=10" in out

    def test_write_floor_reported(self, capsys):
        code, out, _ = run_cli(
            capsys, "optimize", "--family", "ring", "--sites", "101",
            "--alpha", "0.75", "--write-floor", "0.05",
        )
        assert code == 0
        assert "write floor" in out
        assert "write-floor(0.05)" in out

    def test_infeasible_floor_clean_error(self, capsys):
        code, out, err = run_cli(
            capsys, "optimize", "--family", "ring", "--sites", "101",
            "--alpha", "0.75", "--write-floor", "0.99",
        )
        assert code == 2
        assert "error:" in err
        assert "best achievable" in err

    def test_bus_family(self, capsys):
        code, out, _ = run_cli(
            capsys, "optimize", "--family", "bus", "--sites", "15",
            "--alpha", "0.5",
        )
        assert code == 0

    def test_methods(self, capsys):
        for method in ("endpoints", "golden", "brent"):
            code, out, _ = run_cli(
                capsys, "optimize", "--family", "ring", "--sites", "21",
                "--alpha", "1.0", "--method", method,
            )
            assert code == 0
            assert "q_r=1" in out


class TestSimulate:
    def test_majority(self, capsys):
        code, out, _ = run_cli(
            capsys, "simulate", "--chords", "2", "--scale", "test", "--seed", "3",
        )
        assert code == 0
        assert "availability(ACC)" in out
        assert "95% CI" in out

    def test_explicit_quorum(self, capsys):
        code, out, _ = run_cli(
            capsys, "simulate", "--chords", "0", "--scale", "test",
            "--protocol", "quorum", "--read-quorum", "2",
        )
        assert code == 0
        assert "q_r=2" in out

    def test_quorum_requires_read_quorum(self, capsys):
        with pytest.raises(SystemExit):
            main(["simulate", "--protocol", "quorum", "--scale", "test"])

    def test_rowa_and_primary(self, capsys):
        for protocol in ("rowa", "primary"):
            code, out, _ = run_cli(
                capsys, "simulate", "--chords", "0", "--scale", "test",
                "--protocol", protocol,
            )
            assert code == 0


class TestReports:
    def test_figure(self, capsys):
        code, out, _ = run_cli(
            capsys, "figure", "--chords", "0", "--scale", "test", "--points", "6",
        )
        assert code == 0
        assert "availability vs read quorum" in out
        assert "convergence spread" in out

    def test_figure_chart_mode(self, capsys):
        code, out, _ = run_cli(
            capsys, "figure", "--chords", "0", "--scale", "test", "--chart",
        )
        assert code == 0
        assert "(* overlap)" in out
        assert "a=0.75" in out

    def test_rw_table(self, capsys):
        code, out, _ = run_cli(
            capsys, "rw-table", "--chords", "0", "2", "--scale", "test",
        )
        assert code == 0
        assert "regime" in out
        assert "topology-2" in out

    def test_write_constraint(self, capsys):
        code, out, _ = run_cli(
            capsys, "write-constraint", "--chords", "2", "--scale", "test",
            "--floors", "0.0", "0.5",
        )
        assert code == 0
        assert "floor A_w" in out


class TestVotesAndShootout:
    def test_votes_hillclimb(self, capsys):
        code, out, _ = run_cli(
            capsys, "votes", "--sites", "6", "--chords", "1",
            "--flaky-every", "3", "--samples", "300",
        )
        assert code == 0
        assert "vote vector" in out
        assert "hillclimb" in out

    def test_votes_exhaustive_tiny(self, capsys):
        code, out, _ = run_cli(
            capsys, "votes", "--sites", "4", "--chords", "0",
            "--total-votes", "4", "--method", "exhaustive",
            "--samples", "200",
        )
        assert code == 0
        assert "exhaustive" in out

    def test_shootout(self, capsys):
        code, out, _ = run_cli(
            capsys, "shootout", "--chords", "1", "--scale", "test",
        )
        assert code == 0
        for name in ("majority", "rowa", "primary-copy", "dynamic-voting"):
            assert name in out


class TestCampaign:
    def test_campaign_runs(self, capsys):
        code, out, _ = run_cli(capsys, "campaign", "--scale", "test")
        assert code == 0
        assert "--- Figure 2 ---" in out
        assert "--- section 5.5 ---" in out


class TestChaos:
    def test_clean_campaign_passes(self, capsys):
        code, out, _ = run_cli(
            capsys, "chaos", "--scenario", "partition", "--scale", "test",
            "--batches", "1",
        )
        assert code == 0
        assert "verdict        : PASS" in out
        assert "quarantined" in out

    def test_broken_assignment_fails_with_violations(self, capsys):
        code, out, _ = run_cli(
            capsys, "chaos", "--scenario", "partition", "--scale", "test",
            "--batches", "1", "--broken", "--show-violations", "2",
        )
        assert code == 1
        assert "verdict        : FAIL" in out
        assert "quorum-intersection" in out

    def test_simulate_accepts_keep_going(self, capsys):
        code, out, _ = run_cli(
            capsys, "simulate", "--scale", "test", "--keep-going",
        )
        assert code == 0
        assert "availability" in out


class TestServe:
    """The serve exit contract: 0 clean, 1 SLO/invariant, 2 usage error."""

    SMALL = ("serve", "--sites", "7", "--chords", "1", "--accesses", "2000",
             "--clients", "8", "--seed", "3")

    def test_clean_run_exits_zero(self, capsys):
        code, out, _ = run_cli(capsys, *self.SMALL, "--scenario", "none")
        assert code == 0
        assert "verdict        : PASS" in out
        assert "reconciliation : exact" in out

    def test_chaos_run_reports_reassignment(self, capsys):
        code, out, _ = run_cli(capsys, *self.SMALL, "--scenario", "correlated")
        assert code == 0
        assert "reassignments" in out
        assert "invariants     : 0 violations" in out

    def test_unreachable_slo_exits_one(self, capsys):
        code, out, _ = run_cli(
            capsys, *self.SMALL, "--scenario", "correlated",
            "--min-availability", "1.1",
        )
        assert code == 1
        assert "verdict        : FAIL" in out

    def test_invalid_read_quorum_exits_two(self, capsys):
        code, _, err = run_cli(
            capsys, *self.SMALL, "--read-quorum", "0",
        )
        assert code == 2
        assert "error:" in err

    def test_oversized_read_quorum_exits_two(self, capsys):
        code, _, err = run_cli(
            capsys, *self.SMALL, "--read-quorum", "100",
        )
        assert code == 2
        assert "error:" in err

    def test_duration_short_preset(self, capsys):
        code, out, _ = run_cli(
            capsys, "serve", "--duration-short", "--sites", "7",
            "--chords", "1", "--scenario", "none", "--seed", "1",
        )
        assert code == 0
        assert "requests       : 20000" in out

    def test_telemetry_export_includes_serving_counters(self, capsys, tmp_path):
        code, out, _ = run_cli(
            capsys, *self.SMALL, "--scenario", "correlated",
            "--telemetry-dir", str(tmp_path),
        )
        assert code == 0
        assert (tmp_path / "metrics.prom").exists()
        prom = (tmp_path / "metrics.prom").read_text()
        assert "repro_serve_requests_total" in prom
        mcode, mout, _ = run_cli(
            capsys, "metrics", str(tmp_path / "events.jsonl")
        )
        assert mcode == 0
        assert "retry pressure" in mout


class TestValidate:
    def test_validate_runs_and_passes(self, capsys):
        # The default validation scale takes a few seconds; acceptable for
        # one integration test of the full battery through the CLI.
        code, out, _ = run_cli(capsys, "validate", "--seed", "1")
        assert code == 0
        assert "REPRODUCTION VALID" in out


class TestErrorPaths:
    """Malformed invocations must exit 2 with a clean one-line error."""

    def test_simulate_rejects_zero_workers(self, capsys):
        code, _, err = run_cli(
            capsys, "simulate", "--scale", "test", "--workers", "0",
        )
        assert code == 2
        assert "error:" in err

    def test_simulate_rejects_negative_workers(self, capsys):
        code, _, err = run_cli(
            capsys, "simulate", "--scale", "test", "--workers", "-3",
        )
        assert code == 2
        assert "error:" in err

    def test_chaos_rejects_zero_workers(self, capsys):
        code, _, err = run_cli(
            capsys, "chaos", "--scale", "test", "--batches", "1",
            "--workers", "0",
        )
        assert code == 2
        assert "error:" in err

    def test_metrics_missing_path_is_clean_error(self, capsys, tmp_path):
        code, _, err = run_cli(capsys, "metrics", str(tmp_path / "nope.jsonl"))
        assert code == 2
        assert "no telemetry stream" in err
        assert "--telemetry" in err

    def test_metrics_missing_directory_resolves_events_file(self, capsys,
                                                            tmp_path):
        # A directory without events.jsonl (e.g. a mistyped --telemetry-dir)
        # must name the file it looked for, not traceback.
        code, _, err = run_cli(capsys, "metrics", str(tmp_path))
        assert code == 2
        assert "events.jsonl" in err


class TestVerify:
    """Exit-code contract: 0 = pass, 1 = divergence, 2 = config error."""

    def _fake_report(self, passed):
        class FakeReport:
            def summary(self, drift_top=5):
                return "fake verification summary"

        report = FakeReport()
        report.passed = passed
        return report

    def test_pass_maps_to_exit_zero(self, capsys, monkeypatch):
        import repro.verification

        monkeypatch.setattr(
            repro.verification, "run_profile",
            lambda profile, bug=None, golden=True: self._fake_report(True),
        )
        code, out, _ = run_cli(capsys, "verify")
        assert code == 0
        assert "fake verification summary" in out

    def test_divergence_maps_to_exit_one(self, capsys, monkeypatch):
        import repro.verification

        monkeypatch.setattr(
            repro.verification, "run_profile",
            lambda profile, bug=None, golden=True: self._fake_report(False),
        )
        code, _, _ = run_cli(capsys, "verify")
        assert code == 1

    def test_unknown_bug_is_config_error(self, capsys):
        code, _, err = run_cli(capsys, "verify", "--inject-bug", "no-such-bug")
        assert code == 2
        assert "unknown bug injection" in err

    def test_unknown_profile_rejected_by_parser(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["verify", "--profile", "exhaustive"])

    def test_regenerate_golden_writes_corpus(self, capsys, monkeypatch,
                                             tmp_path):
        import repro.verification

        target = tmp_path / "corpus.json"
        monkeypatch.setattr(
            repro.verification, "write_corpus",
            lambda: (target.write_text("{}"), target)[1],
        )
        code, out, _ = run_cli(capsys, "verify", "--regenerate-golden")
        assert code == 0
        assert "regenerated" in out
        assert target.exists()

    @pytest.mark.slow
    def test_real_quick_profile_passes(self, capsys):
        code, out, _ = run_cli(capsys, "verify", "--profile", "quick")
        assert code == 0
        assert "0 failed" in out
        assert "engine pairs (20)" in out

    @pytest.mark.slow
    def test_real_injected_off_by_one_exits_one(self, capsys):
        # The acceptance demonstration: the same battery that passes on
        # main must fail loudly when a quorum threshold is off by one.
        code, out, _ = run_cli(
            capsys, "verify", "--profile", "quick", "--no-golden",
            "--inject-bug", "quorum-off-by-one",
        )
        assert code == 1
        assert "quorum-off-by-one" in out
        assert "FAIL" in out


class TestEngines:
    def test_lists_all_builtin_engines(self, capsys):
        code, out, _ = run_cli(capsys, "engines")
        assert code == 0
        assert "registered engines (11)" in out
        for name in ("closed-form", "enumeration", "enum-compiled",
                     "monte-carlo",
                     "mc-stratified", "mc-importance", "simulation",
                     "parallel", "sharded", "sharded-reference",
                     "online-density"):
            assert name in out

    def test_kind_filter(self, capsys):
        code, out, _ = run_cli(capsys, "engines", "--kind", "model")
        assert code == 0
        assert "registered engines (6)" in out
        assert "simulation" not in out.splitlines()[0]
        assert "online-density" not in out

    def test_capability_filter(self, capsys):
        code, out, _ = run_cli(
            capsys, "engines", "--capability", "variance-reduced")
        assert code == 0
        assert "mc-stratified" in out
        assert "mc-importance" in out
        assert "closed-form" not in out

    def test_no_match_message(self, capsys):
        code, out, _ = run_cli(
            capsys, "engines", "--capability", "quantum")
        assert code == 0
        assert "no engines match" in out

    def test_unknown_kind_rejected_by_parser(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["engines", "--kind", "psychic"])


class TestCache:
    def test_stats_cold(self, capsys):
        from repro.analytic import cache as density_cache

        density_cache.get_cache().clear()
        code, out, _ = run_cli(capsys, "cache")
        assert code == 0
        assert "density cache: enabled" in out
        assert "hits:    0" in out

    def test_exercise_reports_warm_hits(self, capsys):
        from repro.analytic import cache as density_cache

        density_cache.get_cache().clear()
        code, out, _ = run_cli(capsys, "cache", "--exercise")
        assert code == 0
        assert "closed_form" in out
        assert "enumeration" in out
        stats = density_cache.stats()
        assert stats.hits >= stats.misses  # second pass re-hit everything
        density_cache.get_cache().clear()


class TestProfile:
    def test_enumeration_writes_perfetto_trace(self, capsys, tmp_path,
                                               monkeypatch):
        monkeypatch.chdir(tmp_path)
        code, out, _ = run_cli(
            capsys, "profile", "enumeration", "--sites", "8",
            "--out", "enum-profile",
        )
        assert code == 0
        trace = tmp_path / "enum-profile.trace.json"
        spans = tmp_path / "enum-profile.spans.jsonl"
        assert trace.exists() and spans.exists()
        assert "tree digest" in out
        assert "enum." in out  # phase table names the kernel phases
        import json

        payload = json.loads(trace.read_text())
        assert payload["traceEvents"]

    def test_simulate_target_runs(self, capsys, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        code, out, _ = run_cli(
            capsys, "profile", "simulate", "--out", "sim-profile",
        )
        assert code == 0
        assert (tmp_path / "sim-profile.trace.json").exists()
        assert "critical path" in out

    def test_unknown_target_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["profile", "frobnicate"])


class TestShard:
    def test_basic_run(self, capsys):
        code, out, _ = run_cli(
            capsys, "shard", "--family", "ring", "--sites", "7",
            "--items", "12", "--alpha-classes", "0.3", "0.6", "0.9",
            "--accesses", "2000", "--warmup", "200", "--batches", "2",
        )
        assert code == 0
        assert "sharded run" in out
        assert "12 items" in out
        assert "availability" in out
        assert "item ACC" in out
        assert "SURV" in out

    def test_optimize_reports_per_class_assignments(self, capsys):
        code, out, _ = run_cli(
            capsys, "shard", "--family", "ring", "--sites", "7",
            "--items", "9", "--alpha-classes", "0.3", "0.6", "0.9",
            "--optimize", "--accesses", "1000", "--warmup", "100",
            "--batches", "2",
        )
        assert code == 0
        assert "3 per-class runs for 9 items" in out
        assert "class alpha=0.3" in out
        assert "class alpha=0.9" in out
        assert "q_r=" in out

    def test_reference_engine_matches_vectorized(self, capsys):
        argv = (
            "shard", "--family", "complete", "--sites", "4", "--items", "3",
            "--accesses", "800", "--warmup", "0", "--batches", "1",
        )
        code_v, out_v, _ = run_cli(capsys, *argv, "--engine", "vectorized")
        code_r, out_r, _ = run_cli(capsys, *argv, "--engine", "reference")
        assert code_v == code_r == 0
        # Identical accounting: every stat line after the header matches.
        tail = lambda text: text.splitlines()[1:]
        assert tail(out_v) == tail(out_r)

    def test_bad_item_count_clean_error(self, capsys):
        code, _, err = run_cli(
            capsys, "shard", "--family", "ring", "--items", "0",
        )
        assert code == 2
        assert "error:" in err
        assert "--items must be >= 1" in err

    def test_bad_exponent_clean_error(self, capsys):
        code, _, err = run_cli(
            capsys, "shard", "--family", "ring", "--items", "4",
            "--exponent", "-2",
        )
        assert code == 2
        assert "error:" in err
        assert "exponent" in err

    def test_missing_family_is_usage_error(self):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["shard", "--items", "5"])
        assert excinfo.value.code == 2


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])
