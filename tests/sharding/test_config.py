"""ShardConfig validation, derived quantities, and config borrowing."""

import numpy as np
import pytest

from repro.errors import ShardingError
from repro.sharding import ItemWorkload, ShardConfig
from repro.simulation.config import SimulationConfig
from repro.simulation.workload import AccessWorkload
from repro.topology.generators import ring


def _workload(n_items=3, n_sites=5):
    return ItemWorkload.uniform(n_items, n_sites, 0.5)


class TestValidation:
    def test_site_count_mismatch_rejected(self):
        with pytest.raises(ShardingError, match="topology has"):
            ShardConfig(topology=ring(5), workload=_workload(n_sites=4))

    def test_votes_shape_checked(self):
        with pytest.raises(ShardingError, match="votes must have shape"):
            ShardConfig(
                topology=ring(5),
                workload=_workload(),
                votes=np.ones((2, 5), dtype=np.int64),
            )

    def test_negative_votes_rejected(self):
        votes = np.ones((3, 5), dtype=np.int64)
        votes[1, 2] = -1
        with pytest.raises(ShardingError, match="non-negative"):
            ShardConfig(topology=ring(5), workload=_workload(), votes=votes)

    def test_zero_vote_item_rejected(self):
        votes = np.ones((3, 5), dtype=np.int64)
        votes[2] = 0
        with pytest.raises(ShardingError, match="item 2 has no votes"):
            ShardConfig(topology=ring(5), workload=_workload(), votes=votes)

    def test_read_quorum_out_of_range_rejected(self):
        with pytest.raises(ShardingError, match="outside"):
            ShardConfig(
                topology=ring(5),
                workload=_workload(),
                read_quorums=np.asarray([2, 6, 3]),
            )

    def test_read_quorums_shape_checked(self):
        with pytest.raises(ShardingError, match="read_quorums must have shape"):
            ShardConfig(
                topology=ring(5),
                workload=_workload(),
                read_quorums=np.asarray([2, 3]),
            )

    def test_scalar_read_quorum_broadcasts(self):
        config = ShardConfig(
            topology=ring(5), workload=_workload(), read_quorums=np.int64(3)
        )
        assert (config.read_quorums == 3).all()

    def test_bad_initial_state_rejected(self):
        with pytest.raises(ShardingError, match="initial_state"):
            ShardConfig(
                topology=ring(5), workload=_workload(), initial_state="warm"
            )

    def test_nonpositive_batches_rejected(self):
        with pytest.raises(ShardingError, match="n_batches"):
            ShardConfig(topology=ring(5), workload=_workload(), n_batches=0)

    def test_negative_warmup_rejected(self):
        with pytest.raises(ShardingError, match="warmup_accesses"):
            ShardConfig(
                topology=ring(5), workload=_workload(), warmup_accesses=-1.0
            )

    def test_mttf_vector_length_checked(self):
        topology = ring(5)  # 5 sites + 5 links = 10 components
        with pytest.raises(ShardingError, match="n_sites \\+ n_links"):
            ShardConfig(
                topology=topology,
                workload=_workload(),
                mean_time_to_failure=np.ones(4),
            )

    def test_nonpositive_mttr_rejected(self):
        with pytest.raises(ShardingError, match="mean_time_to_repair"):
            ShardConfig(
                topology=ring(5), workload=_workload(), mean_time_to_repair=0.0
            )


class TestDefaultsAndProperties:
    def test_default_votes_broadcast_topology_assignment(self):
        config = ShardConfig(topology=ring(5), workload=_workload())
        assert config.votes.shape == (3, 5)
        assert (config.votes == np.asarray(ring(5).votes)).all()

    def test_default_read_quorums_are_write_favouring_majorities(self):
        config = ShardConfig(topology=ring(5), workload=_workload())
        totals = config.total_votes
        assert (config.read_quorums == np.maximum(totals // 2, 1)).all()

    def test_write_quorums_follow_paper_coupling(self):
        config = ShardConfig(
            topology=ring(5),
            workload=_workload(),
            read_quorums=np.asarray([1, 3, 5]),
        )
        assert (
            config.write_quorums
            == config.total_votes - config.read_quorums + 1
        ).all()

    def test_max_total_votes_tracks_heaviest_item(self):
        votes = np.ones((3, 5), dtype=np.int64)
        votes[1] = [2, 2, 2, 2, 1]
        config = ShardConfig(topology=ring(5), workload=_workload(), votes=votes)
        assert config.max_total_votes == 9

    def test_timebase_derived_from_aggregate_rate(self):
        config = ShardConfig(
            topology=ring(5),
            workload=_workload(),
            warmup_accesses=100.0,
            accesses_per_batch=400.0,
        )
        rate = config.workload.aggregate_rate
        assert config.warmup_time == pytest.approx(100.0 / rate)
        assert config.batch_time == pytest.approx(400.0 / rate)

    def test_with_helpers_replace_fields(self):
        config = ShardConfig(topology=ring(5), workload=_workload())
        assert config.with_seed(9).seed == 9
        requorumed = config.with_read_quorums([1, 2, 3])
        assert requorumed.read_quorums.tolist() == [1, 2, 3]


class TestFromSimulation:
    def test_borrows_network_and_failure_knobs(self):
        topology = ring(7)
        sim = SimulationConfig(
            topology=topology,
            workload=AccessWorkload.uniform(topology.n_sites, 0.5),
            mean_time_to_failure=42.0,
            mean_time_to_repair=6.0,
            warmup_accesses=123.0,
            accesses_per_batch=456.0,
            n_batches=4,
            initial_state="all_up",
            seed=17,
        )
        config = ShardConfig.from_simulation(
            sim, ItemWorkload.uniform(2, topology.n_sites, 0.5)
        )
        assert config.topology is topology
        assert config.mean_time_to_failure == 42.0
        assert config.mean_time_to_repair == 6.0
        assert config.warmup_accesses == 123.0
        assert config.accesses_per_batch == 456.0
        assert config.n_batches == 4
        assert config.initial_state == "all_up"
        assert config.seed == 17

    def test_overrides_win(self):
        topology = ring(5)
        sim = SimulationConfig(
            topology=topology,
            workload=AccessWorkload.uniform(topology.n_sites, 0.5),
            n_batches=4,
        )
        config = ShardConfig.from_simulation(
            sim,
            ItemWorkload.uniform(2, topology.n_sites, 0.5),
            read_quorums=[2, 3],
            n_batches=2,
        )
        assert config.n_batches == 2
        assert config.read_quorums.tolist() == [2, 3]
