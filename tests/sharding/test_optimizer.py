"""Per-shard optimization: grouping algebra and plan invariances."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analytic import closed_form_density
from repro.errors import ShardingError
from repro.quorum.availability import AvailabilityModel
from repro.quorum.optimizer import optimal_read_quorum
from repro.sharding import group_items, optimize_shard_votes, optimize_shards
from repro.topology.generators import ring


class TestGrouping:
    @given(
        st.lists(
            st.sampled_from([0.0, 0.25, 0.5, 0.75, 1.0]),
            min_size=1, max_size=40,
        ),
        st.integers(min_value=1, max_value=4),
    )
    @settings(max_examples=50, deadline=None)
    def test_grouping_is_a_partition(self, alpha_values, n_sites):
        """Every item lands in exactly one group matching its signature."""
        alphas = np.asarray(alpha_values)
        n_items = alphas.shape[0]
        rng = np.random.default_rng(n_items)
        votes = rng.integers(1, 3, size=(n_items, n_sites))
        group_of, groups = group_items(alphas, votes)

        # Union of the groups is the whole id space, with no overlap.
        all_ids = np.concatenate([g.item_indices for g in groups])
        assert sorted(all_ids.tolist()) == list(range(n_items))
        # Membership is consistent both ways and signature-exact.
        for g, group in enumerate(groups):
            assert group.index == g
            for i in group.item_indices:
                assert group_of[i] == g
                assert alphas[i] == group.alpha
                assert tuple(votes[i]) == group.votes
        # Two items share a group iff they share the exact signature.
        for i in range(n_items):
            for j in range(i + 1, n_items):
                same_sig = alphas[i] == alphas[j] and (
                    votes[i] == votes[j]
                ).all()
                assert (group_of[i] == group_of[j]) == same_sig

    def test_groups_ordered_by_first_occurrence(self):
        alphas = np.asarray([0.5, 0.2, 0.5, 0.9, 0.2])
        votes = np.ones((5, 3), dtype=np.int64)
        group_of, groups = group_items(alphas, votes)
        assert [g.alpha for g in groups] == [0.5, 0.2, 0.9]
        assert group_of.tolist() == [0, 1, 0, 2, 1]

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ShardingError, match="votes"):
            group_items(np.asarray([0.5, 0.5]), np.ones((3, 2), dtype=np.int64))


class TestOptimizeShards:
    def test_one_optimization_per_class(self):
        alphas = np.tile(np.asarray([0.2, 0.5, 0.8]), 100)
        plan = optimize_shards(ring(5), alphas, 0.9, 0.85)
        assert plan.n_items == 300
        assert plan.optimizations_run == 3
        # Every member of a class carries its class's assignment.
        for group, best in zip(plan.groups, plan.group_results):
            assert (plan.read_quorums[group.item_indices]
                    == best.read_quorum).all()
            assert (plan.availabilities[group.item_indices]
                    == best.availability).all()

    def test_matches_single_item_optimizer(self):
        """Each class's result is exactly the paper's Figure-1 optimum."""
        row = closed_form_density("ring", 5, 0.9, 0.85)
        model = AvailabilityModel(row, row)
        alphas = np.asarray([0.3, 0.7])
        plan = optimize_shards(ring(5), alphas, density=row)
        for i, alpha in enumerate(alphas):
            best = optimal_read_quorum(model, float(alpha))
            assert plan.read_quorums[i] == best.read_quorum
            assert plan.availabilities[i] == best.availability

    def test_alpha_monotone_read_quorums(self):
        alphas = np.linspace(0.0, 1.0, 11)
        plan = optimize_shards(ring(7), alphas, 0.9, 0.85)
        assert (np.diff(plan.read_quorums) <= 0).all()

    def test_permutation_equivariance(self):
        alphas = np.asarray([0.2, 0.5, 0.8, 0.5, 0.35])
        perm = np.asarray([3, 0, 4, 1, 2])
        plan = optimize_shards(ring(5), alphas, 0.9, 0.85)
        plan_perm = optimize_shards(ring(5), alphas[perm], 0.9, 0.85)
        assert (plan_perm.read_quorums == plan.read_quorums[perm]).all()
        assert (plan_perm.availabilities == plan.availabilities[perm]).all()

    def test_class_duplication_changes_nothing(self):
        alphas = np.asarray([0.2, 0.5, 0.8])
        extended = np.concatenate([alphas, [0.5, 0.5, 0.2]])
        base = optimize_shards(ring(5), alphas, 0.9, 0.85)
        ext = optimize_shards(ring(5), extended, 0.9, 0.85)
        assert ext.optimizations_run == base.optimizations_run
        assert (ext.read_quorums[:3] == base.read_quorums).all()
        assert (ext.availabilities[:3] == base.availabilities).all()
        assert ext.read_quorums[3] == base.read_quorums[1]
        assert ext.read_quorums[5] == base.read_quorums[0]

    def test_monte_carlo_engine_is_seed_deterministic(self):
        alphas = np.asarray([0.3, 0.6])
        kwargs = dict(engine="monte-carlo", n_samples=500, seed=3)
        one = optimize_shards(ring(6), alphas, 0.9, 0.85, **kwargs)
        two = optimize_shards(ring(6), alphas, 0.9, 0.85, **kwargs)
        assert (one.read_quorums == two.read_quorums).all()
        assert (one.availabilities == two.availabilities).all()

    def test_density_with_multiple_vote_classes_rejected(self):
        row = closed_form_density("ring", 4, 0.9, 0.85)
        votes = np.asarray([[1, 1, 1, 1], [2, 1, 1, 1]])
        with pytest.raises(ShardingError, match="vote class"):
            optimize_shards(ring(4), np.asarray([0.5, 0.5]),
                            votes=votes, density=row)

    def test_missing_reliabilities_rejected(self):
        with pytest.raises(ShardingError, match="reliability"):
            optimize_shards(ring(4), np.asarray([0.5]))

    def test_bad_engine_rejected(self):
        with pytest.raises(ShardingError, match="unknown density engine"):
            optimize_shards(ring(4), np.asarray([0.5]), 0.9, 0.85,
                            engine="oracle")

    def test_alpha_out_of_range_rejected(self):
        with pytest.raises(ShardingError, match="alpha"):
            optimize_shards(ring(4), np.asarray([1.5]), 0.9, 0.85)


class TestOptimizeShardVotes:
    @pytest.mark.slow
    def test_one_search_per_alpha_class(self):
        alphas = np.tile(np.asarray([0.25, 0.75]), 50)
        plan = optimize_shard_votes(
            ring(5), alphas, 0.9, 0.85, n_samples=400, seed=1
        )
        assert plan.searches_run == 2
        assert plan.votes.shape == (100, 5)
        for group in plan.groups:
            ids = group.item_indices
            assert (plan.votes[ids] == plan.votes[ids[0]]).all()
            assert (plan.read_quorums[ids] == plan.read_quorums[ids[0]]).all()
