"""Fan-out determinism: workers, transports, and the shm slot layout."""

import numpy as np
import pytest

from repro.errors import ShardingError
from repro.sharding import (
    ItemWorkload,
    ShardConfig,
    ShardSlotLayout,
    ShardedEngine,
    run_sharded,
)
from repro.topology.generators import ring


def _config(n_items=3, n_batches=3, seed=7):
    topology = ring(5)
    workload = ItemWorkload.zipf(
        n_items, topology.n_sites,
        np.linspace(0.2, 0.8, n_items), exponent=1.0,
    )
    return ShardConfig(
        topology=topology,
        workload=workload,
        mean_time_to_failure=30.0,
        mean_time_to_repair=5.0,
        warmup_accesses=50.0,
        accesses_per_batch=600.0,
        n_batches=n_batches,
        seed=seed,
    )


class TestWorkerInvariance:
    @pytest.mark.slow
    @pytest.mark.parametrize("n_workers", [2, 3])
    def test_workers_bitwise_match_serial(self, n_workers):
        config = _config()
        serial = run_sharded(config, engine="vectorized")
        fanned = run_sharded(config, engine="vectorized", n_workers=n_workers)
        assert fanned.bitwise_equal(serial)

    @pytest.mark.slow
    def test_shm_and_pickle_transports_bitwise_match(self):
        config = _config()
        serial_stats, shm_stats, pickle_stats = {}, {}, {}
        serial = run_sharded(config, transport_stats=serial_stats)
        shm = run_sharded(config, n_workers=2, transport="shm",
                          transport_stats=shm_stats)
        pickled = run_sharded(config, n_workers=2, transport="pickle",
                              transport_stats=pickle_stats)
        assert shm.bitwise_equal(serial)
        assert pickled.bitwise_equal(serial)

        assert serial_stats["transport"] == "serial"
        assert serial_stats["pickled_bytes"] == 0
        assert pickle_stats["transport"] == "pickle"
        assert pickle_stats["slot_bytes"] == 0
        # shm may degrade to pickle where /dev/shm is unavailable, but
        # when it holds, the pipe carries only (index, None, slot) stubs.
        if shm_stats["transport"] == "shm":
            assert shm_stats["slot_bytes"] > 0
            assert shm_stats["pickled_bytes"] < shm_stats["slot_bytes"]
            assert shm_stats["pickled_bytes"] < pickle_stats["pickled_bytes"]

    def test_unknown_engine_rejected(self):
        with pytest.raises(ShardingError, match="unknown sharded engine"):
            run_sharded(_config(), engine="telepathy")


class TestSlotLayout:
    def test_pack_unpack_roundtrip_is_bitwise(self):
        config = _config(n_items=4, n_batches=1)
        batch = ShardedEngine(config).run_batch(0)
        layout = ShardSlotLayout(config.n_items, config.max_total_votes + 1)
        view = np.zeros(layout.slot_floats, dtype=np.float64)
        layout.pack(view, batch)
        rebuilt = layout.unpack(view, batch.batch_index)
        assert rebuilt.bitwise_equal(batch)
        assert rebuilt.reads_submitted.dtype == np.int64
        assert rebuilt.writes_granted.dtype == np.int64

    def test_slot_geometry(self):
        layout = ShardSlotLayout(n_items=10, width=6)
        assert layout.density_floats == 60
        assert layout.slot_floats == 3 + 6 * 10 + 2 * 60
        assert layout.slot_bytes == layout.slot_floats * 8


class TestRunResult:
    def test_pooled_counters_sum_batches(self):
        config = _config(n_batches=2)
        result = run_sharded(config)
        for name in ("reads_submitted", "reads_granted",
                     "writes_submitted", "writes_granted"):
            pooled = getattr(result, name)
            summed = sum(getattr(b, name) for b in result.batches)
            assert (pooled == summed).all()
            assert pooled.dtype == np.int64
        assert result.measured_time == pytest.approx(
            sum(b.measured_time for b in result.batches)
        )

    def test_item_availability_is_one_for_idle_items(self):
        # A hotspot workload with ~all mass on item 0 can leave the cold
        # tail idle in a short run; idle items report availability 1.0.
        topology = ring(4)
        workload = ItemWorkload.hotspot(
            3, topology.n_sites, 0.5, hot_items=[0], hot_fraction=0.999
        )
        config = ShardConfig(
            topology=topology,
            workload=workload,
            warmup_accesses=0.0,
            accesses_per_batch=5.0,
            n_batches=1,
            seed=2,
        )
        result = run_sharded(config)
        submitted = result.reads_submitted + result.writes_submitted
        avail = result.item_availability
        assert (avail[submitted == 0] == 1.0).all()
        assert ((avail >= 0.0) & (avail <= 1.0)).all()
