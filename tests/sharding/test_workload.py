"""Item-workload properties: normalization, skew, and stream determinism."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.rng import spawn, stream_for
from repro.sharding import ItemWorkload

n_items_st = st.integers(min_value=1, max_value=50)
n_sites_st = st.integers(min_value=1, max_value=12)
exponents = st.floats(min_value=0.0, max_value=4.0, allow_nan=False)
alphas_st = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)


class TestZipf:
    @given(n_items_st, n_sites_st, exponents, alphas_st)
    @settings(max_examples=50, deadline=None)
    def test_weights_normalize(self, n_items, n_sites, exponent, alpha):
        wl = ItemWorkload.zipf(n_items, n_sites, alpha, exponent=exponent)
        assert wl.item_weights.sum() == pytest.approx(1.0, abs=1e-12)
        assert (wl.item_weights > 0).all()
        # Hot head: weights fall (weakly) with rank.
        assert (np.diff(wl.item_weights) <= 1e-15).all()

    @given(n_items_st, st.floats(min_value=0.0, max_value=3.0),
           st.floats(min_value=0.0, max_value=3.0))
    @settings(max_examples=50, deadline=None)
    def test_head_share_monotone_in_exponent(self, n_items, e1, e2):
        lo, hi = sorted((e1, e2))
        flat = ItemWorkload.zipf(n_items, 3, 0.5, exponent=lo)
        skew = ItemWorkload.zipf(n_items, 3, 0.5, exponent=hi)
        # A larger exponent concentrates more mass on the head item.
        assert skew.item_weights[0] >= flat.item_weights[0] - 1e-12

    def test_negative_exponent_rejected(self):
        with pytest.raises(SimulationError, match="exponent"):
            ItemWorkload.zipf(4, 3, 0.5, exponent=-0.5)

    def test_zero_items_rejected(self):
        with pytest.raises(SimulationError, match="at least one item"):
            ItemWorkload.zipf(0, 3, 0.5)


class TestHotspot:
    def test_hot_items_carry_hot_fraction(self):
        wl = ItemWorkload.hotspot(10, 4, 0.5, hot_items=[0, 3], hot_fraction=0.8)
        assert wl.item_weights[[0, 3]].sum() == pytest.approx(0.8)
        assert wl.item_weights.sum() == pytest.approx(1.0)

    def test_bad_hot_fraction_rejected(self):
        with pytest.raises(SimulationError, match="hot_fraction"):
            ItemWorkload.hotspot(10, 4, 0.5, hot_items=[0], hot_fraction=1.0)

    def test_out_of_range_hot_item_rejected(self):
        with pytest.raises(SimulationError, match="outside"):
            ItemWorkload.hotspot(10, 4, 0.5, hot_items=[10])

    def test_all_hot_rejected(self):
        with pytest.raises(SimulationError, match="cold"):
            ItemWorkload.hotspot(2, 4, 0.5, hot_items=[0, 1])


class TestValidation:
    def test_alpha_out_of_range_rejected(self):
        with pytest.raises(SimulationError, match="alpha"):
            ItemWorkload.uniform(3, 4, [0.2, 1.5, 0.4])

    def test_alpha_vector_length_checked(self):
        with pytest.raises(SimulationError, match="alphas"):
            ItemWorkload.uniform(3, 4, [0.2, 0.4])

    def test_mean_alpha_is_traffic_weighted(self):
        wl = ItemWorkload.hotspot(
            2, 3, [1.0, 0.0], hot_items=[0], hot_fraction=0.75
        )
        assert wl.mean_alpha == pytest.approx(0.75)


class TestSampling:
    @given(st.integers(min_value=0, max_value=2**31 - 1),
           st.integers(min_value=0, max_value=7))
    @settings(max_examples=25, deadline=None)
    def test_deterministic_per_seed_and_batch(self, seed, batch_index):
        """The (seed, batch_index) substream fully determines the draws."""
        wl = ItemWorkload.zipf(5, 4, [0.1, 0.3, 0.5, 0.7, 0.9], exponent=1.0)
        draws = []
        for _ in range(2):
            _, access_rng, _ = spawn(stream_for(seed, batch_index), 3)
            draws.append(wl.sample_epoch(25.0, access_rng))
        assert np.array_equal(draws[0][0], draws[1][0])
        assert np.array_equal(draws[0][1], draws[1][1])

    def test_different_batches_differ(self):
        wl = ItemWorkload.uniform(4, 5, 0.5)
        _, rng_a, _ = spawn(stream_for(0, 0), 3)
        _, rng_b, _ = spawn(stream_for(0, 1), 3)
        a = wl.sample_epoch(50.0, rng_a)
        b = wl.sample_epoch(50.0, rng_b)
        assert not (np.array_equal(a[0], b[0]) and np.array_equal(a[1], b[1]))

    def test_zero_duration_consumes_one_poisson_draw_only(self):
        wl = ItemWorkload.uniform(3, 4, 0.5)
        rng = np.random.default_rng(3)
        reads, writes = wl.sample_epoch(0.0, rng)
        assert reads.sum() == 0 and writes.sum() == 0
        # The short-circuit must leave the stream where AccessWorkload
        # leaves it: exactly one Poisson draw consumed.
        sibling = np.random.default_rng(3)
        sibling.poisson(0.0)
        assert rng.bit_generator.state == sibling.bit_generator.state

    def test_negative_duration_rejected(self):
        wl = ItemWorkload.uniform(3, 4, 0.5)
        with pytest.raises(SimulationError, match="duration"):
            wl.sample_epoch(-1.0, np.random.default_rng(0))

    def test_expected_epoch_matches_rates(self):
        wl = ItemWorkload.zipf(4, 3, [0.2, 0.4, 0.6, 0.8], exponent=1.0)
        reads, writes = wl.expected_epoch(10.0)
        total = wl.aggregate_rate * 10.0
        assert (reads + writes).sum() == pytest.approx(total)
        assert reads.sum() == pytest.approx(total * wl.mean_alpha)
        # Per-item marginals follow the item weights.
        per_item = (reads + writes).sum(axis=1)
        assert per_item == pytest.approx(total * wl.item_weights)
