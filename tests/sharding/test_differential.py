"""Differential battery: the vectorized engine vs the multidb reference.

The sharded engine's contract is *bitwise* equality with the retained
per-item ``multidb`` loop — same counters, same survivability times,
same density tables — for every topology family, every item count, and
every chunk size. These tests sweep that grid; ``repro verify`` runs the
registered ``sharded|multidb-reference`` pair on the quick profile.
"""

import numpy as np
import pytest

from repro.sharding import ItemWorkload, ShardConfig, run_sharded
from repro.topology.generators import bus, fully_connected, ring

FAMILIES = {
    "ring": lambda: ring(7),
    "complete": lambda: fully_connected(5),
    "bus": lambda: bus(7),
}


def _config(topology, n_items, seed=11, **overrides):
    alphas = np.linspace(0.15, 0.9, n_items)
    workload = ItemWorkload.zipf(
        n_items, topology.n_sites, alphas, exponent=1.0
    )
    fields = dict(
        topology=topology,
        workload=workload,
        mean_time_to_failure=30.0,
        mean_time_to_repair=5.0,
        warmup_accesses=100.0,
        accesses_per_batch=1_500.0,
        n_batches=2,
        seed=seed,
    )
    fields.update(overrides)
    return ShardConfig(**fields)


class TestBitwiseAgainstReference:
    @pytest.mark.parametrize("family", sorted(FAMILIES))
    @pytest.mark.parametrize("n_items", [1, 3])
    def test_small_item_counts(self, family, n_items):
        config = _config(FAMILIES[family](), n_items)
        vec = run_sharded(config, engine="vectorized")
        ref = run_sharded(config, engine="reference")
        assert vec.bitwise_equal(ref)

    @pytest.mark.slow
    @pytest.mark.parametrize("family", sorted(FAMILIES))
    def test_sixty_four_items(self, family):
        config = _config(FAMILIES[family](), 64,
                         accesses_per_batch=800.0, n_batches=2)
        vec = run_sharded(config, engine="vectorized")
        ref = run_sharded(config, engine="reference")
        assert vec.bitwise_equal(ref)

    @pytest.mark.parametrize("chunk_size", [1, 2, 3, 64, None])
    def test_every_chunk_size_is_bitwise_identical(self, chunk_size):
        config = _config(ring(7), 5)
        base = run_sharded(config, engine="vectorized")
        chunked = run_sharded(config, engine="vectorized",
                              chunk_size=chunk_size)
        assert chunked.bitwise_equal(base)

    def test_heterogeneous_votes_and_quorums(self):
        topology = ring(6)
        n_items = 4
        rng = np.random.default_rng(5)
        votes = rng.integers(0, 3, size=(n_items, 6))
        votes[:, 0] = np.maximum(votes[:, 0], 1)  # positive row totals
        totals = votes.sum(axis=1)
        quorums = np.maximum(totals // 2, 1)
        config = _config(topology, n_items, votes=votes, read_quorums=quorums)
        vec = run_sharded(config, engine="vectorized")
        ref = run_sharded(config, engine="reference")
        assert vec.bitwise_equal(ref)

    def test_density_tables_account_all_measured_time(self):
        config = _config(ring(7), 3)
        result = run_sharded(config, engine="vectorized")
        # Each epoch adds duration once per (item, site) cell, so every
        # item's histogram row sums to n_sites * measured_time.
        row_sums = result.density_time().sum(axis=1)
        expected = config.topology.n_sites * result.measured_time
        assert row_sums == pytest.approx(
            np.full(config.n_items, expected), rel=1e-9
        )


class TestSingleItemParity:
    """An N=1 sharded run is bitwise the single-item simulation."""

    @pytest.mark.parametrize("family,read_quorum,alpha", [
        ("ring", 2, 0.6),
        ("complete", 2, 0.4),
        ("bus", 3, 0.35),
    ])
    def test_counters_match_single_item_engine(self, family, read_quorum, alpha):
        from repro.protocols.quorum_consensus import QuorumConsensusProtocol
        from repro.quorum.assignment import QuorumAssignment
        from repro.simulation.config import SimulationConfig
        from repro.simulation.engine import SimulationEngine
        from repro.simulation.workload import AccessWorkload

        topology = FAMILIES[family]()
        sim = SimulationConfig(
            topology=topology,
            workload=AccessWorkload.uniform(topology.n_sites, alpha),
            mean_time_to_failure=30.0,
            mean_time_to_repair=5.0,
            warmup_accesses=100.0,
            accesses_per_batch=2_000.0,
            n_batches=2,
            initial_state="stationary",
            seed=5,
        )
        protocol = QuorumConsensusProtocol(
            QuorumAssignment.from_read_quorum(
                topology.total_votes, read_quorum
            )
        )
        single = SimulationEngine(sim, protocol)
        sharded_config = ShardConfig.from_simulation(
            sim,
            ItemWorkload.uniform(1, topology.n_sites, alpha),
            read_quorums=[read_quorum],
        )
        from repro.sharding import ShardedEngine

        sharded = ShardedEngine(sharded_config)
        for batch_index in range(sim.n_batches):
            a = single.run_batch(batch_index)
            s = sharded.run_batch(batch_index)
            assert float(a.reads_submitted) == float(s.reads_submitted[0])
            assert float(a.reads_granted) == float(s.reads_granted[0])
            assert float(a.writes_submitted) == float(s.writes_submitted[0])
            assert float(a.writes_granted) == float(s.writes_granted[0])
            assert a.n_epochs == s.n_epochs
            assert a.n_events == s.n_events
            assert a.measured_time == s.measured_time
            assert a.surv_read == s.surv_read_time[0] / s.measured_time
            assert a.surv_write == s.surv_write_time[0] / s.measured_time
