"""The golden corpus gate: locked reference values must not drift.

If an intentional behavior change fails these tests, regenerate the
corpus with ``python -m repro verify --regenerate-golden`` and review
the resulting diff — the whole point is that reference values only move
inside a reviewed commit.
"""

import json

import pytest

from repro.errors import VerificationError
from repro.verification.golden import (
    CORPUS_VERSION,
    REGENERATE_HINT,
    check_corpus,
    corpus_path,
    generate_corpus,
    load_corpus,
    write_corpus,
)


@pytest.fixture(scope="module")
def corpus_results():
    return check_corpus()


class TestLockedCorpus:
    def test_corpus_is_committed(self):
        assert corpus_path().exists(), (
            f"golden corpus missing from the repository; {REGENERATE_HINT}"
        )

    def test_corpus_loads_and_validates(self):
        corpus = load_corpus()
        assert corpus["version"] == CORPUS_VERSION
        assert len(corpus["entries"]) >= 15

    def test_no_drift_against_current_code(self, corpus_results):
        failures = [r for r in corpus_results if not r.passed]
        report = "\n".join(str(r) + "\n    " + r.detail for r in failures)
        assert not failures, (
            f"golden corpus drift detected:\n{report}"
        )

    def test_covers_paper_figures_and_both_engines(self):
        corpus = load_corpus()
        kinds = {e["kind"] for e in corpus["entries"]}
        assert kinds == {
            "closed-form", "monte-carlo", "simulation", "serving", "sharded",
        }
        names = {e["name"] for e in corpus["entries"]}
        # Sharded entries: one exact-enumeration plan, one seeded MC plan.
        assert "shard-ring-5-enumeration" in names
        assert "shard-ring-9-mc-seed-0" in names
        # Paper-parameter entries for every family at every paper alpha.
        for family in ("ring", "complete", "bus"):
            for alpha in ("0", "0.25", "0.5", "0.75", "1"):
                assert f"paper-{family}-alpha-{alpha}" in names

    def test_drift_metric_reported_per_check(self, corpus_results):
        assert all(r.check == "golden-corpus" for r in corpus_results)
        assert all(r.drift >= 0.0 for r in corpus_results)

    @pytest.mark.slow  # two full corpus generations (MC + simulation)
    def test_generation_is_deterministic(self):
        a = generate_corpus()
        b = generate_corpus()
        assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)


class TestDriftDetection:
    def test_perturbed_metric_fails_with_regeneration_hint(self, tmp_path):
        corpus = load_corpus()
        entry = corpus["entries"][0]
        metric = sorted(entry["metrics"])[0]
        entry["metrics"][metric] += 5e-3
        tampered = tmp_path / "corpus.json"
        tampered.write_text(json.dumps(corpus))
        failures = [r for r in check_corpus(tampered) if not r.passed]
        assert len(failures) == 1
        assert failures[0].case == entry["name"]
        assert failures[0].metric == metric
        assert "--regenerate-golden" in failures[0].detail

    def test_missing_metric_is_structural_failure(self, tmp_path):
        corpus = load_corpus()
        entry = corpus["entries"][0]
        removed = sorted(entry["metrics"])[0]
        del entry["metrics"][removed]
        tampered = tmp_path / "corpus.json"
        tampered.write_text(json.dumps(corpus))
        failures = [r for r in check_corpus(tampered) if not r.passed]
        assert len(failures) == 1
        assert removed in failures[0].detail
        assert "--regenerate-golden" in failures[0].detail

    def test_stale_extra_entry_is_reported(self, tmp_path):
        corpus = load_corpus()
        corpus["entries"].append({
            "name": "removed-experiment",
            "kind": "closed-form",
            "tolerance": 1e-9,
            "metrics": {"A*": 0.5},
        })
        tampered = tmp_path / "corpus.json"
        tampered.write_text(json.dumps(corpus))
        failures = [r for r in check_corpus(tampered) if not r.passed]
        assert [r.case for r in failures] == ["removed-experiment"]
        assert "no longer generated" in failures[0].detail


class TestCorpusIO:
    def test_missing_file_names_the_fix(self, tmp_path):
        with pytest.raises(VerificationError, match="--regenerate-golden"):
            load_corpus(tmp_path / "nope.json")

    def test_invalid_json_names_the_fix(self, tmp_path):
        bad = tmp_path / "corpus.json"
        bad.write_text("{not json")
        with pytest.raises(VerificationError, match="--regenerate-golden"):
            load_corpus(bad)

    def test_wrong_version_rejected(self, tmp_path):
        bad = tmp_path / "corpus.json"
        bad.write_text(json.dumps({"version": 99, "entries": []}))
        with pytest.raises(VerificationError, match="version"):
            load_corpus(bad)

    def test_malformed_entry_rejected(self, tmp_path):
        bad = tmp_path / "corpus.json"
        bad.write_text(json.dumps(
            {"version": CORPUS_VERSION, "entries": [{"name": "x"}]}
        ))
        with pytest.raises(VerificationError, match="malformed"):
            load_corpus(bad)

    def test_write_then_check_round_trips(self, tmp_path):
        path = write_corpus(tmp_path / "fresh" / "corpus.json")
        assert path.exists()
        assert all(r.passed for r in check_corpus(path))
