"""The differential battery: engines agree, and the verifier catches bugs.

The expensive whole-profile run happens once in a module fixture; every
structural assertion reads from it. The deliberate off-by-one injection
is the acceptance demonstration: the same battery that passes on main
must fail when a quorum threshold is shifted by one.
"""

import numpy as np
import pytest

from repro.errors import VerificationError
from repro.quorum.availability import AvailabilityModel
from repro.verification import (
    ENGINE_PAIRS,
    METAMORPHIC_RELATIONS,
    run_case,
    run_profile,
)
from repro.verification.cases import profile_cases
from repro.verification.engines import (
    OffByOneModel,
    closed_form_engine,
    enumeration_engine,
    grant_mask_mismatch,
    montecarlo_engine,
    simulation_engine_run,
    with_injected_bug,
)

pytestmark = pytest.mark.slow  # the module fixture runs full profiles


@pytest.fixture(scope="module")
def quick_report():
    return run_profile("quick", golden=True)


@pytest.fixture(scope="module")
def bug_report():
    return run_profile("quick", bug="quorum-off-by-one")


class TestQuickProfile:
    def test_everything_passes_on_main(self, quick_report):
        assert quick_report.passed, quick_report.summary()

    def test_at_least_four_engine_pairs(self, quick_report):
        assert len(quick_report.engine_pairs) >= 4
        assert set(quick_report.engine_pairs) <= set(ENGINE_PAIRS)

    def test_all_twenty_pairs_exercised(self, quick_report):
        assert quick_report.engine_pairs == ENGINE_PAIRS

    def test_at_least_four_metamorphic_relations(self, quick_report):
        assert len(quick_report.relations) >= 4
        assert set(METAMORPHIC_RELATIONS) <= set(quick_report.relations)

    def test_covers_ring_complete_bus(self, quick_report):
        case_families = {c.family for c in profile_cases("quick")}
        assert case_families == {"ring", "complete", "bus"}
        names = {c.name for c in profile_cases("quick")}
        assert names <= set(quick_report.cases)

    def test_golden_corpus_included(self, quick_report):
        assert any(r.check == "golden-corpus" for r in quick_report.results)

    def test_summary_reports_coverage_and_drift(self, quick_report):
        text = quick_report.summary()
        assert "engine pairs (20)" in text
        assert "metamorphic relations (8)" in text
        assert "highest drift" in text
        assert "0 failed" in text

    def test_worst_drift_is_sorted(self, quick_report):
        drifts = [r.drift for r in quick_report.worst_drift(10)]
        assert drifts == sorted(drifts, reverse=True)


class TestBugInjection:
    def test_off_by_one_fails_the_battery(self, bug_report):
        assert not bug_report.passed
        assert len(bug_report.failures) > 0

    def test_exact_pairs_catch_it(self, bug_report):
        failed_checks = {r.check for r in bug_report.failures}
        assert "closed-form|enumeration" in failed_checks

    def test_metamorphic_relations_catch_it(self, bug_report):
        failed_checks = {r.check for r in bug_report.failures}
        assert "alpha-symmetry" in failed_checks
        assert "alpha-extremes" in failed_checks

    def test_summary_names_the_injection(self, bug_report):
        assert "quorum-off-by-one" in bug_report.summary()

    def test_unknown_bug_is_config_error(self):
        case = profile_cases("quick")[0]
        with pytest.raises(VerificationError, match="unknown bug"):
            run_case(case, bug="quorum-off-by-two")


class TestEngines:
    def test_exact_engines_agree_to_float_roundoff(self):
        case = profile_cases("quick")[0]
        closed = closed_form_engine(case)
        enum = enumeration_engine(case)
        a = closed.availability_estimates(case)
        b = enum.availability_estimates(case)
        for metric in a:
            assert a[metric].value == pytest.approx(b[metric].value, abs=1e-9)
            assert a[metric].exact and b[metric].exact

    def test_montecarlo_is_seed_deterministic(self):
        case = profile_cases("quick")[0]
        one = montecarlo_engine(case).availability_estimates(case)
        two = montecarlo_engine(case).availability_estimates(case)
        assert all(one[m].value == two[m].value for m in one)
        assert all(not one[m].exact or m == "q*" for m in one)

    def test_simulation_requires_sim_quorum(self):
        bus_case = next(c for c in profile_cases("quick")
                        if c.sim_read_quorum is None)
        with pytest.raises(VerificationError, match="sim_read_quorum"):
            simulation_engine_run(bus_case)

    def test_parallel_is_bitwise_identical(self):
        case = next(c for c in profile_cases("quick")
                    if c.sim_read_quorum is not None)
        serial = simulation_engine_run(case, n_workers=1)
        parallel = simulation_engine_run(case, n_workers=2)
        assert serial.batch_acc == parallel.batch_acc
        assert serial.batch_surv == parallel.batch_surv

    def test_audit_reconciles_exactly(self):
        case = next(c for c in profile_cases("quick")
                    if c.sim_read_quorum is not None)
        run = simulation_engine_run(case, with_telemetry=True)
        assert run.audit_acc == pytest.approx(run.pooled_acc, abs=1e-12)

    def test_reassignment_matches_static_grants(self):
        for case in profile_cases("quick"):
            fraction, n_states = grant_mask_mismatch(case)
            assert fraction == 0.0
            assert n_states == case.protocol_states


class TestOffByOneModel:
    def test_shifts_every_quorum(self):
        case = profile_cases("quick")[0]
        healthy = closed_form_engine(case)
        broken = with_injected_bug(healthy, "quorum-off-by-one")
        assert isinstance(broken.model, OffByOneModel)
        for q in range(1, case.total_votes):
            assert broken.model.availability(0.5, q) == pytest.approx(
                healthy.model.availability(0.5, q + 1)
            )

    def test_curve_routes_through_the_bug(self):
        case = profile_cases("quick")[0]
        healthy = closed_form_engine(case).model
        broken = OffByOneModel(healthy.read_density, healthy.write_density)
        assert not np.allclose(broken.curve(0.5), healthy.curve(0.5))

    def test_no_bug_is_identity(self):
        case = profile_cases("quick")[0]
        engine = closed_form_engine(case)
        assert with_injected_bug(engine, None) is engine
