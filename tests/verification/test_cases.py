"""Unit tests for verification case definitions and profiles."""

import numpy as np
import pytest

from repro.errors import VerificationError
from repro.verification.cases import PROFILES, VerificationCase, profile_cases


def _case(**overrides):
    base = dict(
        name="t", family="ring", n_sites=7, p=0.9, r=0.85, alpha=0.5,
        read_quorums=(1, 2),
    )
    base.update(overrides)
    return VerificationCase(**base)


class TestValidation:
    def test_unknown_family(self):
        with pytest.raises(VerificationError, match="family"):
            _case(family="torus")

    def test_quorum_out_of_range(self):
        with pytest.raises(VerificationError, match="read quorum"):
            _case(read_quorums=(0,))
        with pytest.raises(VerificationError, match="read quorum"):
            _case(read_quorums=(8,))

    def test_empty_quorums(self):
        with pytest.raises(VerificationError, match="no read quorums"):
            _case(read_quorums=())

    def test_sim_quorum_must_be_feasible(self):
        with pytest.raises(VerificationError, match="sim_read_quorum"):
            _case(sim_read_quorum=4)  # floor(7/2) == 3
        assert _case(sim_read_quorum=3).sim_read_quorum == 3

    def test_probability_bounds(self):
        with pytest.raises(VerificationError, match="alpha"):
            _case(alpha=1.5)
        with pytest.raises(VerificationError, match="p "):
            _case(p=-0.1)


class TestGeometry:
    def test_bus_adds_zero_vote_hub(self):
        case = _case(family="bus")
        topology = case.topology()
        assert topology.n_sites == 8  # 7 real sites + hub
        assert case.total_votes == 7
        rel = case.site_reliabilities()
        assert rel.shape == (8,)
        assert rel[-1] == case.r  # the hub *is* the bus
        assert (case.link_reliabilities() == 1.0).all()  # perfect spokes

    def test_ring_reliabilities(self):
        case = _case()
        assert (case.site_reliabilities() == 0.9).all()
        assert (case.link_reliabilities() == 0.85).all()

    def test_simulation_config_round_trip(self):
        config = _case(sim_read_quorum=2).simulation_config()
        assert config.accounting == "expected"
        assert config.initial_state == "stationary"
        assert config.warmup_accesses == 0.0
        # MTTF/MTTR encode the stationary reliabilities.
        avail = config.mean_time_to_failure / (
            config.mean_time_to_failure + config.mean_time_to_repair
        )
        assert avail[:7] == pytest.approx(np.full(7, 0.9))

    def test_bus_simulation_masks_perfect_links(self):
        config = _case(family="bus", sim_read_quorum=2).simulation_config()
        assert config.fallible_links is not None
        assert not config.fallible_links.any()


class TestProfiles:
    def test_profiles_listed(self):
        assert PROFILES == ("quick", "full")

    def test_unknown_profile(self):
        with pytest.raises(VerificationError, match="profile"):
            profile_cases("exhaustive")

    def test_quick_covers_all_families(self):
        families = {case.family for case in profile_cases("quick")}
        assert families == {"ring", "complete", "bus"}

    def test_quick_has_simulation_cases(self):
        assert any(c.sim_read_quorum is not None for c in profile_cases("quick"))

    def test_full_is_superset(self):
        quick = {c.name for c in profile_cases("quick")}
        full = {c.name for c in profile_cases("full")}
        assert quick < full

    def test_full_reaches_beyond_enumeration_cap(self):
        from repro.verification.engines import enumeration_engine

        beyond = [c for c in profile_cases("full")
                  if enumeration_engine(c) is None]
        assert beyond, "full profile should include cases only the " \
                       "statistical engines can cross-check"
