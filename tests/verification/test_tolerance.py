"""Unit tests for the CI-aware tolerance layer."""

import math

import pytest

from repro.errors import VerificationError
from repro.verification.tolerance import (
    DEFAULT_SLACK,
    EXACT_FLOOR,
    CheckResult,
    Estimate,
    binomial_half_width,
    compare,
    students_t_estimate,
)


class TestBinomialHalfWidth:
    def test_shrinks_with_samples(self):
        assert binomial_half_width(0.5, 10_000) < binomial_half_width(0.5, 100)

    def test_widest_at_half(self):
        assert binomial_half_width(0.5, 1000) > binomial_half_width(0.05, 1000)

    def test_positive_even_at_extremes(self):
        # The continuity floor keeps degenerate p honest.
        assert binomial_half_width(0.0, 1000) == pytest.approx(1e-3)
        assert binomial_half_width(1.0, 1000) == pytest.approx(1e-3)

    def test_rejects_empty_sample(self):
        with pytest.raises(VerificationError):
            binomial_half_width(0.5, 0)

    def test_matches_normal_formula(self):
        n, p = 4000, 0.3
        expected = 1.959963984540054 * math.sqrt(p * (1 - p) / n) + 1 / n
        assert binomial_half_width(p, n) == pytest.approx(expected)


class TestEstimate:
    def test_exact_flag(self):
        assert Estimate(0.5).exact
        assert not Estimate(0.5, half_width=0.01).exact

    def test_rejects_negative_half_width(self):
        with pytest.raises(VerificationError):
            Estimate(0.5, half_width=-1e-3)

    def test_students_t_adapter(self):
        class FakeStats:
            mean = 0.75
            half_width = 0.02
            n_batches = 6
            name = "ACC"

        est = students_t_estimate(FakeStats())
        assert est.value == 0.75
        assert est.half_width == 0.02
        assert est.n == 6
        assert est.source == "ACC"
        assert students_t_estimate(FakeStats(), source="sim").source == "sim"


class TestCompare:
    def test_exact_pair_passes_within_floor(self):
        r = compare("a|b", "case", "m", Estimate(0.5), Estimate(0.5 + 1e-12))
        assert r.passed
        assert r.tolerance == EXACT_FLOOR

    def test_exact_pair_fails_beyond_floor(self):
        r = compare("a|b", "case", "m", Estimate(0.5), Estimate(0.5001))
        assert not r.passed
        assert r.drift > 1.0

    def test_quadrature_tolerance(self):
        a = Estimate(0.5, half_width=0.03)
        b = Estimate(0.5, half_width=0.04)
        r = compare("a|b", "case", "m", a, b)
        assert r.tolerance == pytest.approx(DEFAULT_SLACK * 0.05 + EXACT_FLOOR)

    def test_statistical_pair_absorbs_noise(self):
        a = Estimate(0.50, half_width=0.02)
        b = Estimate(0.52, half_width=0.02)
        assert compare("a|b", "case", "m", a, b).passed

    def test_bitwise_mode(self):
        same = compare("s|p", "case", "m", Estimate(0.5), Estimate(0.5),
                       abs_floor=0.0)
        assert same.passed and same.drift == 0.0
        diff = compare("s|p", "case", "m", Estimate(0.5), Estimate(0.5 + 1e-16),
                       abs_floor=0.0)
        assert not diff.passed
        assert math.isinf(diff.drift)

    def test_drift_is_fraction_of_band(self):
        a = Estimate(0.5, half_width=0.02)
        b = Estimate(0.55, half_width=0.0)
        r = compare("a|b", "case", "m", a, b)
        assert r.drift == pytest.approx(0.05 / r.tolerance)

    def test_rejects_negative_knobs(self):
        with pytest.raises(VerificationError):
            compare("a|b", "c", "m", Estimate(0.5), Estimate(0.5), abs_floor=-1)
        with pytest.raises(VerificationError):
            compare("a|b", "c", "m", Estimate(0.5), Estimate(0.5), slack=-1)

    def test_str_rendering(self):
        r = compare("a|b", "ring-7", "A(q=2)", Estimate(0.5), Estimate(0.6))
        text = str(r)
        assert "FAIL" in text and "ring-7" in text and "A(q=2)" in text
        assert isinstance(r, CheckResult)
