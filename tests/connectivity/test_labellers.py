"""Property tests: the alternative labellers vs ``component_labels``.

``component_labels`` (scipy csgraph under the hood) is the oracle. The
two alternatives must reproduce its exact output — same compact
first-seen component ids, same ``-1`` down sentinel — over arbitrary
topologies and up/down masks:

- ``components_unionfind`` — the pointer-chasing weighted quick-union
  used as the reference implementation inside the enumeration kernels;
- ``minlabel_component_labels`` — the pointer-jumping min-propagation
  labeller (the algorithm the vectorized enumeration backend descends
  from), whose roots are component-minimum site ids and therefore
  compact to the same first-seen order.

Hypothesis drives random graphs (random edge subsets over the complete
graph, plus the named generator families) with random site/link masks.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.connectivity.components import (
    component_labels,
    components_unionfind,
    minlabel_component_labels,
)
from repro.topology.generators import erdos_renyi, fully_connected, ring, star
from repro.topology.model import Topology

LABELLERS = (components_unionfind, minlabel_component_labels)


@st.composite
def random_topologies(draw):
    n = draw(st.integers(min_value=2, max_value=9))
    all_edges = [(a, b) for a in range(n) for b in range(a + 1, n)]
    edges = draw(
        st.lists(st.sampled_from(all_edges), min_size=1, unique=True)
    )
    return Topology(n, edges, name=f"random-{n}")


@st.composite
def family_topologies(draw):
    family = draw(st.sampled_from(["ring", "complete", "star", "irregular"]))
    n = draw(st.integers(min_value=3, max_value=9))
    if family == "ring":
        return ring(n)
    if family == "complete":
        return fully_connected(n)
    if family == "star":
        return star(n, hub=draw(st.integers(min_value=0, max_value=n - 1)))
    seed = draw(st.integers(min_value=0, max_value=999))
    return erdos_renyi(n, 0.4, seed=seed, ensure_connected=True)


@st.composite
def topology_with_masks(draw, topologies):
    topo = draw(topologies)
    site_up = np.array(
        draw(
            st.lists(
                st.booleans(), min_size=topo.n_sites, max_size=topo.n_sites
            )
        )
    )
    link_up = np.array(
        draw(
            st.lists(
                st.booleans(), min_size=topo.n_links, max_size=topo.n_links
            )
        )
    )
    return topo, site_up, link_up


@settings(max_examples=150, deadline=None)
@given(topology_with_masks(random_topologies()))
def test_labellers_agree_on_random_graphs(case):
    topo, site_up, link_up = case
    oracle = component_labels(topo, site_up, link_up)
    for labeller in LABELLERS:
        np.testing.assert_array_equal(labeller(topo, site_up, link_up), oracle)


@settings(max_examples=100, deadline=None)
@given(topology_with_masks(family_topologies()))
def test_labellers_agree_on_generator_families(case):
    topo, site_up, link_up = case
    oracle = component_labels(topo, site_up, link_up)
    for labeller in LABELLERS:
        np.testing.assert_array_equal(labeller(topo, site_up, link_up), oracle)


@given(topology_with_masks(random_topologies()))
def test_labels_are_compact_first_seen(case):
    # The shared contract all three labellers promise to consumers.
    topo, site_up, link_up = case
    labels = minlabel_component_labels(topo, site_up, link_up)
    up = labels[labels >= 0]
    if up.size:
        # ids are 0..k-1 and first occurrences appear in increasing order
        firsts = [int(up[np.argmax(up == c)]) for c in range(up.max() + 1)]
        assert firsts == sorted(firsts)
        assert set(up.tolist()) == set(range(up.max() + 1))
    assert ((labels == -1) == ~site_up).all()


def test_all_sites_down():
    topo = ring(5)
    down = np.zeros(5, dtype=bool)
    links = np.ones(topo.n_links, dtype=bool)
    oracle = component_labels(topo, down, links)
    for labeller in LABELLERS:
        np.testing.assert_array_equal(labeller(topo, down, links), oracle)


def test_all_links_down_each_site_is_its_own_component():
    topo = fully_connected(6)
    sites = np.ones(6, dtype=bool)
    links = np.zeros(topo.n_links, dtype=bool)
    for labeller in LABELLERS:
        np.testing.assert_array_equal(
            labeller(topo, sites, links), np.arange(6)
        )
