"""Unit tests for component labelling and vote totals."""

import numpy as np
import pytest

from repro.connectivity.components import (
    DOWN_LABEL,
    component_labels,
    component_members,
    component_vote_totals,
    components_unionfind,
    votes_in_component_of,
)
from repro.errors import TopologyError
from repro.topology.generators import fully_connected, ring
from repro.topology.model import Topology


def all_up(topo):
    return np.ones(topo.n_sites, bool), np.ones(topo.n_links, bool)


class TestComponentLabels:
    def test_everything_up_single_component(self):
        topo = ring(6)
        labels = component_labels(topo, *all_up(topo))
        assert set(labels.tolist()) == {0}

    def test_down_site_gets_down_label(self):
        topo = ring(5)
        site_up, link_up = all_up(topo)
        site_up[2] = False
        labels = component_labels(topo, site_up, link_up)
        assert labels[2] == DOWN_LABEL
        # Remaining sites 3,4,0,1 still connected around the ring.
        assert len({labels[i] for i in (0, 1, 3, 4)}) == 1

    def test_link_failures_partition_ring(self):
        topo = ring(6)
        site_up, link_up = all_up(topo)
        link_up[topo.link_id(0, 1)] = False
        link_up[topo.link_id(3, 4)] = False
        labels = component_labels(topo, site_up, link_up)
        assert labels[1] == labels[2] == labels[3]
        assert labels[4] == labels[5] == labels[0]
        assert labels[1] != labels[4]

    def test_down_endpoint_disables_link(self):
        topo = Topology(3, [(0, 1), (1, 2)])
        site_up = np.array([True, False, True])
        link_up = np.ones(2, bool)
        labels = component_labels(topo, site_up, link_up)
        assert labels[0] != labels[2]

    def test_labels_are_consecutive_from_zero(self):
        topo = ring(8)
        site_up, link_up = all_up(topo)
        link_up[:] = False
        labels = component_labels(topo, site_up, link_up)
        assert sorted(set(labels.tolist())) == list(range(8))

    def test_all_sites_down(self):
        topo = ring(4)
        labels = component_labels(topo, np.zeros(4, bool), np.ones(4, bool))
        assert (labels == DOWN_LABEL).all()

    def test_shape_validation(self):
        topo = ring(4)
        with pytest.raises(TopologyError):
            component_labels(topo, np.ones(3, bool), np.ones(4, bool))
        with pytest.raises(TopologyError):
            component_labels(topo, np.ones(4, bool), np.ones(3, bool))


class TestBackendAgreement:
    @pytest.mark.parametrize("seed", range(8))
    def test_unionfind_matches_csgraph_on_random_states(self, seed):
        rng = np.random.default_rng(seed)
        topo = fully_connected(9)
        site_up = rng.random(topo.n_sites) < 0.7
        link_up = rng.random(topo.n_links) < 0.5
        a = component_labels(topo, site_up, link_up)
        b = components_unionfind(topo, site_up, link_up)
        # Labels must induce the same partition (ids may differ).
        assert (a == DOWN_LABEL).tolist() == (b == DOWN_LABEL).tolist()
        for i in range(topo.n_sites):
            for j in range(topo.n_sites):
                if a[i] >= 0 and a[j] >= 0:
                    assert (a[i] == a[j]) == (b[i] == b[j])


class TestVoteTotals:
    def test_totals_per_component(self):
        topo = Topology(4, [(0, 1), (2, 3)], votes=[1, 2, 3, 4])
        labels = component_labels(topo, *all_up(topo))
        totals = component_vote_totals(labels, topo.votes)
        assert totals[0] == totals[1] == 3
        assert totals[2] == totals[3] == 7

    def test_down_site_zero_votes(self):
        topo = ring(4)
        site_up, link_up = all_up(topo)
        site_up[1] = False
        labels = component_labels(topo, site_up, link_up)
        totals = component_vote_totals(labels, topo.votes)
        assert totals[1] == 0
        assert totals[0] == 3

    def test_shape_mismatch(self):
        with pytest.raises(TopologyError):
            component_vote_totals(np.array([0, 0]), np.array([1, 1, 1]))

    def test_votes_in_component_of(self):
        topo = ring(5)
        site_up, link_up = all_up(topo)
        assert votes_in_component_of(topo, 0, site_up, link_up) == 5
        site_up[0] = False
        assert votes_in_component_of(topo, 0, site_up, link_up) == 0

    def test_votes_in_component_unknown_site(self):
        topo = ring(5)
        with pytest.raises(TopologyError):
            votes_in_component_of(topo, 9, *all_up(topo))


class TestComponentMembers:
    def test_groups_match_labels(self):
        topo = ring(6)
        site_up, link_up = all_up(topo)
        link_up[topo.link_id(0, 1)] = False
        link_up[topo.link_id(2, 3)] = False
        labels = component_labels(topo, site_up, link_up)
        groups = component_members(labels)
        rebuilt = np.full(6, -2)
        for c, members in enumerate(groups):
            rebuilt[members] = c
        assert (rebuilt == labels).all()

    def test_down_sites_excluded(self):
        topo = ring(4)
        site_up = np.array([True, False, True, True])
        labels = component_labels(topo, site_up, np.ones(4, bool))
        groups = component_members(labels)
        assert all(1 not in g for g in groups)
        assert sum(len(g) for g in groups) == 3


class TestBatchedLabels:
    """batched_component_labels / batched_vote_totals vs the scalar path."""

    @pytest.mark.parametrize("seed", range(5))
    def test_batched_labels_match_scalar_partition(self, seed):
        from repro.connectivity.components import batched_component_labels

        rng = np.random.default_rng(seed)
        topo = ring(8)
        site_masks = rng.random((12, topo.n_sites)) < 0.7
        link_masks = rng.random((12, topo.n_links)) < 0.6
        batched = batched_component_labels(topo, site_masks, link_masks)
        for k in range(12):
            scalar = component_labels(topo, site_masks[k], link_masks[k])
            assert (batched[k] == DOWN_LABEL).tolist() == (scalar == DOWN_LABEL).tolist()
            up = scalar >= 0
            for i in np.nonzero(up)[0]:
                for j in np.nonzero(up)[0]:
                    assert (batched[k][i] == batched[k][j]) == (scalar[i] == scalar[j])

    @pytest.mark.parametrize("seed", range(5))
    def test_fused_totals_match_scalar_totals(self, seed):
        from repro.connectivity.components import batched_vote_totals

        rng = np.random.default_rng(seed)
        topo = Topology(6, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)],
                        votes=[1, 2, 1, 3, 1, 2])
        site_masks = rng.random((10, topo.n_sites)) < 0.75
        link_masks = rng.random((10, topo.n_links)) < 0.65
        totals = batched_vote_totals(topo, site_masks, link_masks)
        for k in range(10):
            labels = component_labels(topo, site_masks[k], link_masks[k])
            expected = component_vote_totals(labels, topo.votes)
            np.testing.assert_array_equal(totals[k], expected)

    def test_batched_shape_validation(self):
        from repro.connectivity.components import (
            batched_component_labels,
            batched_vote_totals,
        )

        topo = ring(5)
        good_sites = np.ones((3, 5), bool)
        with pytest.raises(TopologyError):
            batched_component_labels(topo, good_sites, np.ones((2, 5), bool))
        with pytest.raises(TopologyError):
            batched_vote_totals(topo, np.ones((3, 4), bool), np.ones((3, 5), bool))
