"""Property tests: incremental ComponentTracker vs the full-relabel oracle.

The incremental path (DESIGN.md §8) applies one site/link flip at a time
— merge on recovery, local relabel on failure — with the full
``component_labels`` recompute kept as the correctness oracle. These
tests drive ComponentTracker through arbitrary random fail/repair
sequences on ring, complete, and irregular topologies and require exact
agreement with an oracle tracker that is forced to recompute from
scratch at every step (its journal never bridges the gap because it is
constructed fresh each time).
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.connectivity.components import component_labels, component_vote_totals
from repro.connectivity.dynamic import ComponentTracker, NetworkState
from repro.topology.generators import erdos_renyi, fully_connected, ring

TOPOLOGIES = {
    "ring": lambda: ring(9),
    "complete": lambda: fully_connected(7),
    "irregular": lambda: erdos_renyi(10, 0.35, seed=5, ensure_connected=True),
}


def _assert_matches_oracle(tracker: ComponentTracker, state: NetworkState) -> None:
    """Labels must match the full recompute up to a component bijection."""
    expected = component_labels(state.topology, state.site_up, state.link_up)
    actual = tracker.labels
    assert actual.shape == expected.shape
    # Down sites agree exactly (-1); up sites agree up to renaming.
    down = expected < 0
    assert (actual[down] == -1).all()
    mapping = {}
    for mine, theirs in zip(actual[~down], expected[~down]):
        assert mapping.setdefault(mine, theirs) == theirs
    assert len(set(mapping.values())) == len(mapping)
    # Labels stay consecutive 0..k-1 — protocol consumers iterate
    # range(max+1) and crash on gaps.
    up_labels = actual[~down]
    if up_labels.size:
        assert sorted(set(up_labels)) == list(range(up_labels.max() + 1))
    expected_votes = component_vote_totals(expected, state.topology.votes)
    assert np.array_equal(tracker.vote_totals, expected_votes)


@st.composite
def event_sequences(draw):
    topo_name = draw(st.sampled_from(sorted(TOPOLOGIES)))
    topology = TOPOLOGIES[topo_name]()
    n_events = draw(st.integers(1, 60))
    events = [
        (
            draw(st.sampled_from(["site", "link"])),
            draw(st.integers(0, 10_000)),
            draw(st.booleans()),
        )
        for _ in range(n_events)
    ]
    return topology, events


def _apply(state, topology, event):
    kind, raw_index, up = event
    if kind == "site":
        state.set_site(raw_index % topology.n_sites, up)
    else:
        state.set_link(raw_index % topology.n_links, up)


@settings(max_examples=60, deadline=None)
@given(event_sequences())
def test_incremental_tracker_matches_full_relabel(case):
    topology, events = case
    state = NetworkState(topology)
    tracker = ComponentTracker(state)
    tracker.labels  # prime the cache so subsequent refreshes are incremental
    for event in events:
        _apply(state, topology, event)
        _assert_matches_oracle(tracker, state)
    assert tracker.n_incremental > 0 or len(events) == 0


@settings(max_examples=60, deadline=None)
@given(event_sequences(), st.integers(2, 4))
def test_incremental_tracker_matches_oracle_with_deferred_refresh(case, stride):
    """Multiple journalled changes replayed in ONE refresh stay correct.

    The one-event-per-refresh test above can never catch replay-staleness
    bugs: with several pending entries, the state's mask arrays already
    reflect *later* entries while the earlier ones are being applied, so
    incremental ops must gate on the tracker's own labels. (A missed gate
    here once let a merge run through a detached endpoint's ``-1`` label,
    resurrecting every down site into one corrupt component.)
    """
    topology, events = case
    state = NetworkState(topology)
    tracker = ComponentTracker(state)
    tracker.labels
    for start in range(0, len(events), stride):
        for event in events[start:start + stride]:
            _apply(state, topology, event)
        # One refresh now replays the whole slice of journal entries.
        _assert_matches_oracle(tracker, state)
    assert tracker.n_incremental > 0 or len(events) == 0


def test_adjacent_recoveries_in_one_refresh_do_not_resurrect_down_sites():
    """Regression: two adjacent sites coming up inside a single refresh.

    While attaching the first, the state mask already shows the second as
    up but its tracker label is still -1; merging through that label
    matches every down site. Site 1 must stay down afterwards.
    """
    topology = ring(5)
    state = NetworkState(topology)
    tracker = ComponentTracker(state)
    tracker.labels
    for site in (1, 3, 4):
        state.set_site(site, False)
    _assert_matches_oracle(tracker, state)
    state.set_site(3, True)
    state.set_site(4, True)  # no tracker read in between: one refresh, 2 entries
    assert tracker.labels[1] == -1
    assert tracker.vote_totals[1] == 0
    _assert_matches_oracle(tracker, state)


@settings(max_examples=25, deadline=None)
@given(event_sequences())
def test_self_audit_never_fires_on_correct_tracker(case):
    """The built-in audit (oracle cross-check) stays silent on every step."""
    topology, events = case
    state = NetworkState(topology)
    tracker = ComponentTracker(state, audit_interval=1)
    tracker.labels
    for event in events:
        _apply(state, topology, event)
        tracker.labels  # raises TopologyError if the audit finds divergence


@settings(max_examples=20, deadline=None)
@given(
    st.lists(st.tuples(st.integers(0, 10_000), st.booleans()), min_size=1,
             max_size=40),
    st.sampled_from(sorted(TOPOLOGIES)),
)
def test_burst_changes_fall_back_to_full_recompute(flips, topo_name):
    """Many flips between reads exceed INCREMENTAL_LIMIT → full recompute."""
    topology = TOPOLOGIES[topo_name]()
    state = NetworkState(topology)
    tracker = ComponentTracker(state)
    tracker.labels
    for raw_index, up in flips:
        state.set_site(raw_index % topology.n_sites, up)
    _assert_matches_oracle(tracker, state)
