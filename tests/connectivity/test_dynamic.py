"""Unit tests for NetworkState and ComponentTracker."""

import numpy as np
import pytest

from repro.connectivity.dynamic import ComponentTracker, NetworkState
from repro.errors import TopologyError
from repro.topology.generators import ring, ring_with_chords
from repro.topology.model import Topology


class TestNetworkState:
    def test_initial_all_up(self):
        state = NetworkState(ring(5))
        assert state.all_up()
        assert state.n_up_sites() == 5

    def test_mutations_bump_version(self):
        state = NetworkState(ring(5))
        v0 = state.version
        state.fail_site(2)
        state.fail_link(0)
        assert state.version == v0 + 2
        assert not state.all_up()

    def test_repair_restores(self):
        state = NetworkState(ring(5))
        state.fail_site(1)
        state.repair_site(1)
        assert state.all_up()

    def test_bad_indices(self):
        state = NetworkState(ring(4))
        with pytest.raises(TopologyError):
            state.fail_site(4)
        with pytest.raises(TopologyError):
            state.fail_link(99)

    def test_explicit_masks_validated(self):
        with pytest.raises(TopologyError):
            NetworkState(ring(4), site_up=np.ones(3, bool))
        with pytest.raises(TopologyError):
            NetworkState(ring(4), link_up=np.ones(3, bool))

    def test_copy_is_independent(self):
        state = NetworkState(ring(4))
        clone = state.copy()
        clone.fail_site(0)
        assert state.all_up()
        assert not clone.all_up()


class TestComponentTracker:
    def test_vote_totals_follow_mutations(self):
        topo = ring(6)
        state = NetworkState(topo)
        tracker = ComponentTracker(state)
        assert (tracker.vote_totals == 6).all()
        state.fail_link(topo.link_id(0, 1))
        state.fail_link(topo.link_id(2, 3))
        assert tracker.votes_at(1) == 2
        assert tracker.votes_at(4) == 4

    def test_cache_reused_between_changes(self):
        state = NetworkState(ring(5))
        tracker = ComponentTracker(state)
        first = tracker.vote_totals
        second = tracker.vote_totals
        assert first is second  # same array object: cache hit

    def test_cache_invalidated_on_change(self):
        state = NetworkState(ring(5))
        tracker = ComponentTracker(state)
        before = tracker.vote_totals
        state.fail_site(0)
        after = tracker.vote_totals
        assert before is not after

    def test_max_component_votes(self):
        topo = ring(6)
        state = NetworkState(topo)
        tracker = ComponentTracker(state)
        state.fail_site(0)
        assert tracker.max_component_votes() == 5
        for s in range(6):
            state.set_site(s, False)
        assert tracker.max_component_votes() == 0

    def test_component_of_and_same_component(self):
        topo = ring(6)
        state = NetworkState(topo)
        tracker = ComponentTracker(state)
        state.fail_site(0)
        state.fail_site(3)
        assert tracker.same_component(1, 2)
        assert not tracker.same_component(2, 4)
        assert set(tracker.component_of(1).tolist()) == {1, 2}
        assert tracker.component_of(0).size == 0

    def test_weighted_votes(self):
        topo = Topology(4, [(0, 1), (1, 2), (2, 3)], votes=[5, 1, 1, 3])
        state = NetworkState(topo)
        tracker = ComponentTracker(state)
        state.fail_link(topo.link_id(1, 2))
        assert tracker.votes_at(0) == 6
        assert tracker.votes_at(3) == 4

    def test_chorded_ring_resilience(self):
        """A chord keeps the ring whole when one ring link dies."""
        topo = ring_with_chords(10, 1)
        state = NetworkState(topo)
        tracker = ComponentTracker(state)
        state.fail_link(topo.link_id(0, 1))
        assert tracker.max_component_votes() == 10
