"""Cross-process span re-parenting: one tree, any worker count.

The tentpole determinism contract (DESIGN.md §12): span ids derive from
``(seed, scope, index, ordinal)``, so the exported span tree — hashed by
:func:`span_tree_digest`, which sees only ``(id, parent, name)`` — is
bitwise identical whether batches run serially or fan out over a pool.
Tracing must also be purely observational: enabling it cannot change a
single result bit.
"""

import pytest

from repro.experiments.paper import TEST_SCALE
from repro.protocols.majority import MajorityConsensusProtocol
from repro.simulation.runner import run_simulation
from repro.telemetry.recorder import Telemetry
from repro.telemetry.spans import SpanRecord
from repro.tracing.context import SCOPE_RUN, TraceContext
from repro.tracing.export import span_tree_digest

pytestmark = pytest.mark.slow


def _config(seed=0):
    return TEST_SCALE.config(2, alpha=0.5, seed=seed)


def _protocol(config):
    return MajorityConsensusProtocol(config.topology.total_votes)


def _records(result):
    return [SpanRecord.from_dict(s) for s in result.telemetry.spans]


@pytest.fixture(scope="module")
def traced_serial_and_parallel():
    config = _config()
    serial = run_simulation(config, _protocol(config),
                            telemetry=Telemetry(), n_workers=1)
    parallel = run_simulation(config, _protocol(config),
                              telemetry=Telemetry(), n_workers=4)
    return serial, parallel


class TestTreeDeterminism:
    def test_digest_identical_across_worker_counts(
            self, traced_serial_and_parallel):
        serial, parallel = traced_serial_and_parallel
        assert (span_tree_digest(_records(serial))
                == span_tree_digest(_records(parallel)))

    def test_single_root_spanning_the_fanout(
            self, traced_serial_and_parallel):
        _, parallel = traced_serial_and_parallel
        records = _records(parallel)
        by_id = {r.span_id: r for r in records}
        roots = [r for r in records
                 if r.parent_id is None or r.parent_id not in by_id]
        assert len(roots) == 1
        assert roots[0].name == "run.batches"
        assert roots[0].span_id == TraceContext(0, SCOPE_RUN, 0).span_id(0)

    def test_worker_spans_reparent_under_dispatcher(
            self, traced_serial_and_parallel):
        _, parallel = traced_serial_and_parallel
        records = _records(parallel)
        root = next(r for r in records if r.name == "run.batches")
        batch_spans = [r for r in records if r.name == "engine.run_batch"]
        assert len(batch_spans) == len(parallel.batches)
        assert all(r.parent_id == root.span_id for r in batch_spans)

    def test_digest_depends_on_seed(self):
        config = _config(seed=1)
        other = run_simulation(config, _protocol(config),
                               telemetry=Telemetry(), n_workers=1)
        base = _config(seed=0)
        baseline = run_simulation(base, _protocol(base),
                                  telemetry=Telemetry(), n_workers=1)
        assert (span_tree_digest(_records(other))
                != span_tree_digest(_records(baseline)))


class TestTracingIsObservational:
    def test_results_bitwise_identical_tracing_on_vs_off(self):
        config = _config()
        off = run_simulation(config, _protocol(config), n_workers=1)
        on = run_simulation(config, _protocol(config),
                            telemetry=Telemetry(), n_workers=1)
        assert off.availability.values == on.availability.values
        assert off.surv_read.values == on.surv_read.values
        assert off.surv_write.values == on.surv_write.values

    def test_serve_digest_identical_with_profiling(self):
        from repro.quorum.assignment import QuorumAssignment
        from repro.serving import ServeConfig, run_serve, serving_schedule
        from repro.simulation.workload import AccessWorkload
        from repro.topology.generators import ring_with_chords

        def build(profile):
            topology = ring_with_chords(9, 1)
            config = ServeConfig(
                topology=topology,
                workload=AccessWorkload.uniform(9, 0.7),
                initial_assignment=QuorumAssignment.from_read_quorum(
                    topology.total_votes, 1
                ),
                n_requests=2_000,
                n_clients=8 if profile else 32,
                seed=5,
                scenario="correlated",
                profile_phases=profile,
            )
            config.fault_schedule = serving_schedule(
                "correlated", topology, config.horizon)
            return config

        plain = run_serve(build(False))
        profiled = run_serve(build(True))
        # Different client concurrency AND profiling on vs off: outcomes
        # must not move by a bit.
        assert plain.digest() == profiled.digest()
