"""Phase profiler: accumulation, merging, and the null-object contract."""

import pytest

from repro.telemetry.recorder import NullTelemetry, Telemetry
from repro.telemetry.snapshot import TelemetrySnapshot
from repro.tracing.profiler import (
    NULL_PROFILER,
    NullProfiler,
    PhaseProfiler,
    merge_phase_lists,
)


class TestPhaseProfiler:
    def test_accumulates_count_wall_cpu(self):
        profiler = PhaseProfiler()
        for _ in range(3):
            with profiler.phase("work"):
                sum(range(1000))
        [entry] = profiler.snapshot()
        assert entry["name"] == "work"
        assert entry["count"] == 3
        assert entry["wall"] >= 0.0
        assert entry["cpu"] >= 0.0

    def test_snapshot_sorted_by_name(self):
        profiler = PhaseProfiler()
        for name in ("z", "a", "m"):
            with profiler.phase(name):
                pass
        assert [e["name"] for e in profiler.snapshot()] == ["a", "m", "z"]

    def test_add_direct(self):
        profiler = PhaseProfiler()
        profiler.add("bulk", wall=1.5, cpu=1.0, count=10)
        profiler.add("bulk", wall=0.5, cpu=0.25, count=2)
        [entry] = profiler.snapshot()
        assert entry["count"] == 12
        assert entry["wall"] == pytest.approx(2.0)
        assert entry["cpu"] == pytest.approx(1.25)

    def test_reset(self):
        profiler = PhaseProfiler()
        with profiler.phase("gone"):
            pass
        profiler.reset()
        assert profiler.snapshot() == []
        assert len(profiler) == 0

    def test_exception_still_accounted(self):
        profiler = PhaseProfiler()
        with pytest.raises(ValueError):
            with profiler.phase("boom"):
                raise ValueError("x")
        [entry] = profiler.snapshot()
        assert entry["count"] == 1


class TestNullProfiler:
    def test_disabled_and_inert(self):
        assert not NULL_PROFILER.enabled
        assert PhaseProfiler().enabled
        with NULL_PROFILER.phase("ignored"):
            pass
        assert NULL_PROFILER.snapshot() == []

    def test_shared_phase_object(self):
        # The disabled path must not allocate per call.
        assert (NULL_PROFILER.phase("a") is NULL_PROFILER.phase("b"))

    def test_null_telemetry_exposes_null_profiler(self):
        assert isinstance(NullTelemetry().phases, NullProfiler)
        assert isinstance(Telemetry().phases, PhaseProfiler)


class TestMergePhaseLists:
    def test_sums_by_name(self):
        a = [{"name": "x", "count": 2, "wall": 1.0, "cpu": 0.5}]
        b = [
            {"name": "x", "count": 3, "wall": 0.5, "cpu": 0.25},
            {"name": "y", "count": 1, "wall": 2.0, "cpu": 2.0},
        ]
        merged = merge_phase_lists([a, b])
        assert [e["name"] for e in merged] == ["x", "y"]
        x, y = merged
        assert x["count"] == 5
        assert x["wall"] == pytest.approx(1.5)
        assert x["cpu"] == pytest.approx(0.75)
        assert y["count"] == 1

    def test_empty(self):
        assert merge_phase_lists([]) == []
        assert merge_phase_lists([[], []]) == []


class TestSnapshotRoundTrip:
    def test_phases_survive_jsonl_round_trip(self):
        tel = Telemetry()
        with tel.phases.phase("enum.label"):
            pass
        tel.phases.add("mc.sample", wall=0.25, cpu=0.2, count=4)
        snapshot = tel.snapshot()
        records = list(snapshot.to_records())
        rebuilt = TelemetrySnapshot.from_records(records)
        assert rebuilt.phases == snapshot.phases
        assert {e["name"] for e in rebuilt.phases} == {"enum.label", "mc.sample"}

    def test_merged_snapshots_sum_phases(self):
        snapshots = []
        for wall in (1.0, 2.0):
            tel = Telemetry()
            tel.phases.add("serve.attempt", wall=wall, cpu=wall / 2, count=1)
            snapshots.append(tel.snapshot())
        merged = TelemetrySnapshot.merged(snapshots)
        [entry] = merged.phases
        assert entry["count"] == 2
        assert entry["wall"] == pytest.approx(3.0)
