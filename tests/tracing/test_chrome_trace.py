"""Chrome-trace export round-trip and span-tree analysis helpers."""

import importlib.util
import json
from pathlib import Path

import pytest

from repro.telemetry.recorder import Telemetry
from repro.telemetry.spans import SpanRecord
from repro.tracing.export import (
    critical_path,
    span_tree_digest,
    to_chrome_trace,
    top_phases,
    write_chrome_trace,
    write_span_jsonl,
)

_SCRIPTS = Path(__file__).resolve().parents[2] / "scripts"


def _load_script(name):
    spec = importlib.util.spec_from_file_location(name, _SCRIPTS / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.fixture(scope="module")
def nested_records():
    """A deterministic three-level tree recorded through a live collector."""
    tel = Telemetry()
    with tel.span("root", kind="demo"):
        with tel.span("child.a"):
            with tel.span("leaf"):
                sum(range(50_000))
        with tel.span("child.b"):
            pass
    return list(tel.spans.records)


class TestChromeTrace:
    def test_valid_json_and_shape(self, nested_records):
        trace = to_chrome_trace(nested_records,
                                phases=[{"name": "p", "count": 1,
                                         "wall": 0.1, "cpu": 0.1}],
                                meta={"target": "demo"})
        payload = json.loads(json.dumps(trace))
        assert payload["displayTimeUnit"] == "ms"
        assert payload["otherData"]["target"] == "demo"
        assert payload["otherData"]["phases"][0]["name"] == "p"
        kinds = {event["ph"] for event in payload["traceEvents"]}
        assert kinds == {"M", "X"}

    def test_monotone_ts_per_lane(self, nested_records):
        trace = to_chrome_trace(nested_records)
        by_tid = {}
        for event in trace["traceEvents"]:
            if event["ph"] == "X":
                by_tid.setdefault(event["tid"], []).append(event["ts"])
        assert by_tid
        for stamps in by_tid.values():
            assert stamps == sorted(stamps)

    def test_children_nest_inside_parents(self, nested_records):
        trace = to_chrome_trace(nested_records)
        spans = {e["args"]["span_id"]: e
                 for e in trace["traceEvents"] if e["ph"] == "X"}
        nested = 0
        for event in spans.values():
            parent = spans.get(event["args"]["parent_id"])
            if parent is None:
                continue
            nested += 1
            assert event["ts"] >= parent["ts"] - 0.5
            assert (event["ts"] + event["dur"]
                    <= parent["ts"] + parent["dur"] + 0.5)
            assert event["tid"] == parent["tid"]
        assert nested == 3  # child.a, child.b, leaf

    def test_worker_epoch_subtree_gets_its_own_lane(self, nested_records,
                                                    tmp_path):
        # A re-parented worker subtree is timed against the worker's
        # clock epoch: its start can precede the dispatcher parent's.
        # It must head its own tid lane (and still validate) instead of
        # mis-nesting on the dispatcher's timeline.
        root = next(r for r in nested_records if r.name == "root")
        skewed = list(nested_records) + [
            SpanRecord(99, root.span_id, "worker.batch", {},
                       root.start + 10_000.0, 0.5, 0.5),
            SpanRecord(100, 99, "worker.inner", {},
                       root.start + 10_000.1, 0.1, 0.1),
        ]
        trace = to_chrome_trace(skewed)
        by_span = {e["args"]["span_id"]: e
                   for e in trace["traceEvents"] if e["ph"] == "X"}
        assert by_span[99]["tid"] != by_span[root.span_id]["tid"]
        assert by_span[100]["tid"] == by_span[99]["tid"]  # nests in 99

        path = tmp_path / "skewed.trace.json"
        write_chrome_trace(path, skewed)
        validate_trace = _load_script("validate_trace").validate_trace
        assert validate_trace(path) == []

    def test_every_lane_named(self, nested_records):
        trace = to_chrome_trace(nested_records)
        named = {e["tid"] for e in trace["traceEvents"]
                 if e["ph"] == "M" and e["name"] == "thread_name"}
        used = {e["tid"] for e in trace["traceEvents"] if e["ph"] == "X"}
        assert used <= named

    def test_written_file_passes_the_ci_validator(self, nested_records,
                                                  tmp_path):
        path = tmp_path / "demo.trace.json"
        write_chrome_trace(path, nested_records,
                           phases=[{"name": "p", "count": 1,
                                    "wall": 0.1, "cpu": 0.1}])
        validate_trace = _load_script("validate_trace").validate_trace
        assert validate_trace(path) == []

    def test_validator_flags_broken_traces(self, nested_records, tmp_path):
        validate_trace = _load_script("validate_trace").validate_trace
        assert validate_trace(tmp_path / "missing.json")  # not found

        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        assert any("invalid JSON" in p for p in validate_trace(bad))

        empty = tmp_path / "empty.json"
        empty.write_text(json.dumps({"traceEvents": []}))
        assert any("missing or empty" in p for p in validate_trace(empty))

        # A child escaping its parent's interval must be caught.
        trace = to_chrome_trace(nested_records)
        for event in trace["traceEvents"]:
            if event["ph"] == "X" and event["args"]["parent_id"] is not None:
                event["dur"] = 1e12
                break
        escaped = tmp_path / "escaped.json"
        escaped.write_text(json.dumps(trace))
        assert any("escapes parent" in p for p in validate_trace(escaped))


class TestSpanJsonl:
    def test_round_trip(self, nested_records, tmp_path):
        path = tmp_path / "spans.jsonl"
        with path.open("w") as handle:
            write_span_jsonl(handle, nested_records)
        rebuilt = [SpanRecord.from_dict(json.loads(line))
                   for line in path.read_text().splitlines()]
        assert rebuilt == nested_records


class TestAnalysis:
    def test_digest_ignores_timings(self, nested_records):
        shifted = [
            SpanRecord(r.span_id, r.parent_id, r.name, r.attrs,
                       r.start + 5.0, r.wall * 2.0, r.cpu)
            for r in nested_records
        ]
        assert span_tree_digest(shifted) == span_tree_digest(nested_records)

    def test_digest_sees_structure(self, nested_records):
        renamed = [
            SpanRecord(r.span_id, r.parent_id, "other" if r.name == "leaf"
                       else r.name, r.attrs, r.start, r.wall, r.cpu)
            for r in nested_records
        ]
        assert span_tree_digest(renamed) != span_tree_digest(nested_records)

    def test_critical_path_descends_max_wall(self, nested_records):
        path = critical_path(nested_records)
        names = [r.name for r in path]
        assert names[0] == "root"
        # child.a contains the busy leaf, so it dominates child.b.
        assert names[1] == "child.a"
        assert names[-1] == "leaf"

    def test_critical_path_empty(self):
        assert critical_path([]) == []

    def test_top_phases_ranked_by_wall(self):
        phases = [
            {"name": "a", "count": 1, "wall": 0.1, "cpu": 0.1},
            {"name": "b", "count": 1, "wall": 0.9, "cpu": 0.1},
            {"name": "c", "count": 1, "wall": 0.5, "cpu": 0.1},
        ]
        assert [p["name"] for p in top_phases(phases, limit=2)] == ["b", "c"]
