"""TraceContext id derivation and collector scoping (DESIGN.md §12)."""

import pickle

import pytest

from repro.telemetry.recorder import NullTelemetry, Telemetry
from repro.tracing.context import (
    SCOPE_BATCH,
    SCOPE_RUN,
    SCOPE_SERVE,
    BatchTracer,
    TraceContext,
)


class TestSpanIdDerivation:
    def test_deterministic(self):
        ctx = TraceContext(7, SCOPE_BATCH, 3)
        assert ctx.span_id(0) == TraceContext(7, SCOPE_BATCH, 3).span_id(0)

    def test_positive_63_bit(self):
        for ordinal in range(50):
            span_id = TraceContext(0, SCOPE_RUN, 0).span_id(ordinal)
            assert 1 <= span_id < 1 << 63

    def test_distinct_across_coordinates(self):
        ids = {
            TraceContext(seed, scope, index).span_id(ordinal)
            for seed in (0, 1)
            for scope in (SCOPE_RUN, SCOPE_BATCH, SCOPE_SERVE)
            for index in (0, 1, 2)
            for ordinal in (0, 1, 2)
        }
        assert len(ids) == 2 * 3 * 3 * 3

    def test_none_seed_is_stable(self):
        assert (TraceContext(None, SCOPE_RUN, 0).span_id(0)
                == TraceContext(None, SCOPE_RUN, 0).span_id(0))

    def test_child_shares_seed(self):
        parent = TraceContext(11, SCOPE_RUN, 0)
        child = parent.child(SCOPE_BATCH, 4, parent.span_id(0))
        assert child.seed == 11
        assert child.scope == SCOPE_BATCH
        assert child.index == 4
        assert child.parent_span_id == parent.span_id(0)

    def test_picklable(self):
        ctx = TraceContext(3, SCOPE_BATCH, 1, parent_span_id=99)
        assert pickle.loads(pickle.dumps(ctx)) == ctx


class TestCollectorScoping:
    def test_scoped_ids_come_from_context(self):
        tel = Telemetry()
        ctx = TraceContext(5, SCOPE_BATCH, 0)
        with tel.spans.scoped(ctx):
            with tel.span("a"):
                with tel.span("b"):
                    pass
        records = {r.name: r for r in tel.spans.records}
        assert records["a"].span_id == ctx.span_id(0)
        assert records["b"].span_id == ctx.span_id(1)
        assert records["b"].parent_id == records["a"].span_id

    def test_root_span_adopts_context_parent(self):
        tel = Telemetry()
        ctx = TraceContext(5, SCOPE_BATCH, 0, parent_span_id=12345)
        with tel.spans.scoped(ctx):
            with tel.span("worker.root"):
                pass
        [record] = tel.spans.records
        assert record.parent_id == 12345

    def test_ordinal_restarts_per_activation(self):
        tel = Telemetry()
        ctx = TraceContext(5, SCOPE_BATCH, 0)
        with tel.spans.scoped(ctx):
            with tel.span("first"):
                pass
        with tel.spans.scoped(ctx):
            with tel.span("again"):
                pass
        first, again = tel.spans.records
        assert first.span_id == again.span_id == ctx.span_id(0)

    def test_contexts_nest_and_restore(self):
        tel = Telemetry()
        outer = TraceContext(5, SCOPE_RUN, 0)
        inner = TraceContext(5, SCOPE_BATCH, 2)
        with tel.spans.scoped(outer):
            with tel.span("o1"):
                pass
            with tel.spans.scoped(inner):
                with tel.span("i1"):
                    pass
            with tel.span("o2"):
                pass
        records = {r.name: r for r in tel.spans.records}
        assert records["o1"].span_id == outer.span_id(0)
        assert records["i1"].span_id == inner.span_id(0)
        # Back in the outer context, the ordinal continues where it left.
        assert records["o2"].span_id == outer.span_id(1)

    def test_sequential_ids_outside_any_context(self):
        tel = Telemetry()
        with tel.span("plain"):
            pass
        [record] = tel.spans.records
        assert record.span_id == 1


class TestBatchTracer:
    def test_disabled_recorder_is_noop(self):
        tracer = BatchTracer(NullTelemetry(), seed=0)
        with tracer:
            assert tracer.root_id is None
            with tracer.batch(0):
                pass

    def test_root_span_and_batch_contexts(self):
        tel = Telemetry()
        with BatchTracer(tel, seed=9, protocol="majority") as tracer:
            expected_root = TraceContext(9, SCOPE_RUN, 0).span_id(0)
            assert tracer.root_id == expected_root
            with tracer.batch(2):
                with tel.span("engine.run_batch"):
                    pass
        records = {r.name: r for r in tel.spans.records}
        root = records["run.batches"]
        assert root.span_id == tracer.root_id
        assert root.attrs["protocol"] == "majority"
        batch_span = records["engine.run_batch"]
        assert batch_span.span_id == TraceContext(9, SCOPE_BATCH, 2).span_id(0)
        assert batch_span.parent_id == tracer.root_id

    def test_batch_context_matches_serial_scope(self):
        """Workers install batch_context(); it must equal the serial twin's."""
        tel = Telemetry()
        with BatchTracer(tel, seed=9) as tracer:
            ctx = tracer.batch_context(5)
        assert ctx == TraceContext(9, SCOPE_BATCH, 5, tracer.root_id)


class TestSpanDropCounter:
    def test_drops_past_cap_are_counted(self):
        tel = Telemetry(max_spans=2)
        for i in range(5):
            with tel.span(f"s{i}"):
                pass
        snapshot = tel.snapshot()
        assert snapshot.span_overflow == 3
        [metric] = [m for m in snapshot.counters
                    if m["name"] == "repro_spans_dropped_total"]
        assert sum(s["value"] for s in metric["series"]) == 3

    def test_counter_survives_merge(self):
        from repro.telemetry.snapshot import TelemetrySnapshot

        snapshots = []
        for _ in range(2):
            tel = Telemetry(max_spans=1)
            for i in range(3):
                with tel.span(f"s{i}"):
                    pass
            snapshots.append(tel.snapshot())
        merged = TelemetrySnapshot.merged(snapshots)
        [metric] = [m for m in merged.counters
                    if m["name"] == "repro_spans_dropped_total"]
        assert sum(s["value"] for s in metric["series"]) == 4

    def test_no_drops_no_series(self):
        tel = Telemetry()
        with tel.span("fits"):
            pass
        snapshot = tel.snapshot()
        dropped = [m for m in snapshot.counters
                   if m["name"] == "repro_spans_dropped_total"]
        assert not dropped or not dropped[0]["series"]
