"""The perf-regression explainer names the phase a slowdown lives in."""

import importlib.util
import json
from pathlib import Path

import pytest

_SCRIPT = (Path(__file__).resolve().parents[2]
           / "scripts" / "check_bench_regression.py")


@pytest.fixture(scope="module")
def mod():
    spec = importlib.util.spec_from_file_location("check_bench_regression",
                                                  _SCRIPT)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _entry(mean, phases):
    return {
        "test": "bench_case",
        "mean": mean,
        "stddev": 0.01,
        "min": mean,
        "max": mean,
        "iterations": 5,
        "phases": [
            {"name": name, "count": 10, "wall": wall, "cpu": wall}
            for name, wall in phases.items()
        ],
    }


class TestExplainRegression:
    def test_names_the_grown_phase(self, mod):
        base = _entry(1.0, {"enum.unpack": 0.2, "enum.label": 0.6})
        # Inject a synthetic slowdown into enum.label only.
        curr = _entry(1.9, {"enum.unpack": 0.2, "enum.label": 1.5})
        explanation = mod.explain_regression(base, curr)
        assert "enum.label" in explanation
        assert "enum.unpack" not in explanation
        assert "100% of growth" in explanation

    def test_multiple_culprits_ranked(self, mod):
        base = _entry(1.0, {"a": 0.5, "b": 0.4, "c": 0.1})
        curr = _entry(2.0, {"a": 1.1, "b": 0.8, "c": 0.1})
        explanation = mod.explain_regression(base, curr)
        assert explanation.index("a (") < explanation.index("b (")
        assert "c (" not in explanation

    def test_silent_without_phase_tables(self, mod):
        base = _entry(1.0, {})
        curr = _entry(2.0, {"a": 1.0})
        assert mod.explain_regression(base, curr) == ""
        assert mod.explain_regression(curr, base) == ""

    def test_silent_when_nothing_grew(self, mod):
        base = _entry(1.0, {"a": 0.5})
        curr = _entry(1.2, {"a": 0.4})
        assert mod.explain_regression(base, curr) == ""


class TestGateIntegration:
    def _write(self, path, entry):
        payload = {"schema": 1, "bench": "demo", "git_sha": "x",
                   "timestamp": "now", "scale": "bench",
                   "results": [entry]}
        path.write_text(json.dumps(payload))

    def test_failure_message_names_phase(self, mod, tmp_path, capsys):
        baseline_dir = tmp_path / "base"
        current_dir = tmp_path / "curr"
        baseline_dir.mkdir()
        current_dir.mkdir()
        base = _entry(1.0, {"mc.sample": 0.2, "mc.label": 0.7})
        curr = _entry(1.6, {"mc.sample": 0.2, "mc.label": 1.3})
        self._write(baseline_dir / "BENCH_demo.json", base)
        self._write(current_dir / "BENCH_demo.json", curr)
        failures = mod.check_file(baseline_dir / "BENCH_demo.json",
                                  current_dir, threshold=0.25)
        assert len(failures) == 1
        assert "mc.label" in failures[0]
        assert "mc.sample" not in failures[0]

    def test_within_budget_passes(self, mod, tmp_path, capsys):
        baseline_dir = tmp_path / "base"
        current_dir = tmp_path / "curr"
        baseline_dir.mkdir()
        current_dir.mkdir()
        entry = _entry(1.0, {"mc.sample": 0.5})
        self._write(baseline_dir / "BENCH_demo.json", entry)
        self._write(current_dir / "BENCH_demo.json", entry)
        assert mod.check_file(baseline_dir / "BENCH_demo.json",
                              current_dir, threshold=0.25) == []


class TestDuplicateSidecars:
    """The gate rejects double-prefixed and colliding BENCH sidecars."""

    def test_clean_directory_passes(self, mod, tmp_path):
        (tmp_path / "BENCH_serving.json").write_text("{}")
        (tmp_path / "BENCH_optimizers.json").write_text("{}")
        assert mod.find_duplicate_sidecars(tmp_path) == []

    def test_double_prefix_rejected(self, mod, tmp_path):
        (tmp_path / "BENCH_bench_serving.json").write_text("{}")
        offenders = mod.find_duplicate_sidecars(tmp_path)
        assert len(offenders) == 1
        assert "double-prefixed" in offenders[0]
        assert "'serving'" in offenders[0]

    def test_normalized_collision_rejected(self, mod, tmp_path):
        # The historical failure mode: a stale double-prefixed sidecar
        # next to the canonical baseline for the same bench.
        (tmp_path / "BENCH_serving.json").write_text("{}")
        (tmp_path / "BENCH_bench_serving.json").write_text("{}")
        offenders = mod.find_duplicate_sidecars(tmp_path)
        assert any("duplicates" in text for text in offenders)

    def test_non_bench_files_ignored(self, mod, tmp_path):
        (tmp_path / "results.txt").write_text("scratch")
        (tmp_path / "bench_serving.py").write_text("# code")
        assert mod.find_duplicate_sidecars(tmp_path) == []
