"""Legacy shim so editable installs work without the ``wheel`` package.

The environment is offline and has setuptools but no wheel; PEP 517
editable installs need ``bdist_wheel``, so we route through the legacy
``setup.py develop`` path (``pip install -e . --no-build-isolation``
picks this up automatically when setup.py exists and PEP 517 is not
forced). Metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
